//! Liveness verification of TM algorithms (§6): loop search in the
//! run-level transition system of the TM (with its contention manager)
//! applied to the most general program.
//!
//! The paper reduces each property to the absence of a certain *loop* in
//! the transition system (its reduction theorem, Theorem 5, bounds the
//! instance at two threads and one variable):
//!
//! * **obstruction freedom** fails iff some loop contains only statements
//!   of one thread, at least one abort, and no commit;
//! * **livelock freedom** fails iff some loop contains no commit and every
//!   thread with a statement in it has an abort in it;
//! * **wait freedom** fails iff some loop gives a thread infinitely many
//!   (word-level) statements but no commit.
//!
//! All loops here are loops of the run-level graph — they may contain
//! extended commands (cf. the loop `a1, (r,1)1, (o,1)1, a2, (o,1)2` of the
//! paper's Table 3).
//!
//! Two implementations are provided:
//!
//! * [`check_liveness`] — the **compiled engine**
//!   ([`tm_automata::CompiledRunGraph`]): the run graph is compiled to CSR
//!   while it is explored (never materialized as an edge list), every
//!   property pass is a mask-filtered Tarjan over that one graph sharing
//!   one scratch arena, and the independent per-thread / per-subset
//!   passes fan out over the `TM_MODELCHECK_THREADS` worker pool with
//!   first-in-order violation selection — verdicts **and lassos** are
//!   identical at every thread count;
//! * [`check_liveness_reference`] — the seed path (filtered-subgraph
//!   clones plus per-clone Tarjan), kept as the differential baseline.
//!   Both return the same verdicts and the same lassos.

use std::time::{Duration, Instant};

use tm_algorithms::{most_general_run_graph, RunLabel, TmAlgorithm};
use tm_automata::{
    closed_walk_through, modelcheck_threads, strongly_connected_components, EdgeFilter,
    LabeledGraph, LoopQuery, LoopSelection, Sccs, MASK_ABORT, MASK_ALL_THREADS, MASK_COMMIT,
    MASK_EMITS,
};
use tm_lang::{Lasso, LivenessProperty, ThreadId, Word};

use crate::session::Verifier;

/// Default bound on reachable TM states for liveness exploration.
pub const DEFAULT_MAX_STATES: usize = 10_000_000;

/// A liveness counterexample: an ultimately periodic run `prefix · loopω`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunLasso {
    /// Run-level steps leading from the initial state to the loop.
    pub prefix: Vec<RunLabel>,
    /// The repeated loop (non-empty).
    pub cycle: Vec<RunLabel>,
}

impl RunLasso {
    /// The word-level lasso (projecting away internal steps).
    ///
    /// Returns `None` if the loop emits no statements at all (a purely
    /// internal divergence, which cannot happen for the TMs in this
    /// workspace).
    pub fn to_word_lasso(&self) -> Option<Lasso> {
        let cycle: Word = self.cycle.iter().filter_map(|l| l.statement()).collect();
        if cycle.is_empty() {
            return None;
        }
        let prefix: Word = self.prefix.iter().filter_map(|l| l.statement()).collect();
        Some(Lasso::new(prefix, cycle))
    }

    /// The loop in the paper's Table 3 notation.
    pub fn cycle_notation(&self) -> String {
        self.cycle
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Outcome of a liveness check.
#[derive(Clone, Debug)]
pub enum LivenessOutcome {
    /// No offending loop exists: the TM (with its manager) ensures the
    /// property for this instance size (and by Theorem 5 in general, for
    /// structurally well-behaved TMs).
    Verified,
    /// An offending reachable loop.
    Violation(RunLasso),
}

/// Result of [`check_liveness`].
#[derive(Clone, Debug)]
pub struct LivenessVerdict {
    /// TM algorithm (with manager) name.
    pub tm_name: String,
    /// The property checked.
    pub property: LivenessProperty,
    /// Reachable states of the run-level transition system.
    pub tm_states: usize,
    /// Wall-clock time for the whole check.
    pub total_time: Duration,
    /// The verdict.
    pub outcome: LivenessOutcome,
}

impl LivenessVerdict {
    /// `true` if the property was verified.
    pub fn holds(&self) -> bool {
        matches!(self.outcome, LivenessOutcome::Verified)
    }

    /// The counterexample lasso, if any.
    pub fn counterexample(&self) -> Option<&RunLasso> {
        match &self.outcome {
            LivenessOutcome::Violation(l) => Some(l),
            LivenessOutcome::Verified => None,
        }
    }
}

/// Checks a liveness property of a TM algorithm (× contention manager) on
/// the most general program of its instance size, on the compiled
/// liveness engine with the worker-pool size of
/// [`tm_automata::modelcheck_threads`] (the `TM_MODELCHECK_THREADS`
/// environment variable). Verdicts and lassos are identical at every
/// thread count, and identical to [`check_liveness_reference`]'s.
///
/// **Migration note:** this is a thin wrapper over a throwaway
/// [`Verifier`] session — each call compiles the TM's run graph anew. A
/// caller asking several properties of one TM (the Table 3 shape) should
/// create a [`Verifier`] and call [`Verifier::check_liveness`], which
/// builds the graph once and answers all three properties from it.
///
/// # Panics
///
/// Panics if the TM's reachable state space exceeds
/// [`DEFAULT_MAX_STATES`].
///
/// # Examples
///
/// ```
/// use tm_checker::check_liveness;
/// use tm_lang::LivenessProperty;
/// use tm_algorithms::{AggressiveCm, DstmTm, WithContentionManager};
///
/// // Paper Table 3: DSTM + aggressive is obstruction free ...
/// let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
/// assert!(check_liveness(&tm, LivenessProperty::ObstructionFreedom).holds());
/// // ... but not livelock free.
/// assert!(!check_liveness(&tm, LivenessProperty::LivelockFreedom).holds());
/// ```
pub fn check_liveness<A: TmAlgorithm>(tm: &A, property: LivenessProperty) -> LivenessVerdict {
    check_liveness_threads(tm, property, modelcheck_threads())
}

/// [`check_liveness`] with an explicit worker-pool size (`1` runs the
/// passes sequentially; results are independent of `threads`).
///
/// **Migration note:** prefer
/// [`Verifier::pool_size`] + [`Verifier::check_liveness`] — the session
/// keeps both the pool and the compiled run graph alive across queries.
pub fn check_liveness_threads<A: TmAlgorithm>(
    tm: &A,
    property: LivenessProperty,
    threads: usize,
) -> LivenessVerdict {
    Verifier::new(tm.threads(), tm.vars())
        .pool_size(threads)
        .max_states(DEFAULT_MAX_STATES)
        .check_liveness(tm, property)
        .into_liveness()
        .expect("liveness query returns a liveness verdict")
}

/// The engine queries of a property for an `n`-thread instance, in the
/// order the seed checker searches them (so first-in-order violation
/// selection reproduces the reference lasso). Shared with the
/// [`Verifier`] session, which runs them over its cached run graphs:
///
/// * obstruction freedom — per thread `t`: the subgraph of `t`-only,
///   non-commit edges must have no loop through an abort;
/// * livelock freedom — per non-empty thread subset `T'` (in subset-mask
///   order): the subgraph of `T'`-edges without commits must have no SCC
///   containing an abort of *every* thread of `T'`;
/// * wait freedom — per thread `t`: the subgraph without `(commit, t)`
///   edges must have no loop through a statement-emitting edge of `t`.
pub(crate) fn property_queries(n: usize, property: LivenessProperty) -> Vec<LoopQuery> {
    match property {
        LivenessProperty::ObstructionFreedom => (0..n)
            .map(|t| LoopQuery {
                filter: EdgeFilter {
                    keep_any: 1 << t,
                    forbid_all: MASK_COMMIT,
                },
                required: vec![MASK_ABORT],
                selection: LoopSelection::FirstEdge,
            })
            .collect(),
        LivenessProperty::LivelockFreedom => (1u16..(1 << n))
            .map(|subset| LoopQuery {
                filter: EdgeFilter {
                    keep_any: subset,
                    forbid_all: MASK_COMMIT,
                },
                required: (0..n)
                    .filter(|t| subset & (1 << t) != 0)
                    .map(|t| MASK_ABORT | 1 << t)
                    .collect(),
                selection: LoopSelection::FirstComponent,
            })
            .collect(),
        LivenessProperty::WaitFreedom => (0..n)
            .map(|t| LoopQuery {
                filter: EdgeFilter {
                    keep_any: MASK_ALL_THREADS,
                    forbid_all: MASK_COMMIT | 1 << t,
                },
                required: vec![MASK_EMITS | 1 << t],
                selection: LoopSelection::FirstEdge,
            })
            .collect(),
    }
}

/// The seed (pre-engine) implementation of [`check_liveness`]: explores
/// the run graph into a boxed labelled edge list, then **clones** a
/// filtered subgraph and reruns Tarjan for every per-thread / per-subset
/// pass — `2^n` graph copies for the livelock check alone, plus `O(E)`
/// edge scans per required-edge query (`find_cyclic_edge`). Kept
/// verbatim (minus a dead parameter) as the differential baseline for
/// `tests/liveness_conformance.rs` and the A/B benches; not used by any
/// checker.
pub fn check_liveness_reference<A: TmAlgorithm>(
    tm: &A,
    property: LivenessProperty,
) -> LivenessVerdict {
    let start = Instant::now();
    let (graph, states) = most_general_run_graph(tm, DEFAULT_MAX_STATES);
    let outcome = match property {
        LivenessProperty::ObstructionFreedom => check_obstruction(tm, &graph),
        LivenessProperty::LivelockFreedom => check_livelock(tm, &graph),
        LivenessProperty::WaitFreedom => check_wait(tm, &graph),
    };
    LivenessVerdict {
        tm_name: tm.name(),
        property,
        tm_states: states.len(),
        total_time: start.elapsed(),
        outcome,
    }
}

/// Finds a loop in `filtered` containing one edge of each required kind,
/// and wraps it into a lasso with a shortest prefix from the initial
/// state through the *full* graph.
fn build_lasso(
    full: &LabeledGraph<RunLabel>,
    filtered: &LabeledGraph<RunLabel>,
    required: Vec<(usize, RunLabel, usize)>,
) -> Option<RunLasso> {
    let walk = closed_walk_through(filtered, &required)?;
    let entry = walk.first()?.0;
    let prefix_edges = full.shortest_path_to(0, |s| s == entry)?;
    Some(RunLasso {
        prefix: prefix_edges.into_iter().map(|(_, l, _)| l).collect(),
        cycle: walk.into_iter().map(|(_, l, _)| l).collect(),
    })
}

/// Obstruction freedom: for each thread `t`, search the subgraph of
/// `t`-only, non-commit edges for an SCC containing an abort edge of `t`.
fn check_obstruction<A: TmAlgorithm>(
    tm: &A,
    graph: &LabeledGraph<RunLabel>,
) -> LivenessOutcome {
    for t in tm.thread_ids() {
        let filtered = graph.filtered(|_, l, _| l.thread == t && !l.is_commit());
        let sccs = strongly_connected_components(&filtered);
        if let Some(edge) = find_cyclic_edge(&filtered, &sccs, |l| l.is_abort()) {
            if let Some(lasso) = build_lasso(graph, &filtered, vec![edge]) {
                return LivenessOutcome::Violation(lasso);
            }
        }
    }
    LivenessOutcome::Verified
}

/// Livelock freedom: for each non-empty subset `T'` of threads, search the
/// subgraph of `T'`-edges without commits for an SCC containing an abort
/// edge of every thread in `T'`.
fn check_livelock<A: TmAlgorithm>(tm: &A, graph: &LabeledGraph<RunLabel>) -> LivenessOutcome {
    let n = tm.threads();
    for subset in 1u32..(1 << n) {
        let in_subset = |t: ThreadId| subset & (1 << t.index()) != 0;
        let filtered = graph.filtered(|_, l, _| in_subset(l.thread) && !l.is_commit());
        let sccs = strongly_connected_components(&filtered);
        // Group cyclic abort edges per component, then look for a
        // component covering every thread of the subset.
        'component: for comp in 0..sccs.count() {
            let mut required = Vec::new();
            for t in tm.thread_ids().into_iter().filter(|&t| in_subset(t)) {
                match find_cyclic_edge_in(&filtered, &sccs, comp, |l| {
                    l.is_abort() && l.thread == t
                }) {
                    Some(edge) => required.push(edge),
                    None => continue 'component,
                }
            }
            if let Some(lasso) = build_lasso(graph, &filtered, required) {
                return LivenessOutcome::Violation(lasso);
            }
        }
    }
    LivenessOutcome::Verified
}

/// Wait freedom: for each thread `t`, search the subgraph without
/// `(commit, t)` completions for an SCC containing a word-level statement
/// of `t`.
fn check_wait<A: TmAlgorithm>(tm: &A, graph: &LabeledGraph<RunLabel>) -> LivenessOutcome {
    for t in tm.thread_ids() {
        let filtered = graph.filtered(|_, l, _| !(l.thread == t && l.is_commit()));
        let sccs = strongly_connected_components(&filtered);
        if let Some(edge) = find_cyclic_edge(&filtered, &sccs, |l| {
            l.thread == t && l.statement().is_some()
        }) {
            if let Some(lasso) = build_lasso(graph, &filtered, vec![edge]) {
                return LivenessOutcome::Violation(lasso);
            }
        }
    }
    LivenessOutcome::Verified
}

/// An edge matching `want` whose endpoints share an SCC (i.e. an edge on
/// some cycle), if any. A full `O(E)` scan per query — acceptable only in
/// the reference path; the engine's [`LoopQuery`] passes precompute
/// per-edge class masks and answer every requirement in one scan.
fn find_cyclic_edge<F: Fn(&RunLabel) -> bool>(
    g: &LabeledGraph<RunLabel>,
    sccs: &Sccs,
    want: F,
) -> Option<(usize, RunLabel, usize)> {
    g.edges()
        .find(|(from, l, to)| want(l) && sccs.same_component(*from, *to))
        .map(|(from, l, to)| (from, *l, to))
}

/// Like [`find_cyclic_edge`], restricted to one component (and sharing
/// its reference-path-only `O(E)`-per-query cost).
fn find_cyclic_edge_in<F: Fn(&RunLabel) -> bool>(
    g: &LabeledGraph<RunLabel>,
    sccs: &Sccs,
    component: usize,
    want: F,
) -> Option<(usize, RunLabel, usize)> {
    g.edges()
        .find(|(from, l, to)| {
            want(l)
                && sccs.component_of(*from) == component
                && sccs.component_of(*to) == component
        })
        .map(|(from, l, to)| (from, *l, to))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algorithms::{
        AggressiveCm, DstmTm, PoliteCm, SequentialTm, Tl2Tm, TwoPhaseTm,
        WithContentionManager,
    };

    #[test]
    fn sequential_tm_is_not_obstruction_free() {
        let verdict =
            check_liveness(&SequentialTm::new(2, 1), LivenessProperty::ObstructionFreedom);
        let lasso = verdict.counterexample().expect("Table 3: N");
        // The paper's loop is `a1` (a single abort).
        let word = lasso.to_word_lasso().expect("emits statements");
        assert!(!word.is_obstruction_free());
        assert!(word.cycle().iter().all(|s| s.kind.is_abort()));
    }

    #[test]
    fn two_phase_fails_both_properties() {
        let tm = TwoPhaseTm::new(2, 1);
        for p in [
            LivenessProperty::ObstructionFreedom,
            LivenessProperty::LivelockFreedom,
        ] {
            let verdict = check_liveness(&tm, p);
            assert!(!verdict.holds(), "{p:?}");
            let lasso = verdict.counterexample().unwrap();
            let word = lasso.to_word_lasso().unwrap();
            assert!(!p.holds(&word), "{p:?}: {word}");
        }
    }

    #[test]
    fn dstm_aggressive_is_of_but_not_lf() {
        let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
        assert!(check_liveness(&tm, LivenessProperty::ObstructionFreedom).holds());
        let lf = check_liveness(&tm, LivenessProperty::LivelockFreedom);
        let lasso = lf.counterexample().expect("Table 3: N");
        let word = lasso.to_word_lasso().unwrap();
        assert!(!word.is_livelock_free());
        // Both threads abort infinitely (ownership ping-pong).
        assert!(word.is_obstruction_free());
    }

    #[test]
    fn tl2_polite_is_not_obstruction_free() {
        let tm = WithContentionManager::new(Tl2Tm::new(2, 1), PoliteCm);
        let verdict = check_liveness(&tm, LivenessProperty::ObstructionFreedom);
        let lasso = verdict.counterexample().expect("Table 3: N");
        let word = lasso.to_word_lasso().unwrap();
        assert!(!word.is_obstruction_free());
    }

    #[test]
    fn nothing_is_wait_free() {
        // Every TM lets a thread read forever without committing.
        for verdict in [
            check_liveness(&SequentialTm::new(2, 1), LivenessProperty::WaitFreedom),
            check_liveness(
                &WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm),
                LivenessProperty::WaitFreedom,
            ),
        ] {
            assert!(!verdict.holds());
        }
    }

    #[test]
    fn counterexample_prefix_starts_at_initial_state() {
        let verdict =
            check_liveness(&TwoPhaseTm::new(2, 1), LivenessProperty::ObstructionFreedom);
        let lasso = verdict.counterexample().unwrap();
        // Prefix must be a real run: non-empty here, since the violating
        // loop needs the other thread to hold a lock first.
        assert!(!lasso.prefix.is_empty());
        assert!(!lasso.cycle.is_empty());
    }

    #[test]
    fn engine_agrees_with_reference_on_a_sample() {
        // The full differential matrix lives in
        // `tests/liveness_conformance.rs`; this is the in-crate smoke.
        let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
        for property in LivenessProperty::all() {
            let engine = check_liveness_threads(&tm, property, 1);
            let reference = check_liveness_reference(&tm, property);
            assert_eq!(engine.holds(), reference.holds(), "{property:?}");
            assert_eq!(engine.tm_states, reference.tm_states, "{property:?}");
            assert_eq!(
                engine.counterexample(),
                reference.counterexample(),
                "{property:?}"
            );
        }
    }
}
