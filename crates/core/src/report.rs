//! Plain-text report tables in the style of the paper's Tables 2 and 3,
//! and the uniform [`Verdict`] every [`crate::Verifier`] session query
//! returns.

use std::fmt;
use std::time::Duration;

use tm_automata::EngineError;

use crate::liveness::LivenessVerdict;
use crate::reduction::ReductionEvidence;
use crate::safety::SafetyVerdict;

/// Uniform run statistics attached to every session query ([`Verdict`]),
/// separating what the one-shot verdict types blend together: artifact
/// construction (specification / run graph) versus the search itself,
/// and the worker-pool width the search ran at.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// States explored by the search: product states for a safety query,
    /// run-graph states for a liveness query, base-instance product
    /// states for a reduction query.
    pub states_explored: usize,
    /// Time spent building the artifacts this query needed (zero when the
    /// session answered from its cache).
    pub build_time: Duration,
    /// Time spent searching (inclusion BFS or loop queries).
    pub search_time: Duration,
    /// Worker-pool width the search ran at (1 = the deterministic
    /// sequential engine; results are identical at every width).
    pub pool_size: usize,
    /// `true` if every artifact the query needed was already cached by an
    /// earlier query of the same session.
    pub artifact_cached: bool,
    /// How many of the artifacts this query built were *re*builds — an
    /// artifact of the same key had been built before and evicted via
    /// [`crate::Verifier::drop_run_graph`] /
    /// [`crate::Verifier::drop_spec`]. Zero for cache hits and for
    /// first-time builds; what a memory-budgeted service reports as its
    /// eviction cost.
    pub rebuilds: usize,
    /// Nanoseconds per engine/service phase, indexed by
    /// [`tm_obs::Phase`]` as usize` — the phase breakdown of this query.
    /// All zeros when instrumentation is disabled (`TM_OBS=off`). Phases
    /// nest (a BFS level contains its pool dispatches and spec-row
    /// interning), so the entries do not sum to wall time.
    pub phase_ns: tm_obs::PhaseNanos,
    /// Artifacts this query *promoted* from the persistent store
    /// (loaded and verified from disk instead of rebuilt). Zero when no
    /// store is configured. Filled by the serving layer; a promote is
    /// neither a build nor a rebuild.
    pub store_promotes: usize,
    /// Artifacts *demoted* to the persistent store by the evictions
    /// this query's memory admission forced (exported to disk before
    /// being dropped, instead of discarded). Zero when no store is
    /// configured.
    pub store_demotes: usize,
}

impl QueryStats {
    /// Nanoseconds recorded for one phase.
    pub fn phase(&self, phase: tm_obs::Phase) -> u64 {
        self.phase_ns[phase as usize]
    }
}

/// The outcome payload of a [`Verdict`]: the query-specific verdict types
/// survive unchanged underneath the uniform session envelope.
#[derive(Clone, Debug)]
pub enum VerdictOutcome {
    /// A safety (inclusion) query.
    Safety(SafetyVerdict),
    /// A liveness (loop-search) query.
    Liveness(LivenessVerdict),
    /// A full reduction-methodology run.
    Reduction(ReductionEvidence),
    /// The engine retired the query at a resource limit — state-space
    /// blowup, expired deadline, cooperative cancellation, a panicked
    /// worker, or an injected fault — instead of answering it. The
    /// [`QueryStats`] are partial: whatever the query had spent when it
    /// was retired. [`EngineError::is_retryable`] says whether asking
    /// again (with more time, or after cancellation clears) can succeed.
    Aborted(EngineError),
}

/// The uniform result of every [`crate::Verifier`] query: the
/// query-specific outcome plus [`QueryStats`].
///
/// # Examples
///
/// ```
/// use tm_checker::Verifier;
/// use tm_lang::SafetyProperty;
/// use tm_algorithms::DstmTm;
///
/// let mut verifier = Verifier::new(2, 2);
/// let verdict = verifier.check_safety(&DstmTm::new(2, 2), SafetyProperty::Opacity);
/// assert!(verdict.holds());
/// assert!(!verdict.stats.artifact_cached); // first query builds the spec
/// ```
#[derive(Clone, Debug)]
pub struct Verdict {
    /// What the query decided.
    pub outcome: VerdictOutcome,
    /// How the session answered it.
    pub stats: QueryStats,
}

impl Verdict {
    /// `true` if the queried property was verified (for a reduction
    /// query: the methodology concluded).
    pub fn holds(&self) -> bool {
        match &self.outcome {
            VerdictOutcome::Safety(v) => v.holds(),
            VerdictOutcome::Liveness(v) => v.holds(),
            VerdictOutcome::Reduction(e) => e.concludes(),
            VerdictOutcome::Aborted(_) => false,
        }
    }

    /// The abort reason, if the engine retired this query at a resource
    /// limit instead of answering it (see [`VerdictOutcome::Aborted`]).
    pub fn abort_reason(&self) -> Option<EngineError> {
        match &self.outcome {
            VerdictOutcome::Aborted(error) => Some(*error),
            _ => None,
        }
    }

    /// The safety verdict, if this was a safety query.
    pub fn as_safety(&self) -> Option<&SafetyVerdict> {
        match &self.outcome {
            VerdictOutcome::Safety(v) => Some(v),
            _ => None,
        }
    }

    /// The liveness verdict, if this was a liveness query.
    pub fn as_liveness(&self) -> Option<&LivenessVerdict> {
        match &self.outcome {
            VerdictOutcome::Liveness(v) => Some(v),
            _ => None,
        }
    }

    /// The reduction evidence, if this was a reduction query.
    pub fn as_reduction(&self) -> Option<&ReductionEvidence> {
        match &self.outcome {
            VerdictOutcome::Reduction(e) => Some(e),
            _ => None,
        }
    }

    /// Unwraps a safety query's verdict.
    pub fn into_safety(self) -> Option<SafetyVerdict> {
        match self.outcome {
            VerdictOutcome::Safety(v) => Some(v),
            _ => None,
        }
    }

    /// Unwraps a liveness query's verdict.
    pub fn into_liveness(self) -> Option<LivenessVerdict> {
        match self.outcome {
            VerdictOutcome::Liveness(v) => Some(v),
            _ => None,
        }
    }

    /// Unwraps a reduction query's evidence.
    pub fn into_reduction(self) -> Option<ReductionEvidence> {
        match self.outcome {
            VerdictOutcome::Reduction(e) => Some(e),
            _ => None,
        }
    }
}

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use tm_checker::Table;
/// let mut t = Table::new("demo", ["tm", "verdict"]);
/// t.push_row(["seq", "Y"]);
/// assert!(t.to_string().contains("seq"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<T, I, S>(title: T, headers: I) -> Self
    where
        T: Into<String>,
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a set of safety verdicts as the paper's Table 2 ("Y, time" or
/// "N, counterexample, time").
pub fn safety_table(title: &str, verdicts: &[SafetyVerdict]) -> Table {
    let mut table = Table::new(
        title,
        ["TM", "Size", "property", "verdict", "time", "counterexample"],
    );
    for v in verdicts {
        let (verdict, cx) = match v.counterexample() {
            None => ("Y".to_owned(), String::new()),
            Some(w) => ("N".to_owned(), w.to_string()),
        };
        // On a violation the on-the-fly check stops early, so the state
        // count is a lower bound, not the paper's full "Size" figure.
        let size = if v.holds() {
            v.tm_states.to_string()
        } else {
            format!(">={}", v.tm_states)
        };
        table.push_row([
            v.tm_name.clone(),
            size,
            v.property.short_name().to_owned(),
            verdict,
            format!("{:.2?}", v.check_time),
            cx,
        ]);
    }
    table
}

/// Formats a set of liveness verdicts as the paper's Table 3 (loop parts
/// of the counterexample lassos shown).
pub fn liveness_table(title: &str, verdicts: &[LivenessVerdict]) -> Table {
    let mut table = Table::new(
        title,
        ["TM algorithm", "property", "verdict", "time", "loop"],
    );
    for v in verdicts {
        let (verdict, lasso) = match v.counterexample() {
            None => ("Y".to_owned(), String::new()),
            Some(l) => ("N".to_owned(), l.cycle_notation()),
        };
        table.push_row([
            v.tm_name.clone(),
            v.property.to_string(),
            verdict,
            format!("{:.2?}", v.total_time),
            lasso,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_contents() {
        let mut t = Table::new("x", ["a", "bbbb"]);
        t.push_row(["yyyy", "z"]);
        let text = t.to_string();
        assert!(text.contains("== x =="));
        assert!(text.contains("yyyy"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", ["a"]);
        t.push_row(["1", "2"]);
    }
}
