//! Plain-text report tables in the style of the paper's Tables 2 and 3.

use std::fmt;

use crate::liveness::LivenessVerdict;
use crate::safety::SafetyVerdict;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use tm_checker::Table;
/// let mut t = Table::new("demo", ["tm", "verdict"]);
/// t.push_row(["seq", "Y"]);
/// assert!(t.to_string().contains("seq"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<T, I, S>(title: T, headers: I) -> Self
    where
        T: Into<String>,
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a set of safety verdicts as the paper's Table 2 ("Y, time" or
/// "N, counterexample, time").
pub fn safety_table(title: &str, verdicts: &[SafetyVerdict]) -> Table {
    let mut table = Table::new(
        title,
        ["TM", "Size", "property", "verdict", "time", "counterexample"],
    );
    for v in verdicts {
        let (verdict, cx) = match v.counterexample() {
            None => ("Y".to_owned(), String::new()),
            Some(w) => ("N".to_owned(), w.to_string()),
        };
        // On a violation the on-the-fly check stops early, so the state
        // count is a lower bound, not the paper's full "Size" figure.
        let size = if v.holds() {
            v.tm_states.to_string()
        } else {
            format!(">={}", v.tm_states)
        };
        table.push_row([
            v.tm_name.clone(),
            size,
            v.property.short_name().to_owned(),
            verdict,
            format!("{:.2?}", v.check_time),
            cx,
        ]);
    }
    table
}

/// Formats a set of liveness verdicts as the paper's Table 3 (loop parts
/// of the counterexample lassos shown).
pub fn liveness_table(title: &str, verdicts: &[LivenessVerdict]) -> Table {
    let mut table = Table::new(
        title,
        ["TM algorithm", "property", "verdict", "time", "loop"],
    );
    for v in verdicts {
        let (verdict, lasso) = match v.counterexample() {
            None => ("Y".to_owned(), String::new()),
            Some(l) => ("N".to_owned(), l.cycle_notation()),
        };
        table.push_row([
            v.tm_name.clone(),
            v.property.to_string(),
            verdict,
            format!("{:.2?}", v.total_time),
            lasso,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_contents() {
        let mut t = Table::new("x", ["a", "bbbb"]);
        t.push_row(["yyyy", "z"]);
        let text = t.to_string();
        assert!(text.contains("== x =="));
        assert!(text.contains("yyyy"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", ["a"]);
        t.push_row(["1", "2"]);
    }
}
