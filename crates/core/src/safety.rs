//! Safety verification of TM algorithms (§5.4): language inclusion of the
//! TM applied to the most general program in the deterministic
//! specification of the property.
//!
//! By the reduction theorem (§4, Theorem 1), verifying a structurally
//! well-behaved TM for two threads and two variables verifies it for all
//! programs; and since `L(A_cm) ⊆ L(A)` for every contention manager,
//! verifying the bare TM covers every managed variant.
//!
//! The inclusion itself runs through the **on-the-fly product engine**
//! ([`tm_automata::check_inclusion_otf`]): the TM transition system is
//! never materialized into an NFA — its states are stepped lazily as the
//! product BFS reaches them — and the frontier is sharded across the
//! `TM_MODELCHECK_THREADS` thread pool (see
//! [`tm_automata::modelcheck_threads`]).

use std::time::{Duration, Instant};

use tm_algorithms::{MostGeneralSource, TmAlgorithm};
use tm_automata::{
    check_inclusion_otf_bounded, modelcheck_threads, CompiledDfa, Dfa, InclusionResult,
};
use tm_lang::{SafetyProperty, Statement, Word};
use tm_spec::{canonical_dfa, DetSpec};

/// Which deterministic specification automaton to check against.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SpecAutomaton {
    /// The hand-built deterministic specification of paper Algorithm 6
    /// (validated against the nondeterministic one; state counts match
    /// the paper).
    #[default]
    PaperDeterministic,
    /// The determinized + minimized nondeterministic specification —
    /// language-equal by construction, smaller, independent of the
    /// Algorithm 6 transcription.
    Canonical,
}

/// Outcome of a safety check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SafetyOutcome {
    /// `L(A) ⊆ L(Σᵈ_π)` — the TM ensures the property (for this instance
    /// size; by Theorem 1 for all sizes if the TM is structurally
    /// well-behaved).
    Verified,
    /// A word produced by the TM that violates the property. The word has
    /// been re-checked against the definition-level oracle.
    Violation(Word),
}

/// Result of [`check_safety`], with the statistics reported in the
/// paper's Table 2.
#[derive(Clone, Debug)]
pub struct SafetyVerdict {
    /// TM algorithm name.
    pub tm_name: String,
    /// The property checked.
    pub property: SafetyProperty,
    /// TM states discovered by the on-the-fly check: the full reachable
    /// state count (Table 2 "Size") when the property holds, the explored
    /// portion when a violation cut the search short.
    pub tm_states: usize,
    /// States of the deterministic specification automaton: the full
    /// automaton size when it was determinized eagerly
    /// ([`SafetyChecker`], [`crate::SpecMode::Eager`]), or the
    /// specification states the product actually touched under lazy
    /// stepping (the [`check_safety`] / [`crate::SpecMode::Lazy`]
    /// default).
    pub spec_states: usize,
    /// Product states explored by the inclusion check.
    pub product_states: usize,
    /// Wall-clock time of the inclusion check (excluding automaton
    /// construction).
    pub check_time: Duration,
    /// Wall-clock time of the whole pipeline.
    pub total_time: Duration,
    /// The verdict.
    pub outcome: SafetyOutcome,
}

impl SafetyVerdict {
    /// `true` if the property was verified.
    pub fn holds(&self) -> bool {
        matches!(self.outcome, SafetyOutcome::Verified)
    }

    /// The counterexample word, if any.
    pub fn counterexample(&self) -> Option<&Word> {
        match &self.outcome {
            SafetyOutcome::Violation(w) => Some(w),
            SafetyOutcome::Verified => None,
        }
    }
}

/// A reusable safety checker: the deterministic specification automaton
/// for one property and instance size, so that several TMs can be checked
/// without rebuilding it.
///
/// **Migration note:** [`crate::Verifier`] subsumes this type — one
/// session caches the artifacts of *every* property and answers liveness
/// and reduction queries too, from a persistent worker pool.
/// `SafetyChecker` remains as the explicit eager-specification primitive
/// (it also backs [`crate::SpecMode::Eager`]-style checking against the
/// [`SpecAutomaton::Canonical`] flavor, which the session does not
/// cache).
///
/// # Examples
///
/// ```
/// use tm_checker::SafetyChecker;
/// use tm_lang::SafetyProperty;
/// use tm_algorithms::{SequentialTm, TwoPhaseTm};
///
/// let checker = SafetyChecker::new(SafetyProperty::Opacity, 2, 2);
/// assert!(checker.check(&SequentialTm::new(2, 2)).holds());
/// assert!(checker.check(&TwoPhaseTm::new(2, 2)).holds());
/// ```
#[derive(Clone, Debug)]
pub struct SafetyChecker {
    property: SafetyProperty,
    threads: usize,
    vars: usize,
    spec: Dfa<Statement>,
    /// The dense-table form the inclusion inner loop runs on, compiled
    /// once here and reused across every checked TM.
    compiled: CompiledDfa<Statement>,
    build_time: Duration,
}

/// Default bound on reachable TM / specification states.
pub const DEFAULT_MAX_STATES: usize = 10_000_000;

impl SafetyChecker {
    /// Builds the checker with the paper's deterministic specification.
    ///
    /// # Panics
    ///
    /// Panics if the instance exceeds 4 threads or the specification
    /// exceeds [`DEFAULT_MAX_STATES`] states.
    pub fn new(property: SafetyProperty, threads: usize, vars: usize) -> Self {
        Self::with_spec(property, threads, vars, SpecAutomaton::PaperDeterministic)
    }

    /// Builds the checker with an explicit specification flavor.
    ///
    /// # Panics
    ///
    /// As for [`SafetyChecker::new`].
    pub fn with_spec(
        property: SafetyProperty,
        threads: usize,
        vars: usize,
        flavor: SpecAutomaton,
    ) -> Self {
        let start = Instant::now();
        let spec = match flavor {
            SpecAutomaton::PaperDeterministic => {
                DetSpec::new(property, threads, vars)
                    .to_dfa(DEFAULT_MAX_STATES)
                    .0
            }
            SpecAutomaton::Canonical => {
                canonical_dfa(property, threads, vars, DEFAULT_MAX_STATES)
            }
        };
        let compiled = spec.compile();
        SafetyChecker {
            property,
            threads,
            vars,
            spec,
            compiled,
            build_time: start.elapsed(),
        }
    }

    /// The property this checker decides.
    pub fn property(&self) -> SafetyProperty {
        self.property
    }

    /// Number of threads of the checked instance.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of variables of the checked instance.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// The specification automaton.
    pub fn spec(&self) -> &Dfa<Statement> {
        &self.spec
    }

    /// The compiled (dense-table) specification the inclusion check runs
    /// on.
    pub fn compiled_spec(&self) -> &CompiledDfa<Statement> {
        &self.compiled
    }

    /// Time spent constructing the specification automaton.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Checks `L(A) ⊆ L(Σᵈ_π)` for the TM applied to the most general
    /// program of this instance size, exploring the product **on the
    /// fly**: the TM transition system is stepped lazily by
    /// [`tm_automata::check_inclusion_otf_stats`] — no intermediate NFA
    /// is built — and
    /// the frontier is sharded across [`modelcheck_threads`] threads
    /// (`TM_MODELCHECK_THREADS=1` forces the deterministic sequential
    /// engine; verdicts and counterexample words are identical either
    /// way).
    ///
    /// # Panics
    ///
    /// Panics if `tm`'s instance size disagrees with the checker's, or
    /// the TM's reachable state space exceeds [`DEFAULT_MAX_STATES`].
    pub fn check<A>(&self, tm: &A) -> SafetyVerdict
    where
        A: TmAlgorithm + Sync,
        A::State: Send + Sync,
    {
        assert_eq!(tm.threads(), self.threads, "thread count mismatch");
        assert_eq!(tm.vars(), self.vars, "variable count mismatch");
        let total = Instant::now();
        let source = MostGeneralSource::new(tm, self.compiled.alphabet().clone());
        let check_start = Instant::now();
        let (result, stats) = check_inclusion_otf_bounded(
            &source,
            &self.compiled,
            modelcheck_threads(),
            DEFAULT_MAX_STATES,
        )
        .unwrap_or_else(|error| panic!("safety check failed: {error}"));
        let check_time = check_start.elapsed();
        let (outcome, product_states) = match result {
            InclusionResult::Included { product_states } => {
                (SafetyOutcome::Verified, product_states)
            }
            InclusionResult::Counterexample {
                word,
                product_states,
            } => {
                let word: Word = word.into_iter().collect();
                debug_assert!(
                    !self.property.holds(&word),
                    "counterexample not confirmed by the reference checker: {word}"
                );
                (SafetyOutcome::Violation(word), product_states)
            }
        };
        SafetyVerdict {
            tm_name: tm.name(),
            property: self.property,
            tm_states: stats.impl_states,
            spec_states: self.spec.num_states(),
            product_states,
            check_time,
            total_time: total.elapsed(),
            outcome,
        }
    }
}

/// One-shot convenience wrapper: checks the property through a throwaway
/// default [`crate::Verifier`] session (lazy specification stepping, so
/// `spec_states` reports the specification states the product touched —
/// the full automaton is never determinized).
///
/// **Migration note:** a caller checking several TMs or several
/// properties at one instance size should create a [`crate::Verifier`]
/// and call [`crate::Verifier::check_safety`] — the session shares the
/// interned specification artifacts across all of its queries (and pass
/// [`crate::SpecMode::Eager`] to reproduce this wrapper's pre-session
/// behavior of determinizing the specification up front).
///
/// # Panics
///
/// As for [`SafetyChecker::check`].
///
/// # Examples
///
/// ```
/// use tm_checker::check_safety;
/// use tm_lang::SafetyProperty;
/// use tm_algorithms::{Tl2Tm, ValidationStyle};
///
/// // The paper's modified TL2 (split validation, unsafe order) is not
/// // strictly serializable:
/// let modified = Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock);
/// let verdict = check_safety(&modified, SafetyProperty::StrictSerializability);
/// assert!(!verdict.holds());
/// ```
pub fn check_safety<A>(tm: &A, property: SafetyProperty) -> SafetyVerdict
where
    A: TmAlgorithm + Sync,
    A::State: Send + Sync,
{
    crate::Verifier::new(tm.threads(), tm.vars())
        .check_safety(tm, property)
        .into_safety()
        .expect("safety query returns a safety verdict")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algorithms::{
        DstmTm, PoliteCm, SequentialTm, Tl2Tm, TwoPhaseTm, ValidationStyle,
        WithContentionManager,
    };
    use tm_lang::is_strictly_serializable;

    #[test]
    fn sequential_tm_is_opaque() {
        let verdict = check_safety(&SequentialTm::new(2, 2), SafetyProperty::Opacity);
        assert!(verdict.holds());
        assert_eq!(verdict.tm_states, 3);
    }

    #[test]
    fn two_phase_is_opaque() {
        let checker = SafetyChecker::new(SafetyProperty::Opacity, 2, 2);
        let verdict = checker.check(&TwoPhaseTm::new(2, 2));
        assert!(verdict.holds(), "{:?}", verdict.counterexample());
    }

    #[test]
    fn dstm_is_strictly_serializable_and_opaque() {
        for p in SafetyProperty::all() {
            let verdict = check_safety(&DstmTm::new(2, 2), p);
            assert!(verdict.holds(), "{p:?}: {:?}", verdict.counterexample());
        }
    }

    #[test]
    fn modified_tl2_with_polite_has_counterexample() {
        let tm = WithContentionManager::new(
            Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock),
            PoliteCm,
        );
        let verdict = check_safety(&tm, SafetyProperty::StrictSerializability);
        let word = verdict.counterexample().expect("must be unsafe");
        assert!(!is_strictly_serializable(word));
        // The paper's w1 has length 6; BFS returns a shortest violation.
        assert!(word.len() <= 6, "counterexample too long: {word}");
    }

    #[test]
    fn canonical_spec_gives_same_verdicts() {
        for flavor in [SpecAutomaton::PaperDeterministic, SpecAutomaton::Canonical] {
            let checker =
                SafetyChecker::with_spec(SafetyProperty::Opacity, 2, 2, flavor);
            assert!(checker.check(&TwoPhaseTm::new(2, 2)).holds());
            let modified =
                Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock);
            assert!(!checker.check(&modified).holds());
        }
    }

    #[test]
    #[should_panic(expected = "thread count mismatch")]
    fn size_mismatch_is_rejected() {
        let checker = SafetyChecker::new(SafetyProperty::Opacity, 2, 2);
        let _ = checker.check(&SequentialTm::new(3, 2));
    }
}
