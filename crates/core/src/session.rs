//! The [`Verifier`] session: one entry point for every query of the
//! paper's method, with build-once compiled artifacts and a persistent
//! worker pool.
//!
//! The paper answers *many* queries per TM — two safety properties
//! (Table 2), three liveness properties per TM × contention-manager pair
//! (Table 3), plus the reduction methodology — and the session API is
//! shaped around that: a [`Verifier`] is created once per instance size
//! `(n, k)` and amortizes across all subsequent queries
//!
//! * the **specification artifacts** (the lazily interned
//!   [`tm_automata::SpecCache`] rows, or the eagerly determinized
//!   [`tm_automata::CompiledDfa`] under [`SpecMode::Eager`]), shared by
//!   every TM checked against the same property;
//! * the **compiled run graph** ([`tm_automata::CompiledRunGraph`]) of
//!   each TM, built on the first liveness query and answering all three
//!   properties (the `tables` bin used to build it three times per TM);
//! * the **worker pool** ([`tm_automata::WorkerPool`]), spawned once and
//!   reused by every parallel region of every query, replacing the
//!   per-BFS-level and per-property scoped-thread spawns.
//!
//! Every query returns a uniform [`Verdict`] carrying [`QueryStats`]
//! (states explored, build vs. search time, pool size, cache hit).
//! Determinism is unchanged: verdicts, counterexample words, and lassos
//! are bit-identical to the one-shot entry points at every pool size and
//! in both spec modes (pinned by `tests/inclusion_conformance.rs` and
//! `tests/liveness_conformance.rs`).
//!
//! The pre-session free functions ([`crate::check_safety`],
//! [`crate::check_liveness`], [`crate::verify_with_reduction`]) survive
//! as thin wrappers over a throwaway default session.
//!
//! Thread-safety: a `Verifier` is `Send` but not `Sync` — queries take
//! `&mut self` because they mutate the artifact caches. Concurrent
//! services share sessions as `Arc<Mutex<Verifier>>` (one mutex per
//! instance size, so independent sessions overlap while queries on one
//! session serialize; see the `tm-service` registry). Holding no
//! cross-query invariants, a session is safe to keep using after a
//! panicked query poisoned its mutex.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tm_algorithms::{MostGeneralRunSource, MostGeneralSource, RunLabel, TmAlgorithm};
use tm_automata::{
    check_inclusion_otf_budget, check_inclusion_otf_cached_budget, modelcheck_threads, Alphabet,
    CancelToken, CompiledDfa, CompiledRunGraph, DtsSpecSource, EngineError, Executor, FxHashMap,
    InclusionResult, QueryBudget, SpecCache, WorkerPool,
};
use tm_lang::{LivenessProperty, SafetyProperty, Statement, Word};
use tm_spec::{spec_alphabet, DetSpec};

use crate::liveness::{property_queries, LivenessOutcome, LivenessVerdict, RunLasso};
use crate::reduction::ReductionEvidence;
use crate::report::{QueryStats, Verdict, VerdictOutcome};
use crate::safety::{SafetyOutcome, SafetyVerdict};
use crate::structural::check_all_structural;

/// How a session evaluates the deterministic specification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SpecMode {
    /// Step the specification rules on the fly ([`tm_automata::SpecCache`]
    /// over [`tm_spec::DetSpec`]): only specification states the TM
    /// actually reaches are ever computed, and the interned rows persist
    /// across the session. The default — it is the only mode that scales
    /// past (3, 2), where eager determinization dominates every check.
    /// The product BFS runs on the deterministic sequential engine.
    #[default]
    Lazy,
    /// Determinize the specification up front into a dense
    /// [`tm_automata::CompiledDfa`] (the pre-session `SafetyChecker`
    /// behavior). Enables the parallel product BFS on the session pool
    /// and reports the full specification state count; explicit opt-in
    /// for instance sizes where determinization is affordable.
    Eager,
}

/// An eagerly determinized, compiled specification (one per property and
/// instance size).
struct EagerSpec {
    compiled: CompiledDfa<Statement>,
    build_time: Duration,
}

/// A lazily stepped specification with its persistent interned rows (one
/// per property and instance size).
struct LazySpec {
    cache: SpecCache<DtsSpecSource<DetSpec>>,
    build_time: Duration,
}

/// The compiled run graph of one TM (keyed by `tm.name()`), answering
/// every liveness property of the session.
struct RunGraphArtifact {
    graph: CompiledRunGraph<RunLabel>,
    states: usize,
    build_time: Duration,
}

/// A verification session for one instance size `(n, k)`: the single
/// entry point of the crate, owning the persistent worker pool and the
/// per-property / per-TM artifact caches (see the module docs).
///
/// Construction is cheap and lazy: the pool spawns on the first parallel
/// query, artifacts build on first use. Builder-style setters configure
/// the session before (or between) queries.
///
/// # Examples
///
/// Answer Table 3's three properties from one compiled run graph:
///
/// ```
/// use tm_checker::Verifier;
/// use tm_lang::LivenessProperty;
/// use tm_algorithms::{AggressiveCm, DstmTm, WithContentionManager};
///
/// let mut verifier = Verifier::new(2, 1).pool_size(2);
/// let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
/// assert!(verifier.check_liveness(&tm, LivenessProperty::ObstructionFreedom).holds());
/// assert!(!verifier.check_liveness(&tm, LivenessProperty::LivelockFreedom).holds());
/// assert!(!verifier.check_liveness(&tm, LivenessProperty::WaitFreedom).holds());
/// // The graph was built once and reused by the second and third query.
/// assert_eq!(verifier.run_graph_builds(), 1);
/// ```
pub struct Verifier {
    threads: usize,
    vars: usize,
    pool_size: usize,
    spec_mode: SpecMode,
    max_states: usize,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
    pool: Option<WorkerPool>,
    /// A pool owned by someone else (a service multiplexing many
    /// sessions); takes precedence over the session-owned `pool`.
    shared_pool: Option<Arc<WorkerPool>>,
    eager_specs: FxHashMap<(SafetyProperty, usize, usize), EagerSpec>,
    lazy_specs: FxHashMap<(SafetyProperty, usize, usize), LazySpec>,
    run_graphs: FxHashMap<String, RunGraphArtifact>,
    run_graph_builds: usize,
    spec_builds: usize,
    run_graph_rebuilds: usize,
    spec_rebuilds: usize,
    /// Total builds ever per TM name — survives eviction, so a build
    /// after [`Verifier::drop_run_graph`] is recognized as a rebuild.
    run_graph_history: FxHashMap<String, usize>,
    /// Total builds ever per (property, n, k, mode) — the eviction
    /// counterpart for specification artifacts.
    spec_history: FxHashMap<(SafetyProperty, usize, usize, SpecMode), usize>,
}

impl std::fmt::Debug for Verifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Verifier")
            .field("threads", &self.threads)
            .field("vars", &self.vars)
            .field("pool_size", &self.pool_size)
            .field("spec_mode", &self.spec_mode)
            .field("max_states", &self.max_states)
            .field("run_graph_builds", &self.run_graph_builds)
            .field("spec_builds", &self.spec_builds)
            .finish()
    }
}

use crate::safety::DEFAULT_MAX_STATES;

impl Verifier {
    /// Creates a session for instance size `(threads, vars)` with the
    /// defaults: pool size from [`tm_automata::modelcheck_threads`]
    /// (the `TM_MODELCHECK_THREADS` environment variable),
    /// [`SpecMode::Lazy`], and a [`crate::DEFAULT_MAX_STATES`] bound.
    pub fn new(threads: usize, vars: usize) -> Self {
        Verifier {
            threads,
            vars,
            pool_size: modelcheck_threads(),
            spec_mode: SpecMode::default(),
            max_states: DEFAULT_MAX_STATES,
            deadline: None,
            cancel: None,
            pool: None,
            shared_pool: None,
            eager_specs: FxHashMap::default(),
            lazy_specs: FxHashMap::default(),
            run_graphs: FxHashMap::default(),
            run_graph_builds: 0,
            spec_builds: 0,
            run_graph_rebuilds: 0,
            spec_rebuilds: 0,
            run_graph_history: FxHashMap::default(),
            spec_history: FxHashMap::default(),
        }
    }

    /// Sets the worker-pool size (clamped to at least 1; 1 selects the
    /// deterministic sequential engines). Results are identical at every
    /// size. An already-spawned pool of a different size is replaced on
    /// the next parallel query.
    pub fn pool_size(mut self, size: usize) -> Self {
        let size = size.max(1);
        if size != self.pool_size {
            self.pool_size = size;
            self.pool = None;
            self.shared_pool = None;
        }
        self
    }

    /// Attaches a worker pool owned by the caller: every parallel region
    /// of this session dispatches to it instead of a session-owned pool.
    /// This is how a service multiplexes many sessions over one fixed
    /// set of worker threads (see the `tm-service` crate). The session's
    /// pool size becomes the shared pool's.
    pub fn shared_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool_size = pool.size();
        self.pool = None;
        self.shared_pool = Some(pool);
        self
    }

    /// Sets how specifications are evaluated (see [`SpecMode`]).
    pub fn spec_mode(mut self, mode: SpecMode) -> Self {
        self.spec_mode = mode;
        self
    }

    /// Sets the bound on reachable state spaces. A query whose state
    /// space exceeds the bound returns
    /// [`VerdictOutcome::Aborted`]`(`[`EngineError::StateLimit`]`)`
    /// instead of panicking.
    pub fn max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Sets a per-query wall-clock deadline: each subsequent query that
    /// runs longer (artifact build included) returns
    /// [`VerdictOutcome::Aborted`]`(`[`EngineError::Deadline`]`)` with
    /// the partial stats it had accumulated. The engines poll the
    /// deadline at BFS level boundaries and Tarjan iteration chunks, so
    /// overshoot is bounded by one chunk.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token checked by every subsequent query:
    /// [`CancelToken::cancel`] from another thread retires the running
    /// query at its next budget poll with
    /// [`VerdictOutcome::Aborted`]`(`[`EngineError::Cancelled`]`)`.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// [`Verifier::max_states`] for an already-shared session: the
    /// consuming builder setters cannot reconfigure a `Verifier` living
    /// inside an `Arc<Mutex<_>>`, so the reconfigurable limits also have
    /// `&mut self` forms usable through a lock guard.
    pub fn set_max_states(&mut self, max_states: usize) {
        self.max_states = max_states;
    }

    /// [`Verifier::deadline`] in `&mut self` form (see
    /// [`Verifier::set_max_states`]); `None` clears the deadline.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// [`Verifier::cancel_token`] in `&mut self` form (see
    /// [`Verifier::set_max_states`]); `None` detaches the token.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The budget one query runs under: the session's state bound, plus
    /// the optional deadline (counted from *now* — each query gets the
    /// full window) and cancellation token.
    fn query_budget(&self) -> QueryBudget {
        let mut budget = QueryBudget::new(self.max_states);
        if let Some(deadline) = self.deadline {
            budget = budget.with_timeout(deadline);
        }
        if let Some(token) = &self.cancel {
            budget = budget.with_cancel(token.clone());
        }
        budget
    }

    /// Number of threads of the session's instance size.
    pub fn instance_threads(&self) -> usize {
        self.threads
    }

    /// Number of variables of the session's instance size.
    pub fn instance_vars(&self) -> usize {
        self.vars
    }

    /// The configured worker-pool size.
    pub fn configured_pool_size(&self) -> usize {
        self.pool_size
    }

    /// How many run graphs this session has compiled so far — one per
    /// distinct TM with at least one liveness query, never more (the
    /// build-once counter the `tables` bin asserts on).
    pub fn run_graph_builds(&self) -> usize {
        self.run_graph_builds
    }

    /// How many specification artifacts this session has built so far —
    /// at most one per (property, instance size) queried.
    pub fn spec_builds(&self) -> usize {
        self.spec_builds
    }

    /// The recorded build time of `tm_name`'s cached run graph, if this
    /// session has compiled one — however early in the session that
    /// happened (what the bench suite reports as the amortized
    /// per-TM build cost).
    pub fn run_graph_build_time(&self, tm_name: &str) -> Option<Duration> {
        self.run_graphs.get(tm_name).map(|artifact| artifact.build_time)
    }

    /// Spawns the pool if a parallel query needs it (a shared pool is
    /// never spawned here — the owner did).
    fn ensure_pool(&mut self) {
        if self.shared_pool.is_none() && self.pool_size > 1 && self.pool.is_none() {
            self.pool = Some(WorkerPool::new(self.pool_size));
        }
    }

    /// The executor parallel regions run on: the shared pool if one is
    /// attached, else the session-owned pool, else sequential.
    fn executor(&self) -> Executor<'_> {
        if let Some(pool) = self.shared_pool.as_deref() {
            if pool.size() > 1 {
                return Executor::Pool(pool);
            }
            return Executor::Sequential;
        }
        match self.pool.as_ref() {
            Some(pool) => Executor::Pool(pool),
            None => Executor::Sequential,
        }
    }

    /// Evicts the cached compiled run graph of `tm_name`, returning
    /// whether one was cached. The next liveness query for that TM
    /// transparently rebuilds it — and reports the build in
    /// [`QueryStats::rebuilds`] and [`Verifier::run_graph_rebuilds`].
    /// Verdicts and lassos are unaffected by eviction (the build is
    /// deterministic); only time and memory are.
    pub fn drop_run_graph(&mut self, tm_name: &str) -> bool {
        self.run_graphs.remove(tm_name).is_some()
    }

    /// Evicts every cached specification artifact for `property` — lazy
    /// and eager, at every instance size this session has touched —
    /// returning whether any was cached. The next safety query against
    /// the property transparently rebuilds (and reports a rebuild, as
    /// with [`Verifier::drop_run_graph`]).
    pub fn drop_spec(&mut self, property: SafetyProperty) -> bool {
        let before = self.lazy_specs.len() + self.eager_specs.len();
        self.lazy_specs.retain(|key, _| key.0 != property);
        self.eager_specs.retain(|key, _| key.0 != property);
        before != self.lazy_specs.len() + self.eager_specs.len()
    }

    /// Exports the cached compiled run graph of `tm_name` for
    /// persistence: the graph (cloned), the states-explored figure, and
    /// the original build time. `None` when nothing is cached. Pairs
    /// with [`Verifier::import_run_graph`]; a service *demotes* an
    /// artifact by exporting it to disk and then calling
    /// [`Verifier::drop_run_graph`].
    pub fn export_run_graph(
        &self,
        tm_name: &str,
    ) -> Option<(CompiledRunGraph<RunLabel>, usize, Duration)> {
        self.run_graphs
            .get(tm_name)
            .map(|artifact| (artifact.graph.clone(), artifact.states, artifact.build_time))
    }

    /// Installs a previously exported (or freshly loaded-from-disk)
    /// compiled run graph as `tm_name`'s cached artifact, replacing any
    /// cached one.
    ///
    /// Importing is **neither a build nor a rebuild** — the build
    /// counters and [`QueryStats::rebuilds`] are untouched, so a
    /// warm-started service truthfully reports zero rebuilds. The build
    /// *history* is marked, so a later eviction followed by an actual
    /// build still counts as a rebuild.
    ///
    /// The graph must come from [`Verifier::export_run_graph`] or a
    /// verified store load: builds are deterministic, so an imported
    /// artifact answers queries bit-identically to a rebuilt one.
    pub fn import_run_graph(
        &mut self,
        tm_name: &str,
        graph: CompiledRunGraph<RunLabel>,
        states: usize,
        build_time: Duration,
    ) {
        self.run_graphs.insert(
            tm_name.to_owned(),
            RunGraphArtifact {
                graph,
                states,
                build_time,
            },
        );
        *self
            .run_graph_history
            .entry(tm_name.to_owned())
            .or_insert(0) += 1;
    }

    /// Exports the interned rows of the cached lazy specification for
    /// `(property, n, k)`: the interned states, the computed successor
    /// rows, and the original build time. `None` when nothing is cached
    /// (or only an eager artifact is). Pairs with
    /// [`Verifier::import_lazy_spec`].
    #[allow(clippy::type_complexity)]
    pub fn export_lazy_spec(
        &self,
        property: SafetyProperty,
        n: usize,
        k: usize,
    ) -> Option<(Vec<tm_spec::DetState>, Vec<Option<Box<[u32]>>>, Duration)> {
        self.lazy_specs.get(&(property, n, k)).map(|artifact| {
            let (states, rows) = artifact.cache.to_parts();
            (states, rows, artifact.build_time)
        })
    }

    /// Installs previously exported lazy-specification rows for
    /// `(property, n, k)`, validating them against a freshly
    /// constructed specification source (initial state, row widths, id
    /// ranges). Like [`Verifier::import_run_graph`], this is neither a
    /// build nor a rebuild, but it marks the build history.
    ///
    /// The interned rows are a pure memo of the deterministic
    /// specification semantics — ids are dense renames in discovery
    /// order, and any state the memo lacks is stepped on demand — so an
    /// import can change timing, never verdicts.
    ///
    /// # Errors
    ///
    /// A static description of the first validation failure; the
    /// session is left unchanged.
    pub fn import_lazy_spec(
        &mut self,
        property: SafetyProperty,
        n: usize,
        k: usize,
        states: Vec<tm_spec::DetState>,
        rows: Vec<Option<Box<[u32]>>>,
        build_time: Duration,
    ) -> Result<(), &'static str> {
        let source = DtsSpecSource::new(DetSpec::new(property, n, k), spec_alphabet(n, k));
        let cache = SpecCache::from_parts(source, states, rows)?;
        self.lazy_specs
            .insert((property, n, k), LazySpec { cache, build_time });
        *self
            .spec_history
            .entry((property, n, k, SpecMode::Lazy))
            .or_insert(0) += 1;
        Ok(())
    }

    /// How many run-graph builds were *re*builds after a
    /// [`Verifier::drop_run_graph`] eviction.
    pub fn run_graph_rebuilds(&self) -> usize {
        self.run_graph_rebuilds
    }

    /// How many specification builds were *re*builds after a
    /// [`Verifier::drop_spec`] eviction.
    pub fn spec_rebuilds(&self) -> usize {
        self.spec_rebuilds
    }

    /// Estimated heap footprint of `tm_name`'s cached run graph (the
    /// [`tm_automata::CompiledRunGraph::heap_bytes`] figure), if one is
    /// cached.
    pub fn run_graph_heap_bytes(&self, tm_name: &str) -> Option<usize> {
        self.run_graphs.get(tm_name).map(|artifact| artifact.graph.heap_bytes())
    }

    /// Estimated heap footprint of every cached specification artifact
    /// for `property` (lazy and eager, summed over instance sizes), or
    /// `None` if none is cached.
    pub fn spec_heap_bytes(&self, property: SafetyProperty) -> Option<usize> {
        let mut bytes = 0;
        let mut any = false;
        for (key, artifact) in &self.lazy_specs {
            if key.0 == property {
                bytes += artifact.cache.heap_bytes();
                any = true;
            }
        }
        for (key, artifact) in &self.eager_specs {
            if key.0 == property {
                bytes += artifact.compiled.heap_bytes();
                any = true;
            }
        }
        any.then_some(bytes)
    }

    /// Estimated heap footprint of every cached artifact of the session
    /// (run graphs plus specifications).
    pub fn artifact_heap_bytes(&self) -> usize {
        let graphs: usize = self
            .run_graphs
            .values()
            .map(|artifact| artifact.graph.heap_bytes())
            .sum();
        let lazy: usize = self.lazy_specs.values().map(|a| a.cache.heap_bytes()).sum();
        let eager: usize = self.eager_specs.values().map(|a| a.compiled.heap_bytes()).sum();
        graphs + lazy + eager
    }

    /// Names of the TMs whose run graphs are currently cached, sorted
    /// (the hash map's own order is not deterministic).
    pub fn cached_run_graphs(&self) -> Vec<String> {
        let mut names: Vec<String> = self.run_graphs.keys().cloned().collect();
        names.sort();
        names
    }

    /// Checks a safety property of `tm` on the most general program,
    /// reusing the session's specification artifacts (and, under
    /// [`SpecMode::Eager`], its worker pool).
    ///
    /// A state space exceeding the session's bound, an expired
    /// [`Verifier::deadline`], or a cancelled [`Verifier::cancel_token`]
    /// returns [`VerdictOutcome::Aborted`] with partial stats — never a
    /// panic.
    ///
    /// # Panics
    ///
    /// Panics if `tm`'s instance size disagrees with the session's.
    pub fn check_safety<A>(&mut self, tm: &A, property: SafetyProperty) -> Verdict
    where
        A: TmAlgorithm + Sync,
        A::State: Send + Sync,
    {
        assert_eq!(tm.threads(), self.threads, "thread count mismatch");
        assert_eq!(tm.vars(), self.vars, "variable count mismatch");
        capture_phases(|| self.safety_query(tm, property))
    }

    /// The safety pipeline, parameterized over the TM's own size so the
    /// reduction methodology can run spot checks at non-session sizes
    /// against the same artifact caches.
    fn safety_query<A>(&mut self, tm: &A, property: SafetyProperty) -> Verdict
    where
        A: TmAlgorithm + Sync,
        A::State: Send + Sync,
    {
        let total = Instant::now();
        let (n, k) = (tm.threads(), tm.vars());
        let key = (property, n, k);
        let budget = self.query_budget();
        match self.spec_mode {
            SpecMode::Lazy => {
                let cached = self.lazy_specs.contains_key(&key);
                let mut rebuilds = 0;
                if !cached {
                    let build = Instant::now();
                    let spec = DetSpec::new(property, n, k);
                    let source = DtsSpecSource::new(spec, spec_alphabet(n, k));
                    self.lazy_specs.insert(
                        key,
                        LazySpec {
                            cache: SpecCache::new(source),
                            build_time: build.elapsed(),
                        },
                    );
                    rebuilds = self.record_spec_build(property, n, k, SpecMode::Lazy);
                }
                let artifact = self.lazy_specs.get_mut(&key).expect("just ensured");
                let source = MostGeneralSource::new(
                    tm,
                    Alphabet::from_letters(artifact.cache.source().letters()),
                );
                let search = Instant::now();
                let (result, stats) =
                    match check_inclusion_otf_cached_budget(&source, &mut artifact.cache, &budget)
                    {
                        Ok(pair) => pair,
                        Err(error) => {
                            return abort_verdict(
                                error,
                                QueryStats {
                                    states_explored: 0,
                                    build_time: if cached {
                                        Duration::ZERO
                                    } else {
                                        artifact.build_time
                                    },
                                    search_time: search.elapsed(),
                                    pool_size: 1,
                                    artifact_cached: cached,
                                    rebuilds,
                                    ..QueryStats::default()
                                },
                            );
                        }
                    };
                let search_time = search.elapsed();
                let verdict = assemble_safety(
                    tm.name(),
                    property,
                    result,
                    stats.impl_states,
                    artifact.cache.touched(),
                    search_time,
                    total.elapsed(),
                );
                let states_explored = verdict.product_states;
                Verdict {
                    outcome: VerdictOutcome::Safety(verdict),
                    stats: QueryStats {
                        states_explored,
                        build_time: if cached { Duration::ZERO } else { artifact.build_time },
                        search_time,
                        pool_size: 1, // the lazy spec path is sequential
                        artifact_cached: cached,
                        rebuilds,
                        ..QueryStats::default()
                    },
                }
            }
            SpecMode::Eager => {
                let cached = self.eager_specs.contains_key(&key);
                let mut rebuilds = 0;
                if !cached {
                    let build = Instant::now();
                    let compiled = match DetSpec::new(property, n, k).try_to_dfa(&budget) {
                        Ok((dfa, _)) => dfa.compile(),
                        Err(error) => {
                            return abort_verdict(
                                error,
                                QueryStats {
                                    states_explored: 0,
                                    build_time: build.elapsed(),
                                    search_time: Duration::ZERO,
                                    pool_size: 1,
                                    artifact_cached: false,
                                    rebuilds: 0,
                                    ..QueryStats::default()
                                },
                            );
                        }
                    };
                    self.eager_specs.insert(
                        key,
                        EagerSpec {
                            compiled,
                            build_time: build.elapsed(),
                        },
                    );
                    rebuilds = self.record_spec_build(property, n, k, SpecMode::Eager);
                }
                self.ensure_pool();
                let artifact = &self.eager_specs[&key];
                let executor = self.executor();
                let source = MostGeneralSource::new(tm, artifact.compiled.alphabet().clone());
                let search = Instant::now();
                let pool_size = executor.threads();
                let (result, stats) = match check_inclusion_otf_budget(
                    &source,
                    &artifact.compiled,
                    &executor,
                    &budget,
                ) {
                    Ok(pair) => pair,
                    Err(error) => {
                        return abort_verdict(
                            error,
                            QueryStats {
                                states_explored: 0,
                                build_time: if cached {
                                    Duration::ZERO
                                } else {
                                    artifact.build_time
                                },
                                search_time: search.elapsed(),
                                pool_size,
                                artifact_cached: cached,
                                rebuilds,
                                ..QueryStats::default()
                            },
                        );
                    }
                };
                let search_time = search.elapsed();
                let verdict = assemble_safety(
                    tm.name(),
                    property,
                    result,
                    stats.impl_states,
                    artifact.compiled.num_states(),
                    search_time,
                    total.elapsed(),
                );
                let states_explored = verdict.product_states;
                Verdict {
                    outcome: VerdictOutcome::Safety(verdict),
                    stats: QueryStats {
                        states_explored,
                        build_time: if cached { Duration::ZERO } else { artifact.build_time },
                        search_time,
                        pool_size,
                        artifact_cached: cached,
                        rebuilds,
                        ..QueryStats::default()
                    },
                }
            }
        }
    }

    /// Records a specification build in the counters, returning 1 when it
    /// was a rebuild (the artifact existed before a
    /// [`Verifier::drop_spec`]) and 0 on first build.
    fn record_spec_build(
        &mut self,
        property: SafetyProperty,
        n: usize,
        k: usize,
        mode: SpecMode,
    ) -> usize {
        self.spec_builds += 1;
        let rebuilt = bump_build_history(self.spec_history.entry((property, n, k, mode)).or_insert(0));
        self.spec_rebuilds += rebuilt;
        rebuilt
    }

    /// Checks a liveness property of `tm` (× its contention manager) on
    /// the most general program. The compiled run graph is built on the
    /// first query for this TM and cached; subsequent properties are pure
    /// loop searches over it, fanned out on the session pool.
    ///
    /// A run-graph state space exceeding the session's bound, an expired
    /// [`Verifier::deadline`], or a cancelled [`Verifier::cancel_token`]
    /// returns [`VerdictOutcome::Aborted`] with partial stats — never a
    /// panic.
    ///
    /// # Panics
    ///
    /// Panics if `tm`'s instance size disagrees with the session's.
    pub fn check_liveness<A: TmAlgorithm>(
        &mut self,
        tm: &A,
        property: LivenessProperty,
    ) -> Verdict {
        assert_eq!(tm.threads(), self.threads, "thread count mismatch");
        assert_eq!(tm.vars(), self.vars, "variable count mismatch");
        capture_phases(|| self.liveness_query(tm, property))
    }

    /// The liveness pipeline behind [`Verifier::check_liveness`] (split
    /// out so the phase capture brackets exactly one query).
    fn liveness_query<A: TmAlgorithm>(
        &mut self,
        tm: &A,
        property: LivenessProperty,
    ) -> Verdict {
        let total = Instant::now();
        let budget = self.query_budget();
        let key = tm.name();
        let cached = self.run_graphs.contains_key(&key);
        let mut rebuilds = 0;
        if !cached {
            let build = Instant::now();
            let source = MostGeneralRunSource::new(tm);
            let (graph, states) = match CompiledRunGraph::build_budget(&source, &budget) {
                Ok(pair) => pair,
                Err(error) => {
                    return abort_verdict(
                        error,
                        QueryStats {
                            states_explored: 0,
                            build_time: build.elapsed(),
                            search_time: Duration::ZERO,
                            pool_size: 1,
                            artifact_cached: false,
                            rebuilds: 0,
                            ..QueryStats::default()
                        },
                    );
                }
            };
            self.run_graphs.insert(
                key.clone(),
                RunGraphArtifact {
                    graph,
                    states: states.len(),
                    build_time: build.elapsed(),
                },
            );
            self.run_graph_builds += 1;
            rebuilds = bump_build_history(self.run_graph_history.entry(key.clone()).or_insert(0));
            self.run_graph_rebuilds += rebuilds;
        }
        self.ensure_pool();
        let queries = property_queries(self.threads, property);
        let artifact = &self.run_graphs[&key];
        let executor = self.executor();
        let search = Instant::now();
        let outcome = match artifact.graph.find_first_loop_budget(&queries, &executor, &budget) {
            Ok(Some((_, lasso))) => LivenessOutcome::Violation(RunLasso {
                prefix: lasso.prefix,
                cycle: lasso.cycle,
            }),
            Ok(None) => LivenessOutcome::Verified,
            Err(error) => {
                return abort_verdict(
                    error,
                    QueryStats {
                        states_explored: artifact.states,
                        build_time: if cached { Duration::ZERO } else { artifact.build_time },
                        search_time: search.elapsed(),
                        pool_size: executor.threads(),
                        artifact_cached: cached,
                        rebuilds,
                        ..QueryStats::default()
                    },
                );
            }
        };
        let search_time = search.elapsed();
        let verdict = LivenessVerdict {
            tm_name: key,
            property,
            tm_states: artifact.states,
            total_time: total.elapsed(),
            outcome,
        };
        Verdict {
            outcome: VerdictOutcome::Liveness(verdict),
            stats: QueryStats {
                states_explored: artifact.states,
                build_time: if cached { Duration::ZERO } else { artifact.build_time },
                search_time,
                pool_size: executor.threads(),
                artifact_cached: cached,
                rebuilds,
                ..QueryStats::default()
            },
        }
    }

    /// Applies the paper's reduction methodology (§4) through the
    /// session: the safety check at the session's instance size (the
    /// reduction bound), bounded-exhaustive structural evidence, and spot
    /// checks at the given larger sizes — all through the session's
    /// artifact caches, so repeated reduction runs (or runs sharing
    /// properties with earlier queries) rebuild nothing.
    ///
    /// `make(n, k)` must build the same TM algorithm at size `(n, k)`.
    ///
    /// If any constituent query aborts at a resource limit (state bound,
    /// deadline, cancellation), the whole run returns that
    /// [`VerdictOutcome::Aborted`] with the stats accumulated so far.
    pub fn verify_with_reduction<A, F>(
        &mut self,
        make: F,
        property: SafetyProperty,
        structural_depth: usize,
        spot_sizes: &[(usize, usize)],
    ) -> Verdict
    where
        A: TmAlgorithm + Sync,
        A::State: Send + Sync,
        F: Fn(usize, usize) -> A,
    {
        capture_phases(|| self.reduction_query(make, property, structural_depth, spot_sizes))
    }

    /// The reduction pipeline behind [`Verifier::verify_with_reduction`]
    /// (split out so the phase capture brackets the whole methodology
    /// run, spot checks included).
    fn reduction_query<A, F>(
        &mut self,
        make: F,
        property: SafetyProperty,
        structural_depth: usize,
        spot_sizes: &[(usize, usize)],
    ) -> Verdict
    where
        A: TmAlgorithm + Sync,
        A::State: Send + Sync,
        F: Fn(usize, usize) -> A,
    {
        let total = Instant::now();
        let base_tm = make(self.threads, self.vars);
        let base = self.safety_query(&base_tm, property);
        if matches!(base.outcome, VerdictOutcome::Aborted(_)) {
            return base;
        }
        let mut build_time = base.stats.build_time;
        let mut search_time = base.stats.search_time;
        let states_explored = base.stats.states_explored;
        let pool_size = base.stats.pool_size;
        let mut all_cached = base.stats.artifact_cached;
        let mut rebuilds = base.stats.rebuilds;
        let base_verdict = base.into_safety().expect("safety query");
        let structural = check_all_structural(&base_tm, structural_depth);
        let structural_time = total
            .elapsed()
            .saturating_sub(build_time)
            .saturating_sub(search_time);
        let mut spot_checks = Vec::with_capacity(spot_sizes.len());
        for &(n, k) in spot_sizes {
            let tm = make(n, k);
            let spot = self.safety_query(&tm, property);
            build_time += spot.stats.build_time;
            search_time += spot.stats.search_time;
            all_cached &= spot.stats.artifact_cached;
            rebuilds += spot.stats.rebuilds;
            if let VerdictOutcome::Aborted(error) = spot.outcome {
                return abort_verdict(
                    error,
                    QueryStats {
                        states_explored,
                        build_time,
                        search_time,
                        pool_size,
                        artifact_cached: all_cached,
                        rebuilds,
                        ..QueryStats::default()
                    },
                );
            }
            spot_checks.push(spot.into_safety().expect("safety query"));
        }
        let evidence = ReductionEvidence {
            base_verdict,
            structural,
            spot_checks,
        };
        Verdict {
            outcome: VerdictOutcome::Reduction(evidence),
            stats: QueryStats {
                states_explored,
                build_time,
                // Structural evidence is part of the methodology's search.
                search_time: search_time + structural_time,
                pool_size,
                artifact_cached: all_cached,
                rebuilds,
                ..QueryStats::default()
            },
        }
    }
}

/// Attaches the engine-phase breakdown to a query's stats
/// ([`QueryStats::phase_ns`]). Under an already-installed recorder (the
/// service's per-query one) the query is bracketed by two phase-total
/// snapshots, so its share still flows to the outer recorder; otherwise a
/// fresh recorder is installed for the query's duration. Free when
/// instrumentation is disabled (`TM_OBS=off`): the stats stay all-zero.
fn capture_phases(f: impl FnOnce() -> Verdict) -> Verdict {
    match tm_obs::phase_totals() {
        Some(before) => {
            let mut verdict = f();
            if let Some(after) = tm_obs::phase_totals() {
                for ((slot, a), b) in verdict.stats.phase_ns.iter_mut().zip(after).zip(before) {
                    *slot = a.saturating_sub(b);
                }
            }
            verdict
        }
        None => {
            let (mut verdict, record) = tm_obs::ensure_recorder(f);
            if let Some(record) = record {
                verdict.stats.phase_ns = record.phase_ns;
            }
            verdict
        }
    }
}

/// Wraps an engine abort into the uniform verdict envelope with the
/// partial stats the query had accumulated when it was retired.
fn abort_verdict(error: EngineError, stats: QueryStats) -> Verdict {
    Verdict {
        outcome: VerdictOutcome::Aborted(error),
        stats,
    }
}

/// Bumps a per-artifact build-history entry, returning 1 when the build
/// was a *re*build (the artifact had been built — and evicted — before)
/// and 0 on first build. The one place the rebuild-counting rule lives,
/// shared by the spec and run-graph paths.
fn bump_build_history(seen: &mut usize) -> usize {
    *seen += 1;
    usize::from(*seen > 1)
}

/// Builds a [`SafetyVerdict`] from an inclusion result, re-checking any
/// counterexample against the definition-level oracle (debug builds).
fn assemble_safety(
    tm_name: String,
    property: SafetyProperty,
    result: InclusionResult<Statement>,
    tm_states: usize,
    spec_states: usize,
    check_time: Duration,
    total_time: Duration,
) -> SafetyVerdict {
    let (outcome, product_states) = match result {
        InclusionResult::Included { product_states } => (SafetyOutcome::Verified, product_states),
        InclusionResult::Counterexample {
            word,
            product_states,
        } => {
            let word: Word = word.into_iter().collect();
            debug_assert!(
                !property.holds(&word),
                "counterexample not confirmed by the reference checker: {word}"
            );
            (SafetyOutcome::Violation(word), product_states)
        }
    };
    SafetyVerdict {
        tm_name,
        property,
        tm_states,
        spec_states,
        product_states,
        check_time,
        total_time,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algorithms::{
        AggressiveCm, DstmTm, PoliteCm, SequentialTm, Tl2Tm, TwoPhaseTm, ValidationStyle,
        WithContentionManager,
    };
    use tm_lang::is_strictly_serializable;

    #[test]
    fn safety_artifacts_are_shared_across_tms() {
        let mut verifier = Verifier::new(2, 2);
        assert!(verifier
            .check_safety(&SequentialTm::new(2, 2), SafetyProperty::Opacity)
            .holds());
        assert_eq!(verifier.spec_builds(), 1);
        let second = verifier.check_safety(&TwoPhaseTm::new(2, 2), SafetyProperty::Opacity);
        assert!(second.holds());
        assert!(second.stats.artifact_cached);
        assert_eq!(second.stats.build_time, Duration::ZERO);
        assert_eq!(verifier.spec_builds(), 1);
        // A different property is a different artifact.
        let other = verifier
            .check_safety(&SequentialTm::new(2, 2), SafetyProperty::StrictSerializability);
        assert!(!other.stats.artifact_cached);
        assert_eq!(verifier.spec_builds(), 2);
    }

    #[test]
    fn lazy_and_eager_modes_agree_on_verdict_and_word() {
        let tm = WithContentionManager::new(
            Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock),
            PoliteCm,
        );
        let lazy = Verifier::new(2, 2)
            .spec_mode(SpecMode::Lazy)
            .check_safety(&tm, SafetyProperty::StrictSerializability)
            .into_safety()
            .unwrap();
        let eager = Verifier::new(2, 2)
            .spec_mode(SpecMode::Eager)
            .pool_size(1)
            .check_safety(&tm, SafetyProperty::StrictSerializability)
            .into_safety()
            .unwrap();
        assert!(!lazy.holds() && !eager.holds());
        assert_eq!(lazy.counterexample(), eager.counterexample());
        let word = lazy.counterexample().unwrap();
        assert!(!is_strictly_serializable(word));
    }

    #[test]
    fn liveness_graph_is_built_once_per_tm() {
        let mut verifier = Verifier::new(2, 1).pool_size(4);
        let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
        let first = verifier.check_liveness(&tm, LivenessProperty::ObstructionFreedom);
        assert!(first.holds());
        assert!(!first.stats.artifact_cached);
        for property in [LivenessProperty::LivelockFreedom, LivenessProperty::WaitFreedom] {
            let verdict = verifier.check_liveness(&tm, property);
            assert!(!verdict.holds());
            assert!(verdict.stats.artifact_cached);
            assert_eq!(verdict.stats.build_time, Duration::ZERO);
            assert_eq!(verdict.stats.pool_size, 4);
        }
        assert_eq!(verifier.run_graph_builds(), 1);
        // A different TM builds its own graph.
        let other = TwoPhaseTm::new(2, 1);
        assert!(!verifier
            .check_liveness(&other, LivenessProperty::ObstructionFreedom)
            .holds());
        assert_eq!(verifier.run_graph_builds(), 2);
    }

    #[test]
    fn session_reduction_concludes_and_reuses_spec() {
        let mut verifier = Verifier::new(2, 2);
        let verdict = verifier.verify_with_reduction(
            SequentialTm::new,
            SafetyProperty::Opacity,
            4,
            &[(2, 1), (3, 1)],
        );
        assert!(verdict.holds());
        let evidence = verdict.as_reduction().unwrap();
        assert_eq!(evidence.spot_checks.len(), 2);
        // Base (2,2) + spots (2,1), (3,1): three spec artifacts.
        assert_eq!(verifier.spec_builds(), 3);
        // A second run over the same family answers from cache.
        let again = verifier.verify_with_reduction(
            SequentialTm::new,
            SafetyProperty::Opacity,
            4,
            &[(2, 1), (3, 1)],
        );
        assert!(again.holds());
        assert!(again.stats.artifact_cached);
        assert_eq!(verifier.spec_builds(), 3);
    }

    #[test]
    #[should_panic(expected = "thread count mismatch")]
    fn size_mismatch_is_rejected() {
        let mut verifier = Verifier::new(2, 2);
        let _ = verifier.check_safety(&SequentialTm::new(3, 2), SafetyProperty::Opacity);
    }

    #[test]
    fn a_state_blowup_aborts_instead_of_panicking() {
        for pool in [1, 4] {
            for mode in [SpecMode::Lazy, SpecMode::Eager] {
                let mut verifier = Verifier::new(2, 2)
                    .pool_size(pool)
                    .spec_mode(mode)
                    .max_states(10);
                let verdict = verifier.check_safety(&DstmTm::new(2, 2), SafetyProperty::Opacity);
                assert!(!verdict.holds(), "pool={pool} {mode:?}");
                assert_eq!(
                    verdict.abort_reason(),
                    Some(EngineError::StateLimit(10)),
                    "pool={pool} {mode:?}"
                );
            }
            let mut verifier = Verifier::new(2, 1).pool_size(pool).max_states(10);
            let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
            let verdict = verifier.check_liveness(&tm, LivenessProperty::ObstructionFreedom);
            assert!(!verdict.holds(), "pool={pool} liveness");
            assert_eq!(verdict.abort_reason(), Some(EngineError::StateLimit(10)));
        }
    }

    #[test]
    fn an_expired_deadline_aborts_every_engine() {
        for pool in [1, 4] {
            for mode in [SpecMode::Lazy, SpecMode::Eager] {
                let mut verifier = Verifier::new(2, 2)
                    .pool_size(pool)
                    .spec_mode(mode)
                    .deadline(Duration::ZERO);
                let verdict = verifier.check_safety(&DstmTm::new(2, 2), SafetyProperty::Opacity);
                assert_eq!(
                    verdict.abort_reason(),
                    Some(EngineError::Deadline),
                    "pool={pool} {mode:?}"
                );
            }
            let mut verifier = Verifier::new(2, 1).pool_size(pool).deadline(Duration::ZERO);
            let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
            let verdict = verifier.check_liveness(&tm, LivenessProperty::ObstructionFreedom);
            assert_eq!(verdict.abort_reason(), Some(EngineError::Deadline));
        }
    }

    #[test]
    fn a_cancelled_token_aborts_every_engine() {
        for pool in [1, 4] {
            let token = CancelToken::new();
            token.cancel();
            let mut verifier = Verifier::new(2, 2)
                .pool_size(pool)
                .cancel_token(token.clone());
            let verdict = verifier.check_safety(&DstmTm::new(2, 2), SafetyProperty::Opacity);
            assert_eq!(verdict.abort_reason(), Some(EngineError::Cancelled), "pool={pool}");
            let mut verifier = Verifier::new(2, 1).pool_size(pool).cancel_token(token);
            let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
            let verdict = verifier.check_liveness(&tm, LivenessProperty::ObstructionFreedom);
            assert_eq!(verdict.abort_reason(), Some(EngineError::Cancelled));
        }
    }

    #[test]
    fn an_aborted_query_reports_partial_stats_and_recovers() {
        // The same session answers normally once the limit is lifted —
        // an abort must not poison the artifact caches.
        let mut verifier = Verifier::new(2, 1).pool_size(1).max_states(10);
        let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
        let aborted = verifier.check_liveness(&tm, LivenessProperty::ObstructionFreedom);
        assert_eq!(aborted.abort_reason(), Some(EngineError::StateLimit(10)));
        assert_eq!(aborted.stats.pool_size, 1);
        let mut verifier = verifier.max_states(1_000_000);
        let verdict = verifier.check_liveness(&tm, LivenessProperty::ObstructionFreedom);
        assert!(verdict.holds());
    }

    #[test]
    fn reduction_stops_at_the_first_aborted_query() {
        let mut verifier = Verifier::new(2, 2).pool_size(1).max_states(10);
        let verdict = verifier.verify_with_reduction(
            SequentialTm::new,
            SafetyProperty::Opacity,
            4,
            &[(2, 1)],
        );
        assert!(!verdict.holds());
        assert_eq!(verdict.abort_reason(), Some(EngineError::StateLimit(10)));
    }
}
