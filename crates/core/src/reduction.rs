//! Orchestration of the paper's verification methodology (§4, §6): apply
//! the reduction theorem by combining the finite check at the reduction
//! bound with structural-property evidence and optional larger-instance
//! spot checks.
//!
//! The theorems:
//!
//! * **Theorem 1** — if a TM satisfies P1–P4 and ensures (2,2) strict
//!   serializability (resp. opacity), it ensures the property for every
//!   number of threads and variables.
//! * **Theorem 5** — if a TM satisfies P5–P6 and ensures (2,1)
//!   obstruction freedom, it ensures obstruction freedom generally.
//!
//! The structural properties are established here as bounded-exhaustive
//! *evidence* (violations are proofs of failure; absence up to the bound
//! is not a proof of satisfaction — the paper establishes them by manual
//! inspection of each algorithm).

use tm_algorithms::TmAlgorithm;
use tm_lang::SafetyProperty;

use crate::safety::SafetyVerdict;
use crate::structural::StructuralReport;

/// Evidence assembled by [`verify_with_reduction`].
#[derive(Clone, Debug)]
pub struct ReductionEvidence {
    /// The safety verdict at the reduction bound (2, 2).
    pub base_verdict: SafetyVerdict,
    /// Structural-property reports (P1–P4 flavors) at (2, 2).
    pub structural: Vec<StructuralReport>,
    /// Additional inclusion checks at larger instance sizes.
    pub spot_checks: Vec<SafetyVerdict>,
}

impl ReductionEvidence {
    /// `true` if the base check passed, no structural violation was
    /// found, and all spot checks passed — the methodology's conclusion
    /// that the TM ensures the property for **all** `(n, k)`.
    pub fn concludes(&self) -> bool {
        self.base_verdict.holds()
            && self.structural.iter().all(StructuralReport::holds)
            && self.spot_checks.iter().all(SafetyVerdict::holds)
    }
}

/// Applies the reduction methodology to a family of TM instances.
///
/// `make(n, k)` must build the same TM algorithm for `n` threads and `k`
/// variables. The property is checked at the reduction bound (2, 2);
/// structural properties are tested on words up to `structural_depth`
/// statements; and the inclusion is additionally verified at each size in
/// `spot_sizes` (empirical confirmation that the reduction did not hide
/// anything — the theorem itself makes these redundant for well-behaved
/// TMs).
///
/// **Migration note:** this is a thin wrapper over a throwaway
/// [`crate::Verifier`] session at the (2, 2) reduction bound. Callers
/// running several reductions (or mixing them with other queries) should
/// hold a [`crate::Verifier`] and call
/// [`crate::Verifier::verify_with_reduction`], which shares the
/// specification artifacts — including those of the spot-check sizes —
/// across runs.
///
/// # Panics
///
/// Panics if any instance exceeds the checker's state bounds.
///
/// # Examples
///
/// ```no_run
/// use tm_checker::verify_with_reduction;
/// use tm_lang::SafetyProperty;
/// use tm_algorithms::DstmTm;
///
/// let evidence = verify_with_reduction(
///     DstmTm::new,
///     SafetyProperty::Opacity,
///     4,
///     &[(2, 1), (3, 1)],
/// );
/// assert!(evidence.concludes());
/// ```
pub fn verify_with_reduction<A, F>(
    make: F,
    property: SafetyProperty,
    structural_depth: usize,
    spot_sizes: &[(usize, usize)],
) -> ReductionEvidence
where
    A: TmAlgorithm + Sync,
    A::State: Send + Sync,
    F: Fn(usize, usize) -> A,
{
    crate::Verifier::new(2, 2)
        .verify_with_reduction(make, property, structural_depth, spot_sizes)
        .into_reduction()
        .expect("reduction query returns reduction evidence")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algorithms::{SequentialTm, TwoPhaseTm};

    #[test]
    fn sequential_reduction_concludes() {
        let evidence = verify_with_reduction(
            SequentialTm::new,
            SafetyProperty::Opacity,
            4,
            &[(2, 1), (3, 1), (3, 2)],
        );
        assert!(evidence.concludes());
        assert_eq!(evidence.spot_checks.len(), 3);
    }

    #[test]
    fn two_phase_reduction_concludes_with_spot_checks() {
        let evidence = verify_with_reduction(
            TwoPhaseTm::new,
            SafetyProperty::StrictSerializability,
            4,
            &[(2, 1), (2, 3), (3, 2)],
        );
        assert!(evidence.concludes());
    }
}
