//! # tm-checker — model checking transactional memories
//!
//! The verification core of the *tm-modelcheck* workspace, reproducing
//! *"Model Checking Transactional Memories"* (Guerraoui, Henzinger,
//! Singh; PLDI 2008 / extended version):
//!
//! * **The session API** ([`Verifier`]): the crate's entry point — one
//!   session per instance size owns a persistent worker pool and
//!   build-once artifact caches (interned specifications, compiled run
//!   graphs) and answers every query below through them, returning a
//!   uniform [`Verdict`] with [`QueryStats`].
//! * **Safety** ([`Verifier::check_safety`]; one-shot wrapper
//!   [`check_safety`], reusable eager primitive [`SafetyChecker`]):
//!   strict serializability and opacity, decided as language inclusion of
//!   the TM algorithm (applied to the most general program) in the
//!   deterministic specification automaton, with shortest counterexample
//!   words.
//! * **Liveness** ([`Verifier::check_liveness`]; one-shot wrapper
//!   [`check_liveness`]): obstruction freedom, livelock freedom and wait
//!   freedom, decided by loop (lasso) search in the run-level transition
//!   system of a TM × contention-manager product — one compiled run graph
//!   per TM answers all three properties.
//! * **Structural properties** ([`check_structural`]): bounded-exhaustive
//!   tests of the projection/symmetry/commutativity properties P1–P4 that
//!   the reduction theorems require.
//! * **Reduction methodology** ([`Verifier::verify_with_reduction`];
//!   one-shot wrapper [`verify_with_reduction`]): the paper's end-to-end
//!   argument — check at the (2,2) bound, establish the structural
//!   properties, conclude for all instance sizes.
//! * **Reports** ([`safety_table`], [`liveness_table`]): the paper's
//!   Tables 2 and 3 regenerated from verdicts.
//!
//! # Examples
//!
//! Verify the paper's headline results in a few lines:
//!
//! ```
//! use tm_checker::{check_liveness, check_safety};
//! use tm_lang::{LivenessProperty, SafetyProperty};
//! use tm_algorithms::{DstmTm, AggressiveCm, WithContentionManager};
//!
//! // Theorem 4: DSTM ensures opacity.
//! assert!(check_safety(&DstmTm::new(2, 2), SafetyProperty::Opacity).holds());
//!
//! // Theorem 6: DSTM + aggressive is obstruction free.
//! let managed = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
//! assert!(check_liveness(&managed, LivenessProperty::ObstructionFreedom).holds());
//! ```
//!
//! Or run a session and amortize the artifacts across queries:
//!
//! ```
//! use tm_checker::Verifier;
//! use tm_lang::{LivenessProperty, SafetyProperty};
//! use tm_algorithms::{DstmTm, SequentialTm};
//!
//! let mut verifier = Verifier::new(2, 2);
//! // The opacity specification is interned once, shared by both checks:
//! assert!(verifier.check_safety(&SequentialTm::new(2, 2), SafetyProperty::Opacity).holds());
//! let verdict = verifier.check_safety(&DstmTm::new(2, 2), SafetyProperty::Opacity);
//! assert!(verdict.holds() && verdict.stats.artifact_cached);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod liveness;
mod reduction;
mod report;
mod safety;
mod session;
mod structural;

pub use liveness::{
    check_liveness, check_liveness_reference, check_liveness_threads, LivenessOutcome,
    LivenessVerdict, RunLasso, DEFAULT_MAX_STATES as LIVENESS_MAX_STATES,
};
pub use reduction::{verify_with_reduction, ReductionEvidence};
pub use report::{liveness_table, safety_table, QueryStats, Table, Verdict, VerdictOutcome};
pub use safety::{
    check_safety, SafetyChecker, SafetyOutcome, SafetyVerdict, SpecAutomaton,
    DEFAULT_MAX_STATES,
};
pub use session::{SpecMode, Verifier};
pub use tm_automata::{CancelToken, EngineError, QueryBudget};
pub use structural::{
    check_all_structural, check_structural, StructuralProperty, StructuralReport,
    StructuralViolation,
};
