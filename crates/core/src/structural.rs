//! Executable checks of the paper's structural properties P1–P4 (§4).
//!
//! The reduction theorems assume the TM satisfies closure properties
//! (projections, symmetry, commutativity). The paper argues them manually
//! per TM; here each property becomes a *bounded-exhaustive test*: every
//! word of the TM language up to a length bound is transformed as the
//! property dictates and the transform is re-checked for membership. A
//! reported violation is a genuine counterexample to the property; absence
//! of violations up to the bound is (strong) evidence, not proof.
//!
//! The deliberately ill-structured [`PastAbortsCm`] contention manager is
//! caught by the transaction-projection check — reproducing the paper's
//! observation that abort-history-sensitive managers fall outside the
//! reduction theorem (§4, P1).
//!
//! [`PastAbortsCm`]: tm_algorithms::PastAbortsCm

use tm_algorithms::{most_general_nfa, TmAlgorithm};
use tm_automata::{BitSet, Nfa};
use tm_lang::{
    transaction_projection, transactions, Alphabet, Statement, VarSet, Word,
    WordContext,
};

/// The structural properties checkable on words.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StructuralProperty {
    /// P1: dropping all aborting and any subset of the unfinished
    /// transactions preserves membership.
    TransactionProjection,
    /// P2: for abort-free words with non-overlapping committing
    /// transactions across two threads, renaming one thread to the other
    /// preserves membership.
    ThreadSymmetry,
    /// P3: for words without aborting transactions, projecting to any
    /// variable subset preserves membership.
    VariableProjection,
    /// P4 (monotonicity): for an abort-free word `w'·s` ending inside its
    /// single unfinished transaction, **some** sequentialization in the
    /// paper's `seq(w')` — committed transactions as blocks in commit
    /// order, the unfinished transaction's statements placed consistently
    /// with its global-read conflicts — followed by `s` stays in the
    /// language (the existence the Theorem 1 proof invokes).
    Monotonicity,
    /// P5(i) (liveness transaction projection, §6): for `w = w1·w2` with
    /// `w2` a commit-free single-thread suffix whose thread is idle at the
    /// boundary, dropping the aborting transactions of `w1` preserves
    /// membership.
    LivenessTransactionProjection,
    /// P6(ii) (liveness variable projection, §6): for the same splits with
    /// abort-free `w1` **and abort-free `w2`** (an abort's cause can be an
    /// internal step on a variable invisible in the word, so the
    /// word-level variable footprint of an aborting suffix is
    /// unreliable), projecting `w1` to the variables of `w2` preserves
    /// membership.
    LivenessVariableProjection,
}

impl StructuralProperty {
    /// The four safety-reduction properties P1–P4.
    pub fn all() -> [StructuralProperty; 4] {
        [
            StructuralProperty::TransactionProjection,
            StructuralProperty::ThreadSymmetry,
            StructuralProperty::VariableProjection,
            StructuralProperty::Monotonicity,
        ]
    }

    /// The liveness-reduction properties P5–P6 (Theorem 5).
    pub fn liveness() -> [StructuralProperty; 2] {
        [
            StructuralProperty::LivenessTransactionProjection,
            StructuralProperty::LivenessVariableProjection,
        ]
    }
}

impl std::fmt::Display for StructuralProperty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            StructuralProperty::TransactionProjection => "P1 (transaction projection)",
            StructuralProperty::ThreadSymmetry => "P2 (thread symmetry)",
            StructuralProperty::VariableProjection => "P3 (variable projection)",
            StructuralProperty::Monotonicity => "P4 (monotonicity)",
            StructuralProperty::LivenessTransactionProjection => {
                "P5 (liveness transaction projection)"
            }
            StructuralProperty::LivenessVariableProjection => {
                "P6 (liveness variable projection)"
            }
        };
        write!(f, "{name}")
    }
}

/// A violation: `original ∈ L(A)` but the property's transformed word is
/// not (for P4: none of the demanded sequentializations is).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructuralViolation {
    /// The accepted word.
    pub original: Word,
    /// A rejected transform (for P4: one representative of the rejected
    /// sequentializations).
    pub transformed: Word,
}

/// How a property quantifies over its transformed words.
enum Transforms {
    /// Every transformed word must be accepted (P1–P3).
    All(Vec<Word>),
    /// At least one transformed word must be accepted (P4); an empty list
    /// means the property does not apply to the original word.
    Any(Vec<Word>),
}

/// Result of a structural-property check.
#[derive(Clone, Debug)]
pub struct StructuralReport {
    /// The property checked.
    pub property: StructuralProperty,
    /// Number of (word, transform) pairs examined.
    pub pairs_checked: usize,
    /// First violation found, if any.
    pub violation: Option<StructuralViolation>,
}

impl StructuralReport {
    /// `true` if no violation was found up to the bound.
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// Checks one structural property of a TM by bounded-exhaustive
/// enumeration of its language up to `max_len` statements.
///
/// # Panics
///
/// Panics if the TM's reachable state space exceeds ten million states.
///
/// # Examples
///
/// ```
/// use tm_checker::{check_structural, StructuralProperty};
/// use tm_algorithms::DstmTm;
///
/// let report = check_structural(
///     &DstmTm::new(2, 2),
///     StructuralProperty::TransactionProjection,
///     5,
/// );
/// assert!(report.holds());
/// ```
pub fn check_structural<A: TmAlgorithm>(
    tm: &A,
    property: StructuralProperty,
    max_len: usize,
) -> StructuralReport {
    let explored = most_general_nfa(tm, 10_000_000);
    let nfa = &explored.nfa;
    let alphabet = Alphabet::new(tm.threads(), tm.vars());
    let mut pairs_checked = 0usize;
    let mut violation = None;
    for_each_accepted(nfa, alphabet, max_len, &mut |word| {
        if violation.is_some() {
            return;
        }
        match transforms(property, word, alphabet) {
            Transforms::All(words) => {
                for transformed in words {
                    pairs_checked += 1;
                    if !nfa.accepts(transformed.statements()) {
                        violation = Some(StructuralViolation {
                            original: word.clone(),
                            transformed,
                        });
                        return;
                    }
                }
            }
            Transforms::Any(words) => {
                if words.is_empty() {
                    return;
                }
                pairs_checked += words.len();
                if !words.iter().any(|w| nfa.accepts(w.statements())) {
                    violation = Some(StructuralViolation {
                        original: word.clone(),
                        transformed: words.into_iter().next().expect("non-empty"),
                    });
                }
            }
        }
    });
    StructuralReport {
        property,
        pairs_checked,
        violation,
    }
}

/// Runs all five structural checks.
pub fn check_all_structural<A: TmAlgorithm>(tm: &A, max_len: usize) -> Vec<StructuralReport> {
    StructuralProperty::all()
        .into_iter()
        .map(|p| check_structural(tm, p, max_len))
        .collect()
}

/// Depth-first enumeration of the accepted words of `nfa` up to
/// `max_len`, calling `f` on each (excluding the empty word).
fn for_each_accepted<F: FnMut(&Word)>(
    nfa: &Nfa<Statement>,
    alphabet: Alphabet,
    max_len: usize,
    f: &mut F,
) {
    let letters: Vec<Statement> = alphabet.statements().collect();
    let mut word = Word::new();
    let root = nfa.initial_closure();
    descend(nfa, &letters, max_len, &mut word, &root, f);
}

fn descend<F: FnMut(&Word)>(
    nfa: &Nfa<Statement>,
    letters: &[Statement],
    max_len: usize,
    word: &mut Word,
    frontier: &BitSet,
    f: &mut F,
) {
    if word.len() >= max_len {
        return;
    }
    for &s in letters {
        let next = nfa.post(frontier, &s);
        if next.is_empty() {
            continue;
        }
        word.push(s);
        f(word);
        descend(nfa, letters, max_len, word, &next, f);
        word.pop();
    }
}

/// The transformed words a property demands be accepted, given an
/// accepted `word`.
fn transforms(property: StructuralProperty, word: &Word, alphabet: Alphabet) -> Transforms {
    match property {
        StructuralProperty::TransactionProjection => {
            Transforms::All(transaction_projections(word))
        }
        StructuralProperty::ThreadSymmetry => Transforms::All(thread_renamings(word, alphabet)),
        StructuralProperty::VariableProjection => {
            Transforms::All(variable_projections(word, alphabet))
        }
        StructuralProperty::Monotonicity => Transforms::Any(sequentializations(word)),
        StructuralProperty::LivenessTransactionProjection => {
            Transforms::All(liveness_projections(word, false))
        }
        StructuralProperty::LivenessVariableProjection => {
            Transforms::All(liveness_projections(word, true))
        }
    }
}

/// P5(i)/P6(ii): for every split `w = w1·w2` where `w2` is a non-empty
/// commit-free suffix of statements of a single thread `t` and `t` has no
/// open transaction at the boundary, transform `w1` (dropping aborting
/// transactions for P5; projecting to `w2`'s variables — keeping finishing
/// statements — for P6, which also requires `w1` abort-free) and demand
/// membership of the recombined word.
fn liveness_projections(word: &Word, variables: bool) -> Vec<Word> {
    let mut out = Vec::new();
    for split in 1..word.len() {
        let suffix: Vec<_> = word.statements()[split..].to_vec();
        let t = suffix[0].thread;
        if suffix
            .iter()
            .any(|s| s.thread != t || s.kind.is_commit())
        {
            continue;
        }
        let w1: Word = word.statements()[..split].iter().copied().collect();
        // Thread t must be idle at the boundary.
        let txns = transactions(&w1);
        if txns.iter().any(|x| x.thread() == t && x.is_unfinished()) {
            continue;
        }
        let w1_projected = if variables {
            if w1.iter().any(|s| s.kind.is_abort())
                || suffix.iter().any(|s| s.kind.is_abort())
            {
                continue;
            }
            let vars: VarSet = suffix.iter().filter_map(|s| s.kind.variable()).collect();
            if vars.is_empty() {
                continue;
            }
            w1.variable_projection(vars)
        } else {
            let keep: Vec<usize> = (0..txns.len()).filter(|&x| !txns[x].is_aborting()).collect();
            transaction_projection(&w1, &txns, &keep)
        };
        if w1_projected == w1 {
            continue;
        }
        let mut transformed = w1_projected;
        transformed.extend(suffix.iter().copied());
        out.push(transformed);
    }
    out
}

/// P1: keep committing transactions, drop aborting ones, any subset of the
/// unfinished ones.
fn transaction_projections(word: &Word) -> Vec<Word> {
    let txns = transactions(word);
    let committing: Vec<usize> = (0..txns.len()).filter(|&x| txns[x].is_committing()).collect();
    let unfinished: Vec<usize> = (0..txns.len()).filter(|&x| txns[x].is_unfinished()).collect();
    let mut out = Vec::new();
    for mask in 0u32..(1 << unfinished.len()) {
        let mut selected = committing.clone();
        for (bit, &x) in unfinished.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                selected.push(x);
            }
        }
        let projected = transaction_projection(word, &txns, &selected);
        if &projected != word {
            out.push(projected);
        }
    }
    out
}

/// P2: if the word has no aborts, at most one unfinished transaction, and
/// the committing transactions of two threads are pairwise ordered, rename
/// one thread into the other.
fn thread_renamings(word: &Word, alphabet: Alphabet) -> Vec<Word> {
    if word.iter().any(|s| s.kind.is_abort()) {
        return Vec::new();
    }
    let txns = transactions(word);
    if txns.iter().filter(|x| x.is_unfinished()).count() > 1 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for u in alphabet.thread_ids() {
        for t in alphabet.thread_ids() {
            if u == t {
                continue;
            }
            let ordered = txns
                .iter()
                .filter(|x| x.is_committing() && x.thread() == u)
                .all(|x| {
                    txns.iter()
                        .filter(|y| y.is_committing() && y.thread() == t)
                        .all(|y| x.precedes(y) || y.precedes(x))
                });
            if !ordered {
                continue;
            }
            let renamed: Word = word
                .iter()
                .map(|s| {
                    if s.thread == u {
                        Statement::new(s.kind, t)
                    } else {
                        *s
                    }
                })
                .collect();
            if &renamed != word {
                out.push(renamed);
            }
        }
    }
    out
}

/// P3: if the word has no aborting transactions, project to every proper
/// variable subset.
fn variable_projections(word: &Word, alphabet: Alphabet) -> Vec<Word> {
    let txns = transactions(word);
    if txns.iter().any(|x| x.is_aborting()) {
        return Vec::new();
    }
    let k = alphabet.vars();
    let mut out = Vec::new();
    for mask in 0u32..(1 << k) - 1 {
        let vars: VarSet = alphabet
            .var_ids()
            .filter(|v| mask & (1 << v.index()) != 0)
            .collect();
        let projected = word.variable_projection(vars);
        if &projected != word {
            out.push(projected);
        }
    }
    out
}

/// P4: the commit-order sequentialization of an abort-free word with at
/// most one unfinished transaction — a member of the paper's `seq(w)`.
///
/// Committed transactions become contiguous blocks ordered by commit
/// position. Each statement of the unfinished transaction `y` is placed as
/// **late** as its constraints allow:
///
/// * after every block that wholly precedes `y` in real time (the paper's
///   auxiliary-variable ordering), and after every block whose committed
///   write a global read of `y` observed (commit before the read);
/// * before every block that commits a write *over* a variable a global
///   read of `y` saw earlier (read before commit);
/// * keeping `y`'s internal order.
///
/// Words whose committed-transaction conflict order disagrees with commit
/// order (impossible for commit-time-visibility TMs) or whose constraints
/// are unsatisfiable are skipped.
fn sequentializations(word: &Word) -> Vec<Word> {
    let ctx = WordContext::new(word);
    let txns = ctx.transactions();
    if txns.iter().any(|x| x.is_aborting()) {
        return Vec::new();
    }
    let unfinished: Vec<usize> = (0..txns.len())
        .filter(|&x| txns[x].is_unfinished())
        .collect();
    // P4 applies to w = w'·s with s a statement of the *single* unfinished
    // transaction of w' — i.e. the word must end inside it.
    if unfinished.len() != 1 || word.is_empty() {
        return Vec::new();
    }
    let y = unfinished[0];
    let s_index = word.len() - 1;
    if ctx.owner(s_index) != y || txns[y].indices().len() < 2 {
        return Vec::new();
    }
    let mut committed: Vec<usize> = (0..txns.len())
        .filter(|&x| txns[x].is_committing())
        .collect();
    committed.sort_by_key(|&x| txns[x].last_index());
    // Commit order must agree with the conflict order of the committed
    // transactions for the block serialization to be strictly equivalent.
    let block_pos = |x: usize| committed.iter().position(|&y| y == x);
    for (i, j) in ctx.conflict_pairs() {
        let (xi, xj) = (ctx.owner(i), ctx.owner(j));
        if let (Some(pi), Some(pj)) = (block_pos(xi), block_pos(xj)) {
            if pi > pj {
                return Vec::new();
            }
        }
    }
    let nblocks = committed.len();
    // slots[s] = number of blocks emitted before y's s-th statement; the
    // final statement of the word (the paper's `s`) stays at the end.
    let y_indices: Vec<usize> = txns[y]
        .indices()
        .iter()
        .copied()
        .filter(|&i| i != s_index)
        .collect();
    let mut lower = vec![0usize; y_indices.len()];
    let mut upper = vec![nblocks; y_indices.len()];
    for (s, &i) in y_indices.iter().enumerate() {
        for (pos, &x) in committed.iter().enumerate() {
            // Real-time: a block wholly before y precedes all of y.
            if txns[x].precedes(&txns[y]) {
                lower[s] = lower[s].max(pos + 1);
            }
            if let Some(v) = word[i].kind.variable() {
                let is_global_read = txns[y].is_global_read(word, i);
                if is_global_read && txns[x].writes(word).contains(v) {
                    if txns[x].last_index() < i {
                        // Observed x's committed value: stay after x.
                        lower[s] = lower[s].max(pos + 1);
                    } else {
                        // Read the pre-x value: stay before x's commit.
                        upper[s] = upper[s].min(pos);
                    }
                }
            }
        }
    }
    // Enumerate every consistent monotone placement of y's statements.
    let mut placements: Vec<Vec<usize>> = Vec::new();
    let mut slot = vec![0usize; y_indices.len()];
    enumerate_slots(&lower, &upper, nblocks, 0, 0, &mut slot, &mut placements);
    let mut out = Vec::new();
    for placement in placements {
        let mut w2 = Word::new();
        let mut next_y = 0usize;
        for pos in 0..=nblocks {
            while next_y < y_indices.len() && placement[next_y] == pos {
                w2.push(word[y_indices[next_y]]);
                next_y += 1;
            }
            if pos < nblocks {
                for &i in txns[committed[pos]].indices() {
                    w2.push(word[i]);
                }
            }
        }
        w2.push(word[s_index]);
        debug_assert_eq!(w2.len(), word.len());
        out.push(w2);
    }
    out
}

/// Recursively enumerates monotone slot vectors within `[lower, upper]`.
fn enumerate_slots(
    lower: &[usize],
    upper: &[usize],
    nblocks: usize,
    index: usize,
    floor: usize,
    slot: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if index == lower.len() {
        out.push(slot.clone());
        return;
    }
    if out.len() >= 256 {
        return; // ample for the bounded words the checker explores
    }
    let from = floor.max(lower[index]);
    let to = upper[index].min(nblocks);
    for pos in from..=to {
        slot[index] = pos;
        enumerate_slots(lower, upper, nblocks, index + 1, pos, slot, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algorithms::{
        DstmTm, PastAbortsCm, SequentialTm, TwoPhaseTm, WithContentionManager,
    };

    #[test]
    fn sequential_tm_satisfies_p1_p3() {
        let tm = SequentialTm::new(2, 2);
        for p in [
            StructuralProperty::TransactionProjection,
            StructuralProperty::VariableProjection,
        ] {
            let report = check_structural(&tm, p, 5);
            assert!(report.holds(), "{p}: {:?}", report.violation);
            assert!(report.pairs_checked > 0);
        }
    }

    #[test]
    fn two_phase_satisfies_all_structural_properties() {
        let tm = TwoPhaseTm::new(2, 2);
        for report in check_all_structural(&tm, 5) {
            assert!(report.holds(), "{}: {:?}", report.property, report.violation);
        }
    }

    #[test]
    fn dstm_satisfies_all_structural_properties() {
        let tm = DstmTm::new(2, 2);
        for report in check_all_structural(&tm, 5) {
            assert!(report.holds(), "{}: {:?}", report.property, report.violation);
        }
    }

    #[test]
    fn past_aborts_manager_violates_transaction_projection() {
        // The paper's example of a manager outside the reduction theorem:
        // decisions depend on how often a thread aborted, so removing an
        // aborted transaction changes later behavior.
        let tm = WithContentionManager::new(DstmTm::new(2, 1), PastAbortsCm::new(2, 2));
        let report = check_structural(&tm, StructuralProperty::TransactionProjection, 5);
        let violation = report.violation.expect("P1 must fail for past-aborts");
        assert!(violation.original.len() > violation.transformed.len());
    }

    #[test]
    fn tl2_satisfies_all_structural_properties() {
        let tm = tm_algorithms::Tl2Tm::new(2, 2);
        for report in check_all_structural(&tm, 5) {
            assert!(report.holds(), "{}: {:?}", report.property, report.violation);
        }
    }

    #[test]
    fn liveness_properties_hold_for_paper_tms_at_2_1() {
        for p in StructuralProperty::liveness() {
            for report in [
                check_structural(&SequentialTm::new(2, 1), p, 6),
                check_structural(&TwoPhaseTm::new(2, 1), p, 6),
                check_structural(&DstmTm::new(2, 1), p, 6),
            ] {
                assert!(report.holds(), "{p}: {:?}", report.violation);
                // With a single variable P6's projection is the identity,
                // so only P5 is guaranteed to exercise pairs here.
                if p == StructuralProperty::LivenessTransactionProjection {
                    assert!(report.pairs_checked > 0, "{p} checked nothing");
                }
            }
        }
    }

    #[test]
    fn liveness_properties_hold_for_tl2_at_2_2() {
        for p in StructuralProperty::liveness() {
            let report = check_structural(&tm_algorithms::Tl2Tm::new(2, 2), p, 5);
            assert!(report.holds(), "{p}: {:?}", report.violation);
        }
    }
}
