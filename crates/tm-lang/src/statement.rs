//! Commands, statements, and the statement alphabet.
//!
//! Following §2 of the paper: `C = {commit} ∪ ({read, write} × V)` is the
//! set of *commands* issued by a program, `Ĉ = C ∪ {abort}` extends it with
//! the abort event produced by the TM, and `Ŝ = Ĉ × T` is the set of
//! *statements* — the letters from which words (transaction histories) are
//! built.

use std::fmt;
use std::str::FromStr;

use crate::ids::{ThreadId, VarId};

/// A program command (`c ∈ C`): read a variable, write a variable, or
/// commit the current transaction.
///
/// # Examples
///
/// ```
/// use tm_lang::{Command, VarId};
/// let c = Command::Read(VarId::new(0));
/// assert_eq!(c.variable(), Some(VarId::new(0)));
/// assert_eq!(Command::Commit.variable(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Command {
    /// Read a shared variable.
    Read(VarId),
    /// Write a shared variable.
    Write(VarId),
    /// Commit the current transaction.
    Commit,
}

impl Command {
    /// The variable accessed by this command, if any.
    pub fn variable(self) -> Option<VarId> {
        match self {
            Command::Read(v) | Command::Write(v) => Some(v),
            Command::Commit => None,
        }
    }

    /// Enumerates all commands over `num_vars` variables, in a fixed order
    /// (reads, then writes, then commit).
    pub fn all(num_vars: usize) -> impl Iterator<Item = Command> {
        let reads = (0..num_vars).map(|v| Command::Read(VarId::new(v)));
        let writes = (0..num_vars).map(|v| Command::Write(VarId::new(v)));
        reads.chain(writes).chain(std::iter::once(Command::Commit))
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Read(v) => write!(f, "(r,{})", v.number()),
            Command::Write(v) => write!(f, "(w,{})", v.number()),
            Command::Commit => write!(f, "c"),
        }
    }
}

/// The observable event of a statement (`ĉ ∈ Ĉ = C ∪ {abort}`).
///
/// # Examples
///
/// ```
/// use tm_lang::{Command, StatementKind, VarId};
/// let k = StatementKind::from(Command::Write(VarId::new(1)));
/// assert_eq!(k, StatementKind::Write(VarId::new(1)));
/// assert!(StatementKind::Abort.as_command().is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum StatementKind {
    /// A (completed) read of a shared variable.
    Read(VarId),
    /// A (completed) write of a shared variable.
    Write(VarId),
    /// A transaction commit.
    Commit,
    /// A transaction abort.
    Abort,
}

impl StatementKind {
    /// The variable accessed, if any.
    pub fn variable(self) -> Option<VarId> {
        match self {
            StatementKind::Read(v) | StatementKind::Write(v) => Some(v),
            _ => None,
        }
    }

    /// `true` for [`StatementKind::Commit`].
    pub fn is_commit(self) -> bool {
        matches!(self, StatementKind::Commit)
    }

    /// `true` for [`StatementKind::Abort`].
    pub fn is_abort(self) -> bool {
        matches!(self, StatementKind::Abort)
    }

    /// `true` for commit or abort — the statements that finish a
    /// transaction.
    pub fn is_finishing(self) -> bool {
        self.is_commit() || self.is_abort()
    }

    /// The corresponding command, or `None` for [`StatementKind::Abort`].
    pub fn as_command(self) -> Option<Command> {
        match self {
            StatementKind::Read(v) => Some(Command::Read(v)),
            StatementKind::Write(v) => Some(Command::Write(v)),
            StatementKind::Commit => Some(Command::Commit),
            StatementKind::Abort => None,
        }
    }

    /// Enumerates all statement kinds over `num_vars` variables.
    pub fn all(num_vars: usize) -> impl Iterator<Item = StatementKind> {
        Command::all(num_vars)
            .map(StatementKind::from)
            .chain(std::iter::once(StatementKind::Abort))
    }
}

impl From<Command> for StatementKind {
    fn from(c: Command) -> Self {
        match c {
            Command::Read(v) => StatementKind::Read(v),
            Command::Write(v) => StatementKind::Write(v),
            Command::Commit => StatementKind::Commit,
        }
    }
}

impl fmt::Display for StatementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatementKind::Read(v) => write!(f, "(r,{})", v.number()),
            StatementKind::Write(v) => write!(f, "(w,{})", v.number()),
            StatementKind::Commit => write!(f, "c"),
            StatementKind::Abort => write!(f, "a"),
        }
    }
}

/// A statement (`s ∈ Ŝ = Ĉ × T`): an observable event attributed to a
/// thread.
///
/// The display syntax matches the paper's Table 1 notation: `(r,1)2` is a
/// read of variable `v1` by thread `t2`; `c1` and `a2` are a commit by `t1`
/// and an abort by `t2`.
///
/// # Examples
///
/// ```
/// use tm_lang::{Statement, StatementKind, ThreadId, VarId};
/// let s = Statement::new(StatementKind::Read(VarId::new(0)), ThreadId::new(1));
/// assert_eq!(s.to_string(), "(r,1)2");
/// assert_eq!("(r,1)2".parse::<Statement>().unwrap(), s);
/// assert_eq!("c1".parse::<Statement>().unwrap().kind, StatementKind::Commit);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Statement {
    /// The observable event.
    pub kind: StatementKind,
    /// The thread that performed it.
    pub thread: ThreadId,
}

impl Statement {
    /// Creates a statement.
    pub fn new(kind: StatementKind, thread: ThreadId) -> Self {
        Statement { kind, thread }
    }

    /// Convenience constructor for a read statement.
    pub fn read(var: usize, thread: usize) -> Self {
        Statement::new(StatementKind::Read(VarId::new(var)), ThreadId::new(thread))
    }

    /// Convenience constructor for a write statement.
    pub fn write(var: usize, thread: usize) -> Self {
        Statement::new(StatementKind::Write(VarId::new(var)), ThreadId::new(thread))
    }

    /// Convenience constructor for a commit statement.
    pub fn commit(thread: usize) -> Self {
        Statement::new(StatementKind::Commit, ThreadId::new(thread))
    }

    /// Convenience constructor for an abort statement.
    pub fn abort(thread: usize) -> Self {
        Statement::new(StatementKind::Abort, ThreadId::new(thread))
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.kind, self.thread.number())
    }
}

/// Error returned when parsing a [`Statement`] or
/// [`Word`](crate::Word) fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseStatementError {
    token: String,
}

impl ParseStatementError {
    pub(crate) fn new(token: &str) -> Self {
        ParseStatementError {
            token: token.to_owned(),
        }
    }
}

impl fmt::Display for ParseStatementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid statement syntax: `{}`", self.token)
    }
}

impl std::error::Error for ParseStatementError {}

impl FromStr for Statement {
    type Err = ParseStatementError;

    /// Parses the paper's notation: `(r,1)2`, `(w,2)1`, `c1`, `a2`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseStatementError::new(s);
        let s = s.trim();
        if let Some(rest) = s.strip_prefix('(') {
            let (inner, thread) = rest.split_once(')').ok_or_else(err)?;
            let (op, var) = inner.split_once(',').ok_or_else(err)?;
            let var: usize = var.trim().parse().map_err(|_| err())?;
            if var == 0 || var > 16 {
                return Err(err());
            }
            let var = VarId::new(var - 1);
            let thread = parse_thread(thread).ok_or_else(err)?;
            let kind = match op.trim() {
                "r" => StatementKind::Read(var),
                "w" => StatementKind::Write(var),
                _ => return Err(err()),
            };
            Ok(Statement::new(kind, thread))
        } else if let Some(t) = s.strip_prefix('c') {
            Ok(Statement::new(
                StatementKind::Commit,
                parse_thread(t).ok_or_else(err)?,
            ))
        } else if let Some(t) = s.strip_prefix('a') {
            Ok(Statement::new(
                StatementKind::Abort,
                parse_thread(t).ok_or_else(err)?,
            ))
        } else {
            Err(err())
        }
    }
}

fn parse_thread(s: &str) -> Option<ThreadId> {
    let n: usize = s.trim().parse().ok()?;
    if n == 0 || n > 16 {
        return None;
    }
    Some(ThreadId::new(n - 1))
}

/// The finite statement alphabet for `n` threads and `k` variables.
///
/// # Examples
///
/// ```
/// use tm_lang::Alphabet;
/// let sigma = Alphabet::new(2, 2);
/// // |Ĉ| = 2 reads + 2 writes + commit + abort = 6; times 2 threads:
/// assert_eq!(sigma.statements().count(), 12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Alphabet {
    threads: usize,
    vars: usize,
}

impl Alphabet {
    /// Creates the alphabet for `threads` threads and `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or exceeds 16.
    pub fn new(threads: usize, vars: usize) -> Self {
        assert!((1..=16).contains(&threads), "thread count out of range");
        assert!((1..=16).contains(&vars), "variable count out of range");
        Alphabet { threads, vars }
    }

    /// Number of threads `n`.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of variables `k`.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Iterates over all thread ids.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> {
        (0..self.threads).map(ThreadId::new)
    }

    /// Iterates over all variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.vars).map(VarId::new)
    }

    /// Iterates over all commands `C`.
    pub fn commands(&self) -> impl Iterator<Item = Command> {
        Command::all(self.vars)
    }

    /// Iterates over all statements `Ŝ`, grouped by thread.
    pub fn statements(&self) -> impl Iterator<Item = Statement> + '_ {
        self.thread_ids().flat_map(move |t| {
            StatementKind::all(self.vars).map(move |k| Statement::new(k, t))
        })
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} threads, {} vars)", self.threads, self.vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips() {
        for text in ["(r,1)1", "(w,2)1", "c2", "a1", "(r,2)3"] {
            let s: Statement = text.parse().unwrap();
            assert_eq!(s.to_string(), text);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for text in ["", "x1", "(q,1)1", "(r,0)1", "(r,1)0", "c", "(r,1", "(r)1"] {
            assert!(text.parse::<Statement>().is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn command_enumeration() {
        let cmds: Vec<Command> = Command::all(2).collect();
        assert_eq!(cmds.len(), 5);
        assert_eq!(cmds[4], Command::Commit);
    }

    #[test]
    fn statement_kind_enumeration_ends_with_abort() {
        let kinds: Vec<StatementKind> = StatementKind::all(2).collect();
        assert_eq!(kinds.len(), 6);
        assert!(kinds[5].is_abort());
    }

    #[test]
    fn alphabet_sizes() {
        let sigma = Alphabet::new(3, 2);
        assert_eq!(sigma.statements().count(), 18);
        assert_eq!(sigma.commands().count(), 5);
    }

    #[test]
    fn finishing_kinds() {
        assert!(StatementKind::Commit.is_finishing());
        assert!(StatementKind::Abort.is_finishing());
        assert!(!StatementKind::Read(VarId::new(0)).is_finishing());
    }
}
