//! Conflicts between statements and strict equivalence of words (§2).
//!
//! The paper adopts *deferred-update* semantics: the writes of a
//! transaction become globally visible at its commit. Consequently two
//! statements of different transactions conflict iff
//!
//! 1. one is a *global read* of a variable `v` and the other is the commit
//!    of a transaction that writes `v`, or
//! 2. both are commits of transactions that write a common variable.

use crate::ids::ThreadId;
use crate::statement::StatementKind;
use crate::transaction::{transaction_of, transactions, Transaction};
use crate::word::Word;

/// Precomputed per-word context used by conflict queries: the transactions
/// of the word and the owner transaction of every statement.
#[derive(Clone, Debug)]
pub struct WordContext<'w> {
    word: &'w Word,
    txns: Vec<Transaction>,
    owner: Vec<usize>,
}

impl<'w> WordContext<'w> {
    /// Analyzes `word` (splits it into transactions).
    pub fn new(word: &'w Word) -> Self {
        let txns = transactions(word);
        let owner = transaction_of(word, &txns);
        WordContext { word, txns, owner }
    }

    /// The underlying word.
    pub fn word(&self) -> &'w Word {
        self.word
    }

    /// The transactions of the word, ordered by first statement.
    pub fn transactions(&self) -> &[Transaction] {
        &self.txns
    }

    /// Index (into [`Self::transactions`]) of the transaction owning the
    /// statement at word index `i`.
    pub fn owner(&self, i: usize) -> usize {
        self.owner[i]
    }

    /// Whether the statements at word indices `i` and `j` *conflict*
    /// (symmetric; `false` when they belong to the same transaction).
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_lang::{Word, WordContext};
    /// let w: Word = "(r,1)1 (w,1)2 c2 c1".parse()?;
    /// let ctx = WordContext::new(&w);
    /// // t1's global read of v1 conflicts with t2's commit (t2 writes v1).
    /// assert!(ctx.conflicting(0, 2));
    /// assert!(!ctx.conflicting(0, 3)); // same transaction as index 0
    /// # Ok::<(), tm_lang::ParseStatementError>(())
    /// ```
    pub fn conflicting(&self, i: usize, j: usize) -> bool {
        if self.owner[i] == self.owner[j] {
            return false;
        }
        self.read_vs_commit(i, j) || self.read_vs_commit(j, i) || self.commit_vs_commit(i, j)
    }

    /// Case (i): statement `i` is a global read of `v` and statement `j` is
    /// the commit of a transaction writing `v`.
    fn read_vs_commit(&self, i: usize, j: usize) -> bool {
        let StatementKind::Read(v) = self.word[i].kind else {
            return false;
        };
        if self.word[j].kind != StatementKind::Commit {
            return false;
        }
        let x = &self.txns[self.owner[i]];
        let y = &self.txns[self.owner[j]];
        x.is_global_read(self.word, i) && y.writes(self.word).contains(v)
    }

    /// Case (ii): both statements are commits of transactions writing a
    /// common variable.
    fn commit_vs_commit(&self, i: usize, j: usize) -> bool {
        if self.word[i].kind != StatementKind::Commit || self.word[j].kind != StatementKind::Commit
        {
            return false;
        }
        let x = &self.txns[self.owner[i]];
        let y = &self.txns[self.owner[j]];
        !x.writes(self.word).is_disjoint(y.writes(self.word))
    }

    /// All conflicting index pairs `(i, j)` with `i < j`.
    pub fn conflict_pairs(&self) -> Vec<(usize, usize)> {
        let n = self.word.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if self.conflicting(i, j) {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// Whether `a` and `b` are *strictly equivalent* (§2): same thread
/// projections, conflicting statements of `a` keep their order in `b`, and
/// the precedence of committing/aborting transactions is not inverted.
///
/// # Examples
///
/// ```
/// use tm_lang::strictly_equivalent;
/// let interleaved = "(r,1)1 (w,1)2 c1 c2".parse()?;
/// let sequential = "(r,1)1 c1 (w,1)2 c2".parse()?;
/// assert!(strictly_equivalent(&interleaved, &sequential));
/// # Ok::<(), tm_lang::ParseStatementError>(())
/// ```
pub fn strictly_equivalent(a: &Word, b: &Word) -> bool {
    if a.len() != b.len() {
        return false;
    }
    // (i) Equal thread projections, and the statement correspondence they
    // induce: the m-th statement of thread t in `a` maps to the m-th
    // statement of t in `b`.
    let mut pos_b = vec![usize::MAX; a.len()];
    for t in 0..16 {
        let t = ThreadId::new(t);
        let ia: Vec<usize> = (0..a.len()).filter(|&i| a[i].thread == t).collect();
        let ib: Vec<usize> = (0..b.len()).filter(|&i| b[i].thread == t).collect();
        if ia.len() != ib.len() {
            return false;
        }
        for (&i, &j) in ia.iter().zip(&ib) {
            if a[i].kind != b[j].kind {
                return false;
            }
            pos_b[i] = j;
        }
    }
    // (ii) Conflict order preserved.
    let ctx = WordContext::new(a);
    for (i, j) in ctx.conflict_pairs() {
        if pos_b[i] >= pos_b[j] {
            return false;
        }
    }
    // (iii) Precedence of committing/aborting transactions preserved: the
    // m-th transaction of thread t in `a` corresponds to the m-th
    // transaction of t in `b` (equal thread projections guarantee the
    // counts match; both lists are ordered by first statement, so zipping
    // per thread gives the correspondence).
    let txns_a = ctx.transactions();
    let txns_b = transactions(b);
    let mut txn_map = vec![usize::MAX; txns_a.len()];
    for t in (0..16).map(ThreadId::new) {
        let ia: Vec<usize> = (0..txns_a.len()).filter(|&i| txns_a[i].thread() == t).collect();
        let ib: Vec<usize> = (0..txns_b.len()).filter(|&i| txns_b[i].thread() == t).collect();
        if ia.len() != ib.len() {
            return false;
        }
        for (&i, &j) in ia.iter().zip(&ib) {
            txn_map[i] = j;
        }
    }
    for (xi, x) in txns_a.iter().enumerate() {
        if x.is_unfinished() {
            continue;
        }
        for (yi, y) in txns_a.iter().enumerate() {
            if xi == yi || !x.precedes(y) {
                continue;
            }
            if txns_b[txn_map[yi]].precedes(&txns_b[txn_map[xi]]) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Word {
        s.parse().unwrap()
    }

    #[test]
    fn read_commit_conflict_requires_writer() {
        let word = w("(r,1)1 (r,2)2 c2 c1");
        let ctx = WordContext::new(&word);
        // t2 writes nothing, so its commit does not conflict with t1's read.
        assert!(!ctx.conflicting(0, 2));
    }

    #[test]
    fn commit_commit_conflict_on_shared_write() {
        let word = w("(w,1)1 (w,1)2 c1 c2");
        let ctx = WordContext::new(&word);
        assert!(ctx.conflicting(2, 3));
        assert_eq!(ctx.conflict_pairs(), vec![(2, 3)]);
    }

    #[test]
    fn no_conflict_on_distinct_vars() {
        let word = w("(w,1)1 (w,2)2 c1 c2");
        let ctx = WordContext::new(&word);
        assert!(ctx.conflict_pairs().is_empty());
    }

    #[test]
    fn local_read_does_not_conflict() {
        // t1 writes v1 before reading it: the read is not global.
        let word = w("(w,1)1 (r,1)1 (w,1)2 c2 c1");
        let ctx = WordContext::new(&word);
        assert!(!ctx.conflicting(1, 3));
        // ... but the commits conflict (both write v1).
        assert!(ctx.conflicting(3, 4));
    }

    #[test]
    fn aborting_reader_conflicts_with_committing_writer() {
        let word = w("(r,1)1 (w,1)2 c2 a1");
        let ctx = WordContext::new(&word);
        assert!(ctx.conflicting(0, 2));
    }

    #[test]
    fn strictly_equivalent_identity() {
        let word = w("(r,1)1 (w,1)2 c1 c2");
        assert!(strictly_equivalent(&word, &word));
    }

    #[test]
    fn strictly_equivalent_rejects_conflict_reorder() {
        // The read of v1 happens before t2's commit; a reordering that puts
        // the commit first is not strictly equivalent.
        let a = w("(r,1)1 (w,1)2 c2 c1");
        let b = w("(w,1)2 c2 (r,1)1 c1");
        assert!(!strictly_equivalent(&a, &b));
    }

    #[test]
    fn strictly_equivalent_rejects_precedence_inversion() {
        // t1's transaction finishes before t2's starts in `a`.
        let a = w("(r,1)1 c1 (r,2)2 c2");
        let b = w("(r,2)2 c2 (r,1)1 c1");
        assert!(!strictly_equivalent(&a, &b));
    }

    #[test]
    fn strictly_equivalent_allows_unfinished_reorder() {
        // t1's transaction is unfinished, so its precedence imposes nothing.
        let a = w("(r,2)1 (r,1)2 c2");
        let b = w("(r,1)2 c2 (r,2)1");
        assert!(strictly_equivalent(&a, &b));
    }

    #[test]
    fn strictly_equivalent_requires_same_projections() {
        let a = w("(r,1)1 c1");
        let b = w("(r,2)1 c1");
        assert!(!strictly_equivalent(&a, &b));
        assert!(!strictly_equivalent(&a, &w("(r,1)1")));
    }
}
