//! Reference checkers for the safety properties π_ss (strict
//! serializability) and π_op (opacity).
//!
//! These are *definition-level* decision procedures, used as the oracle
//! against which the finite-state TM specifications of `tm-spec` are
//! validated:
//!
//! * the **conflict-graph** checkers build the precedence/conflict digraph
//!   over transactions (the classical construction of Papadimitriou [22],
//!   extended to aborting and unfinished transactions for opacity, cf. §5)
//!   and test acyclicity;
//! * the **brute-force** checkers literally search for a sequential witness
//!   word among all transaction interleavings, using
//!   [`strictly_equivalent`] — exponential, but an independent oracle for
//!   the graph construction on small words.

use crate::conflict::{strictly_equivalent, WordContext};
use crate::transaction::Transaction;
use crate::word::Word;

/// The two safety properties considered by the paper.
///
/// # Examples
///
/// ```
/// use tm_lang::SafetyProperty;
/// let w = "(r,1)1 (w,1)2 c2 a1".parse()?;
/// // The aborted read saw a consistent value, and com(w) is trivially
/// // serializable:
/// assert!(SafetyProperty::StrictSerializability.holds(&w));
/// assert!(SafetyProperty::Opacity.holds(&w));
/// # Ok::<(), tm_lang::ParseStatementError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SafetyProperty {
    /// π_ss: committed transactions appear to execute at indivisible points
    /// in time, preserving real-time order.
    StrictSerializability,
    /// π_op: in addition, aborting (and live) transactions only ever
    /// observe consistent state.
    Opacity,
}

impl SafetyProperty {
    /// Decides the property for `w` using the conflict-graph construction.
    pub fn holds(self, w: &Word) -> bool {
        match self {
            SafetyProperty::StrictSerializability => is_strictly_serializable(w),
            SafetyProperty::Opacity => is_opaque(w),
        }
    }

    /// Short lowercase name (`"ss"` / `"op"`), as used in reports.
    pub fn short_name(self) -> &'static str {
        match self {
            SafetyProperty::StrictSerializability => "ss",
            SafetyProperty::Opacity => "op",
        }
    }

    /// Both properties, strongest last.
    pub fn all() -> [SafetyProperty; 2] {
        [
            SafetyProperty::StrictSerializability,
            SafetyProperty::Opacity,
        ]
    }
}

impl std::fmt::Display for SafetyProperty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SafetyProperty::StrictSerializability => write!(f, "strict serializability"),
            SafetyProperty::Opacity => write!(f, "opacity"),
        }
    }
}

/// The serialization digraph over the transactions of a word: an edge
/// `x → y` means `x` must precede `y` in every strictly equivalent
/// sequential word.
#[derive(Clone, Debug)]
pub struct SerializationGraph {
    /// adjacency\[x\]\[y\] = true iff edge x → y.
    adjacency: Vec<Vec<bool>>,
}

impl SerializationGraph {
    /// Builds the graph for the word itself (opacity view: all
    /// transactions are nodes; precedence constraints come from committing
    /// and aborting transactions).
    pub fn of_word(w: &Word) -> Self {
        let ctx = WordContext::new(w);
        Self::build(&ctx)
    }

    fn build(ctx: &WordContext<'_>) -> Self {
        let txns = ctx.transactions();
        let n = txns.len();
        let mut adjacency = vec![vec![false; n]; n];
        // Conflict-order edges: a conflicting pair (i, j) with i < j forces
        // owner(i) before owner(j).
        for (i, j) in ctx.conflict_pairs() {
            adjacency[ctx.owner(i)][ctx.owner(j)] = true;
        }
        // Precedence edges: a committing or aborting transaction that
        // finishes before another starts must stay before it.
        for (xi, x) in txns.iter().enumerate() {
            if x.is_unfinished() {
                continue;
            }
            for (yi, y) in txns.iter().enumerate() {
                if xi != yi && x.precedes(y) {
                    adjacency[xi][yi] = true;
                }
            }
        }
        SerializationGraph { adjacency }
    }

    /// Number of nodes (transactions).
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Whether there is an edge `x → y`.
    pub fn has_edge(&self, x: usize, y: usize) -> bool {
        self.adjacency[x][y]
    }

    /// A topological order of the transactions, or `None` if the graph has
    /// a cycle.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.len();
        let mut indegree = vec![0usize; n];
        for row in &self.adjacency {
            for (count, &edge) in indegree.iter_mut().zip(row) {
                if edge {
                    *count += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&x| indegree[x] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(x) = queue.pop() {
            order.push(x);
            for (y, &edge) in self.adjacency[x].iter().enumerate() {
                if edge {
                    indegree[y] -= 1;
                    if indegree[y] == 0 {
                        queue.push(y);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// `true` iff the graph is acyclic (equivalently: a sequential witness
    /// exists).
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }
}

/// Decides strict serializability of `w` via the conflict graph of
/// `com(w)`.
///
/// # Examples
///
/// ```
/// use tm_lang::is_strictly_serializable;
/// // Paper Fig. 1(a): three overlapping transactions with a conflict
/// // cycle x → y → z → x; all commit, so the word is not SS.
/// let w = "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1 c3".parse()?;
/// assert!(!is_strictly_serializable(&w));
/// # Ok::<(), tm_lang::ParseStatementError>(())
/// ```
pub fn is_strictly_serializable(w: &Word) -> bool {
    SerializationGraph::of_word(&w.com()).is_acyclic()
}

/// Decides opacity of `w` via the conflict graph of `w` itself (aborting
/// and unfinished transactions included).
///
/// # Examples
///
/// ```
/// use tm_lang::{is_opaque, is_strictly_serializable};
/// // Paper Fig. 2(a): the *unfinished* transaction z of t3 reads an
/// // inconsistent snapshot; w is strictly serializable but not opaque.
/// let w = "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1".parse()?;
/// assert!(is_strictly_serializable(&w));
/// assert!(!is_opaque(&w));
/// # Ok::<(), tm_lang::ParseStatementError>(())
/// ```
pub fn is_opaque(w: &Word) -> bool {
    SerializationGraph::of_word(w).is_acyclic()
}

/// A sequential word strictly equivalent to `com(w)` (a *serialization
/// witness*), or `None` if `w` is not strictly serializable.
pub fn serialization_witness(w: &Word) -> Option<Word> {
    let u = w.com();
    let order = SerializationGraph::of_word(&u).topological_order()?;
    Some(blocks_in_order(&u, &order))
}

/// A sequential word strictly equivalent to `w` itself (including aborting
/// and unfinished transactions), or `None` if `w` is not opaque.
pub fn opacity_witness(w: &Word) -> Option<Word> {
    let order = SerializationGraph::of_word(w).topological_order()?;
    Some(blocks_in_order(w, &order))
}

fn blocks_in_order(w: &Word, order: &[usize]) -> Word {
    let ctx = WordContext::new(w);
    let txns = ctx.transactions();
    let mut out = Word::new();
    for &x in order {
        for &i in txns[x].indices() {
            out.push(w[i]);
        }
    }
    out
}

/// Maximum number of transactions the brute-force checkers accept before
/// the factorial search is considered unreasonable.
pub const BRUTE_FORCE_LIMIT: usize = 8;

/// Decides strict serializability by exhaustively searching for a
/// sequential witness among all orderings of the committed transactions —
/// directly implementing the definition of π_ss.
///
/// # Panics
///
/// Panics if `com(w)` has more than [`BRUTE_FORCE_LIMIT`] transactions.
pub fn is_strictly_serializable_brute_force(w: &Word) -> bool {
    let u = w.com();
    exists_equivalent_sequential(&u)
}

/// Decides opacity by exhaustively searching for a sequential witness among
/// all orderings of *all* transactions — directly implementing the
/// definition of π_op.
///
/// # Panics
///
/// Panics if `w` has more than [`BRUTE_FORCE_LIMIT`] transactions.
pub fn is_opaque_brute_force(w: &Word) -> bool {
    exists_equivalent_sequential(w)
}

fn exists_equivalent_sequential(w: &Word) -> bool {
    let ctx = WordContext::new(w);
    let txns = ctx.transactions();
    assert!(
        txns.len() <= BRUTE_FORCE_LIMIT,
        "brute-force search over {} transactions is unreasonable",
        txns.len()
    );
    let mut order: Vec<usize> = Vec::with_capacity(txns.len());
    let mut used = vec![false; txns.len()];
    search(w, txns, &mut order, &mut used)
}

fn search(w: &Word, txns: &[Transaction], order: &mut Vec<usize>, used: &mut [bool]) -> bool {
    if order.len() == txns.len() {
        let candidate = blocks_in_order(w, order);
        return strictly_equivalent(w, &candidate);
    }
    for x in 0..txns.len() {
        if used[x] {
            continue;
        }
        used[x] = true;
        order.push(x);
        if search(w, txns, order, used) {
            return true;
        }
        order.pop();
        used[x] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Word {
        s.parse().unwrap()
    }

    #[test]
    fn empty_word_is_safe() {
        assert!(is_strictly_serializable(&Word::new()));
        assert!(is_opaque(&Word::new()));
    }

    #[test]
    fn sequential_word_is_opaque() {
        let word = w("(r,1)1 (w,2)1 c1 (r,2)2 c2");
        assert!(is_opaque(&word));
        assert!(is_strictly_serializable(&word));
    }

    #[test]
    fn paper_fig1a_not_ss() {
        // x = t1: r(v1), w(v2), c ; y = t2: w(v1), c ; z = t3: r(v2), r(v1), c
        let word = w("(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1 c3");
        assert!(!is_strictly_serializable(&word));
        // Dropping z's commit makes it serializable.
        let word2 = w("(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1");
        assert!(is_strictly_serializable(&word2));
    }

    #[test]
    fn paper_fig1b_not_ss() {
        let word = w("(w,1)2 (r,2)2 (r,3)3 (r,1)1 c2 (w,2)3 (w,3)1 c1 c3");
        assert!(!is_strictly_serializable(&word));
    }

    #[test]
    fn paper_fig2a_ss_but_not_opaque() {
        let word = w("(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1");
        assert!(is_strictly_serializable(&word));
        assert!(!is_opaque(&word));
    }

    #[test]
    fn paper_fig2b_aborted_read_blocks_commit() {
        // z = t3 reads v2 and aborts; x = t1 then commits a write of v2.
        let word = w("(w,1)2 (r,1)1 c2 (r,2)3 a3 (w,2)1 c1");
        assert!(!is_opaque(&word));
        // Strict serializability ignores the aborted reader.
        assert!(is_strictly_serializable(&word));
    }

    #[test]
    fn witness_is_sequential_and_equivalent() {
        let word = w("(r,1)1 (w,1)2 c1 c2");
        let witness = serialization_witness(&word).expect("word is SS");
        assert!(crate::transaction::is_sequential(&witness));
        assert!(strictly_equivalent(&word.com(), &witness));
    }

    #[test]
    fn opacity_witness_contains_all_transactions() {
        let word = w("(r,1)1 (w,1)2 a2 c1");
        let witness = opacity_witness(&word).expect("word is opaque");
        assert_eq!(witness.len(), word.len());
        assert!(crate::transaction::is_sequential(&witness));
    }

    #[test]
    fn brute_force_agrees_on_paper_examples() {
        for (text, ss, op) in [
            ("(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1 c3", false, false),
            ("(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1", true, false),
            ("(w,1)2 (r,1)1 c2 (r,2)3 a3 (w,2)1 c1", true, false),
            ("(r,1)1 (w,1)2 c1 c2", true, true),
            ("(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1", false, false),
        ] {
            let word = w(text);
            assert_eq!(is_strictly_serializable(&word), ss, "ss of {text}");
            assert_eq!(is_opaque(&word), op, "op of {text}");
            assert_eq!(
                is_strictly_serializable_brute_force(&word),
                ss,
                "bf ss of {text}"
            );
            assert_eq!(is_opaque_brute_force(&word), op, "bf op of {text}");
        }
    }

    #[test]
    fn opacity_implies_ss_on_examples() {
        for text in [
            "(r,1)1 (w,1)2 c1 c2",
            "(w,1)1 a1 (r,1)2 c2",
            "(r,1)1 (r,1)2 c1 c2",
        ] {
            let word = w(text);
            if is_opaque(&word) {
                assert!(is_strictly_serializable(&word), "{text}");
            }
        }
    }

    #[test]
    fn unfinished_overlap_is_flexible() {
        // Two unfinished transactions with a read-write overlap: opaque,
        // because neither has committed.
        let word = w("(r,1)1 (w,1)2");
        assert!(is_opaque(&word));
    }

    #[test]
    fn property_enum_dispatch() {
        let word = w("(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1");
        assert!(SafetyProperty::StrictSerializability.holds(&word));
        assert!(!SafetyProperty::Opacity.holds(&word));
        assert_eq!(SafetyProperty::Opacity.short_name(), "op");
        assert_eq!(SafetyProperty::Opacity.to_string(), "opacity");
    }
}
