//! # tm-lang — the language of transactional histories
//!
//! Foundation crate of the *tm-modelcheck* workspace, a reproduction of
//! *"Model Checking Transactional Memories"* (Guerraoui, Henzinger, Singh;
//! PLDI 2008 / extended version). It defines the vocabulary of §2 of the
//! paper:
//!
//! * [`ThreadId`], [`VarId`] and compact [`IdSet`]s;
//! * [`Command`]s (`C`), [`StatementKind`]s (`Ĉ`), [`Statement`]s (`Ŝ`) and
//!   the finite [`Alphabet`] for `(n, k)` instances;
//! * [`Word`]s with thread/variable projections and `com(w)`;
//! * transactions ([`transactions`], [`Transaction`]) and conflicts under
//!   deferred-update semantics ([`WordContext`]);
//! * the safety properties ([`SafetyProperty`]) with two independent
//!   *reference* decision procedures each — conflict-graph based
//!   ([`is_strictly_serializable`], [`is_opaque`]) and brute-force
//!   ([`is_strictly_serializable_brute_force`], [`is_opaque_brute_force`]);
//! * the liveness properties ([`LivenessProperty`]) on [`Lasso`] words;
//! * bounded-exhaustive and random word generation ([`words_up_to`],
//!   [`visit_words`], [`random_word`]).
//!
//! # Examples
//!
//! Decide the paper's Table 2 counterexample:
//!
//! ```
//! use tm_lang::{is_opaque, is_strictly_serializable, Word};
//!
//! let w1: Word = "(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1".parse()?;
//! assert!(!is_strictly_serializable(&w1));
//! assert!(!is_opaque(&w1));
//! # Ok::<(), tm_lang::ParseStatementError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conflict;
mod enumerate;
mod ids;
mod liveness;
mod safety;
mod statement;
mod transaction;
mod word;

pub use conflict::{strictly_equivalent, WordContext};
pub use enumerate::{random_word, visit_words, words_up_to, WordsUpTo};
pub use ids::{Id, IdSet, Iter as IdSetIter, ThreadId, ThreadSet, VarId, VarSet};
pub use liveness::{Lasso, LivenessProperty};
pub use safety::{
    is_opaque, is_opaque_brute_force, is_strictly_serializable,
    is_strictly_serializable_brute_force, opacity_witness, serialization_witness,
    SafetyProperty, SerializationGraph, BRUTE_FORCE_LIMIT,
};
pub use statement::{Alphabet, Command, ParseStatementError, Statement, StatementKind};
pub use transaction::{
    is_sequential, transaction_of, transaction_projection, transactions, Transaction,
    TransactionKind,
};
pub use word::Word;
