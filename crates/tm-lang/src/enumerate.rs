//! Enumeration and sampling of words, for bounded-exhaustive and
//! property-based testing.

use crate::statement::{Alphabet, Statement};
use crate::word::Word;

/// Iterator over **all** words of length at most `max_len` over an
/// alphabet, in length-lexicographic order (shortest first).
///
/// The count grows as `|Ŝ|^len`; with two threads and two variables
/// (`|Ŝ| = 12`) lengths up to 5–6 are practical in tests.
///
/// # Examples
///
/// ```
/// use tm_lang::{words_up_to, Alphabet};
/// let n = words_up_to(Alphabet::new(1, 1), 2).count();
/// // |Ŝ| = 4 (read, write, commit, abort): 1 + 4 + 16 words.
/// assert_eq!(n, 21);
/// ```
pub fn words_up_to(alphabet: Alphabet, max_len: usize) -> WordsUpTo {
    WordsUpTo {
        letters: alphabet.statements().collect(),
        max_len,
        stack: Vec::new(),
        current: Word::new(),
        emitted_current: false,
        done: false,
    }
}

/// Iterator produced by [`words_up_to`].
#[derive(Clone, Debug)]
pub struct WordsUpTo {
    letters: Vec<Statement>,
    max_len: usize,
    stack: Vec<usize>,
    current: Word,
    emitted_current: bool,
    done: bool,
}

impl Iterator for WordsUpTo {
    type Item = Word;

    fn next(&mut self) -> Option<Word> {
        if self.done {
            return None;
        }
        if !self.emitted_current {
            self.emitted_current = true;
            return Some(self.current.clone()); // the empty word
        }
        // Depth-first pre-order successor: descend if the word can grow,
        // otherwise advance the last letter, backtracking past exhausted
        // positions.
        if self.current.len() < self.max_len {
            self.stack.push(0);
            self.current.push(self.letters[0]);
            return Some(self.current.clone());
        }
        loop {
            let Some(top) = self.stack.pop() else {
                self.done = true;
                return None;
            };
            self.current.pop();
            if top + 1 < self.letters.len() {
                self.stack.push(top + 1);
                self.current.push(self.letters[top + 1]);
                return Some(self.current.clone());
            }
        }
    }
}

/// Depth-first enumeration of words with **pruning**: `visit` is called for
/// every word reachable by extending the empty word one statement at a
/// time; returning `false` stops the descent below that word.
///
/// This is the workhorse of the spec-vs-oracle cross-validation: safety
/// languages are prefix-closed, so subtrees below a rejected word can be
/// skipped.
///
/// # Examples
///
/// ```
/// use tm_lang::{visit_words, Alphabet};
/// let mut count = 0usize;
/// // Visit all words up to length 3 in which thread t1 never aborts.
/// visit_words(Alphabet::new(2, 1), 3, &mut |w| {
///     let ok = !w.iter().any(|s| s.kind.is_abort() && s.thread.index() == 0);
///     if ok { count += 1; }
///     ok
/// });
/// assert!(count > 0);
/// ```
pub fn visit_words<F: FnMut(&Word) -> bool>(alphabet: Alphabet, max_len: usize, visit: &mut F) {
    let letters: Vec<Statement> = alphabet.statements().collect();
    let mut word = Word::new();
    descend(&letters, max_len, &mut word, visit);
}

fn descend<F: FnMut(&Word) -> bool>(
    letters: &[Statement],
    max_len: usize,
    word: &mut Word,
    visit: &mut F,
) {
    if word.len() >= max_len {
        return;
    }
    for &s in letters {
        word.push(s);
        if visit(word) {
            descend(letters, max_len, word, visit);
        }
        word.pop();
    }
}

/// Generates a pseudo-random word of exactly `len` statements, using the
/// caller-supplied uniform sampler `pick(bound) -> index in 0..bound`.
///
/// Accepting a closure keeps `tm-lang` independent of any particular RNG;
/// tests pass `rand` or `proptest` samplers.
pub fn random_word<F: FnMut(usize) -> usize>(
    alphabet: Alphabet,
    len: usize,
    mut pick: F,
) -> Word {
    let letters: Vec<Statement> = alphabet.statements().collect();
    (0..len).map(|_| letters[pick(letters.len())]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_closed_form() {
        // |Ŝ| = (2 vars * 2 + 2) * 2 threads = 12 for (2,2).
        let sigma = Alphabet::new(2, 2);
        assert_eq!(words_up_to(sigma, 0).count(), 1);
        assert_eq!(words_up_to(sigma, 1).count(), 13);
        assert_eq!(words_up_to(sigma, 2).count(), 1 + 12 + 144);
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let sigma = Alphabet::new(1, 2);
        let all: Vec<Word> = words_up_to(sigma, 2).collect();
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }

    #[test]
    fn visit_counts_match_enumeration() {
        let sigma = Alphabet::new(2, 1);
        let mut visited = 0usize;
        visit_words(sigma, 2, &mut |_| {
            visited += 1;
            true
        });
        // words_up_to additionally yields the empty word.
        assert_eq!(visited + 1, words_up_to(sigma, 2).count());
    }

    #[test]
    fn visit_prunes_subtrees() {
        let sigma = Alphabet::new(1, 1);
        let mut visited = Vec::new();
        visit_words(sigma, 2, &mut |w| {
            visited.push(w.clone());
            false // never descend
        });
        assert_eq!(visited.len(), 4); // exactly the length-1 words
    }

    #[test]
    fn random_word_has_requested_length() {
        let mut state = 7usize;
        let w = random_word(Alphabet::new(2, 2), 9, |bound| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state % bound
        });
        assert_eq!(w.len(), 9);
    }
}
