//! Liveness properties on infinite words, represented as lassos (§2, §6).
//!
//! An infinite word produced by a finite-state TM algorithm is ultimately
//! periodic — a *lasso* `u · vω`. The paper's liveness properties only
//! depend on which statements occur infinitely often, i.e. on the cycle
//! part `v`:
//!
//! * **obstruction freedom**: for every thread `t`, infinitely many aborts
//!   of `t` imply infinitely many commits of `t` or infinitely many
//!   statements of some other thread (a Streett condition);
//! * **livelock freedom**: infinitely many commits, or some thread has
//!   infinitely many statements but finitely many aborts;
//! * **wait freedom**: every thread with infinitely many statements
//!   commits infinitely often (the paper leaves wait freedom informal —
//!   "every transaction eventually commits" — this is the standard
//!   per-thread-progress reading; it implies livelock freedom).

use std::fmt;

use crate::ids::ThreadId;
use crate::word::Word;

/// An ultimately periodic infinite word `prefix · cycleω`.
///
/// # Examples
///
/// ```
/// use tm_lang::{Lasso, LivenessProperty};
/// // Thread 2 acquires a lock and stalls; thread 1 aborts forever.
/// let lasso = Lasso::new("(w,1)2".parse()?, "a1".parse()?);
/// assert!(!lasso.is_obstruction_free());
/// assert!(!lasso.is_livelock_free());
/// assert!(!LivenessProperty::WaitFreedom.holds(&lasso));
/// # Ok::<(), tm_lang::ParseStatementError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Lasso {
    prefix: Word,
    cycle: Word,
}

impl Lasso {
    /// Creates a lasso `prefix · cycleω`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is empty (the word would be finite).
    pub fn new(prefix: Word, cycle: Word) -> Self {
        assert!(!cycle.is_empty(), "lasso cycle must be non-empty");
        Lasso { prefix, cycle }
    }

    /// The finite prefix `u`.
    pub fn prefix(&self) -> &Word {
        &self.prefix
    }

    /// The repeated part `v`.
    pub fn cycle(&self) -> &Word {
        &self.cycle
    }

    /// Unrolls the lasso into a finite word `u · v^repeats`.
    pub fn unroll(&self, repeats: usize) -> Word {
        let mut out = self.prefix.clone();
        for _ in 0..repeats {
            out.extend(self.cycle.iter().copied());
        }
        out
    }

    fn cycle_has_statement_of(&self, t: ThreadId) -> bool {
        self.cycle.iter().any(|s| s.thread == t)
    }

    fn cycle_has_abort_of(&self, t: ThreadId) -> bool {
        self.cycle.iter().any(|s| s.thread == t && s.kind.is_abort())
    }

    fn cycle_has_commit_of(&self, t: ThreadId) -> bool {
        self.cycle
            .iter()
            .any(|s| s.thread == t && s.kind.is_commit())
    }

    /// Obstruction freedom: `⋀_t (□◇(abort,t) → □◇((commit,t) ∨ ⋁_{u≠t} (c,u)))`.
    pub fn is_obstruction_free(&self) -> bool {
        self.cycle.iter().all(|s| {
            let t = s.thread;
            !self.cycle_has_abort_of(t)
                || self.cycle_has_commit_of(t)
                || self.cycle.iter().any(|o| o.thread != t)
        })
    }

    /// Livelock freedom: `□◇commit ∨ ⋁_t (□◇(c,t) ∧ ◇□¬(abort,t))`.
    pub fn is_livelock_free(&self) -> bool {
        self.cycle.iter().any(|s| s.kind.is_commit())
            || (0..16).map(ThreadId::new).any(|t| {
                self.cycle_has_statement_of(t) && !self.cycle_has_abort_of(t)
            })
    }

    /// Wait freedom: every thread that takes infinitely many steps commits
    /// infinitely often.
    pub fn is_wait_free(&self) -> bool {
        (0..16).map(ThreadId::new).all(|t| {
            !self.cycle_has_statement_of(t) || self.cycle_has_commit_of(t)
        })
    }
}

impl fmt::Display for Lasso {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} · ({})ω", self.prefix, self.cycle)
    }
}

/// The liveness properties considered by the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LivenessProperty {
    /// A transaction running in isolation eventually commits.
    ObstructionFreedom,
    /// Some transaction eventually commits.
    LivelockFreedom,
    /// Every transaction eventually commits.
    WaitFreedom,
}

impl LivenessProperty {
    /// Decides the property on a lasso.
    pub fn holds(self, lasso: &Lasso) -> bool {
        match self {
            LivenessProperty::ObstructionFreedom => lasso.is_obstruction_free(),
            LivenessProperty::LivelockFreedom => lasso.is_livelock_free(),
            LivenessProperty::WaitFreedom => lasso.is_wait_free(),
        }
    }

    /// All three properties, weakest first.
    pub fn all() -> [LivenessProperty; 3] {
        [
            LivenessProperty::ObstructionFreedom,
            LivenessProperty::LivelockFreedom,
            LivenessProperty::WaitFreedom,
        ]
    }
}

impl fmt::Display for LivenessProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LivenessProperty::ObstructionFreedom => write!(f, "obstruction freedom"),
            LivenessProperty::LivelockFreedom => write!(f, "livelock freedom"),
            LivenessProperty::WaitFreedom => write!(f, "wait freedom"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lasso(prefix: &str, cycle: &str) -> Lasso {
        Lasso::new(prefix.parse().unwrap(), cycle.parse().unwrap())
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_cycle_rejected() {
        let _ = Lasso::new(Word::new(), Word::new());
    }

    #[test]
    fn solo_abort_loop_violates_everything() {
        let l = lasso("(w,1)2", "a1");
        assert!(!l.is_obstruction_free());
        assert!(!l.is_livelock_free());
        assert!(!l.is_wait_free());
    }

    #[test]
    fn commit_loop_satisfies_everything() {
        let l = lasso("", "(r,1)1 c1");
        assert!(l.is_obstruction_free());
        assert!(l.is_livelock_free());
        assert!(l.is_wait_free());
    }

    #[test]
    fn mutual_abort_loop_is_of_but_not_lf() {
        // Paper Table 3, DSTM: the two threads keep aborting each other —
        // each sees interference (statements of the other thread), so
        // obstruction freedom holds, but no one ever commits.
        let l = lasso("", "a1 (r,1)1 a2 (w,1)2");
        assert!(l.is_obstruction_free());
        assert!(!l.is_livelock_free());
        assert!(!l.is_wait_free());
    }

    #[test]
    fn one_winner_is_livelock_free_but_not_wait_free() {
        // t1 commits forever while t2 aborts forever.
        let l = lasso("", "(w,1)1 c1 (w,1)2 a2");
        assert!(l.is_obstruction_free());
        assert!(l.is_livelock_free());
        assert!(!l.is_wait_free());
    }

    #[test]
    fn steps_without_aborts_are_livelock_free_by_second_disjunct() {
        // t1 keeps reading, never aborts, never commits. Nobody commits,
        // but t1 has infinitely many statements and finitely many aborts.
        let l = lasso("", "(r,1)1");
        assert!(l.is_livelock_free());
        assert!(!l.is_wait_free());
    }

    #[test]
    fn wait_freedom_implies_livelock_freedom() {
        for (p, c) in [("", "c1"), ("", "(r,1)1 c1 (w,1)2 c2"), ("a1", "c2")] {
            let l = lasso(p, c);
            if l.is_wait_free() {
                assert!(l.is_livelock_free(), "{l}");
            }
        }
    }

    #[test]
    fn unroll_and_accessors() {
        let l = lasso("a1", "c2");
        assert_eq!(l.unroll(2).to_string(), "a1 c2 c2");
        assert_eq!(l.prefix().len(), 1);
        assert_eq!(l.cycle().len(), 1);
        assert_eq!(l.to_string(), "a1 · (c2)ω");
    }

    #[test]
    fn aborting_thread_with_interference_is_obstruction_free() {
        // t1 aborts forever, but t2 keeps taking steps: the Streett pair
        // for t1 is satisfied by the interference disjunct.
        let l = lasso("", "a1 (r,1)2");
        assert!(LivenessProperty::ObstructionFreedom.holds(&l));
        // t2 steps forever without aborting → livelock free.
        assert!(LivenessProperty::LivelockFreedom.holds(&l));
    }

    #[test]
    fn property_enum() {
        let l = lasso("", "a1");
        assert!(!LivenessProperty::ObstructionFreedom.holds(&l));
        assert!(!LivenessProperty::LivelockFreedom.holds(&l));
        assert_eq!(
            LivenessProperty::ObstructionFreedom.to_string(),
            "obstruction freedom"
        );
        assert_eq!(LivenessProperty::all().len(), 3);
    }
}
