//! Finite words over the statement alphabet, and their projections.

use std::fmt;
use std::ops::Index;
use std::str::FromStr;

use crate::ids::{ThreadId, VarSet};
use crate::statement::{ParseStatementError, Statement};
use crate::transaction::transactions;

/// A finite word `w ∈ Ŝ*`: a sequence of statements, i.e. a transaction
/// history as observed at the TM interface.
///
/// # Examples
///
/// ```
/// use tm_lang::Word;
/// let w: Word = "(w,1)2 (r,1)1 c2 (w,2)1 c1".parse()?;
/// assert_eq!(w.len(), 5);
/// assert_eq!(w.to_string(), "(w,1)2 (r,1)1 c2 (w,2)1 c1");
/// # Ok::<(), tm_lang::ParseStatementError>(())
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Word(Vec<Statement>);

impl Word {
    /// Creates the empty word.
    pub fn new() -> Self {
        Word(Vec::new())
    }

    /// Number of statements in the word.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the word contains no statement.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Appends a statement.
    pub fn push(&mut self, s: Statement) {
        self.0.push(s);
    }

    /// Removes and returns the last statement.
    pub fn pop(&mut self) -> Option<Statement> {
        self.0.pop()
    }

    /// The statements as a slice.
    pub fn statements(&self) -> &[Statement] {
        &self.0
    }

    /// Iterates over the statements.
    pub fn iter(&self) -> std::slice::Iter<'_, Statement> {
        self.0.iter()
    }

    /// The statement at `index`, or `None` if out of bounds.
    pub fn get(&self, index: usize) -> Option<Statement> {
        self.0.get(index).copied()
    }

    /// The prefix of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    pub fn prefix(&self, len: usize) -> Word {
        Word(self.0[..len].to_vec())
    }

    /// Concatenates two words.
    pub fn concat(&self, other: &Word) -> Word {
        let mut out = self.clone();
        out.0.extend_from_slice(&other.0);
        out
    }

    /// The *thread projection* `w|t`: the subsequence of statements issued
    /// by thread `t` (§2).
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_lang::{ThreadId, Word};
    /// let w: Word = "(w,1)2 (r,1)1 c2 c1".parse()?;
    /// assert_eq!(w.thread_projection(ThreadId::new(0)).to_string(), "(r,1)1 c1");
    /// # Ok::<(), tm_lang::ParseStatementError>(())
    /// ```
    pub fn thread_projection(&self, t: ThreadId) -> Word {
        self.0.iter().copied().filter(|s| s.thread == t).collect()
    }

    /// The *variable projection* of `w` on a variable set `V'` (§4, P3):
    /// keeps all commit and abort statements, and the reads/writes of
    /// variables in `V'`.
    pub fn variable_projection(&self, vars: VarSet) -> Word {
        self.0
            .iter()
            .copied()
            .filter(|s| match s.kind.variable() {
                Some(v) => vars.contains(v),
                None => true,
            })
            .collect()
    }

    /// `com(w)`: the subsequence consisting of every statement that belongs
    /// to a *committing* transaction (§2).
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_lang::Word;
    /// let w: Word = "(r,1)1 (w,1)2 a2 c1".parse()?;
    /// assert_eq!(w.com().to_string(), "(r,1)1 c1");
    /// # Ok::<(), tm_lang::ParseStatementError>(())
    /// ```
    pub fn com(&self) -> Word {
        let txns = transactions(self);
        let mut keep = vec![false; self.len()];
        for txn in txns.iter().filter(|x| x.is_committing()) {
            for &i in txn.indices() {
                keep[i] = true;
            }
        }
        self.0
            .iter()
            .copied()
            .zip(keep)
            .filter_map(|(s, k)| k.then_some(s))
            .collect()
    }

    /// The set of threads that have at least one statement in the word.
    pub fn active_threads(&self) -> crate::ids::ThreadSet {
        self.0.iter().map(|s| s.thread).collect()
    }

    /// The set of variables accessed in the word.
    pub fn accessed_vars(&self) -> VarSet {
        self.0.iter().filter_map(|s| s.kind.variable()).collect()
    }
}

impl Index<usize> for Word {
    type Output = Statement;
    fn index(&self, index: usize) -> &Statement {
        &self.0[index]
    }
}

impl From<Vec<Statement>> for Word {
    fn from(v: Vec<Statement>) -> Self {
        Word(v)
    }
}

impl From<Word> for Vec<Statement> {
    fn from(w: Word) -> Self {
        w.0
    }
}

impl FromIterator<Statement> for Word {
    fn from_iter<I: IntoIterator<Item = Statement>>(iter: I) -> Self {
        Word(iter.into_iter().collect())
    }
}

impl Extend<Statement> for Word {
    fn extend<I: IntoIterator<Item = Statement>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Word {
    type Item = &'a Statement;
    type IntoIter = std::slice::Iter<'a, Statement>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl IntoIterator for Word {
    type Item = Statement;
    type IntoIter = std::vec::IntoIter<Statement>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε");
        }
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{self}\"")
    }
}

impl FromStr for Word {
    type Err = ParseStatementError;

    /// Parses a whitespace- or semicolon-separated sequence of statements
    /// in the paper's notation, e.g. `"(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1"`.
    /// (Commas cannot separate statements — they appear inside them.)
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.split_whitespace()
            .flat_map(|chunk| chunk.split(';'))
            .filter(|tok| !tok.is_empty() && *tok != "ε")
            .map(str::parse)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;

    fn w(s: &str) -> Word {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        let text = "(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1";
        assert_eq!(w(text).to_string(), text);
    }

    #[test]
    fn empty_word_displays_epsilon() {
        assert_eq!(Word::new().to_string(), "ε");
        assert_eq!(w(""), Word::new());
    }

    #[test]
    fn thread_projection_keeps_order() {
        let word = w("(r,1)1 (w,2)2 (w,1)1 c2 c1");
        assert_eq!(
            word.thread_projection(ThreadId::new(0)).to_string(),
            "(r,1)1 (w,1)1 c1"
        );
        assert_eq!(
            word.thread_projection(ThreadId::new(2)),
            Word::new()
        );
    }

    #[test]
    fn variable_projection_keeps_finishing_statements() {
        let word = w("(r,1)1 (w,2)1 a2 c1");
        let only_v1 = word.variable_projection(VarSet::singleton(VarId::new(0)));
        assert_eq!(only_v1.to_string(), "(r,1)1 a2 c1");
    }

    #[test]
    fn com_drops_aborting_and_unfinished() {
        // t2's transaction aborts; t3's is unfinished; t1's commits.
        let word = w("(r,1)1 (w,1)2 (r,2)3 a2 c1");
        assert_eq!(word.com().to_string(), "(r,1)1 c1");
    }

    #[test]
    fn com_keeps_multiple_transactions_per_thread() {
        let word = w("(r,1)1 c1 (w,2)1 a1 (r,2)1 c1");
        assert_eq!(word.com().to_string(), "(r,1)1 c1 (r,2)1 c1");
    }

    #[test]
    fn accessors() {
        let word = w("(r,1)1 (w,2)2");
        assert_eq!(word.active_threads().len(), 2);
        assert_eq!(word.accessed_vars().len(), 2);
        assert_eq!(word[1], Statement::write(1, 1));
        assert_eq!(word.prefix(1).to_string(), "(r,1)1");
    }
}
