//! Identifiers for threads and variables, and compact sets thereof.
//!
//! The paper fixes a set `V = {1, …, k}` of variables and a set
//! `T = {1, …, n}` of threads. Both are represented here as 0-based
//! indices wrapped in newtypes ([`VarId`], [`ThreadId`]); display output is
//! 1-based to match the paper's notation (`v1`, `t2`).

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

/// Common interface of the small integer identifiers used throughout the
/// workspace ([`ThreadId`] and [`VarId`]).
///
/// This trait is sealed: it is not meant to be implemented outside
/// `tm-lang`.
pub trait Id: Copy + Eq + Ord + Hash + fmt::Debug + private::Sealed {
    /// Maximum number of distinct ids (bounded so that [`IdSet`] fits in a
    /// single machine word).
    const MAX: usize = 16;

    /// Creates an id from a 0-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Self::MAX`.
    fn from_index(index: usize) -> Self;

    /// The 0-based index of this id.
    fn index(self) -> usize;
}

mod private {
    pub trait Sealed {}
    impl Sealed for super::ThreadId {}
    impl Sealed for super::VarId {}
}

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u8);

        impl $name {
            /// Creates an id from a 0-based index.
            ///
            /// # Panics
            ///
            /// Panics if `index >= 16`.
            pub fn new(index: usize) -> Self {
                assert!(
                    index < <Self as Id>::MAX,
                    concat!(stringify!($name), " index {} out of range"),
                    index
                );
                $name(index as u8)
            }

            /// The 0-based index of this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// The 1-based number used in the paper's notation.
            pub fn number(self) -> usize {
                self.0 as usize + 1
            }
        }

        impl Id for $name {
            fn from_index(index: usize) -> Self {
                Self::new(index)
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.number())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(self, f)
            }
        }
    };
}

id_type! {
    /// A thread identifier (`t ∈ T`).
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_lang::ThreadId;
    /// let t = ThreadId::new(0);
    /// assert_eq!(t.number(), 1);
    /// assert_eq!(t.to_string(), "t1");
    /// ```
    ThreadId, "t"
}

id_type! {
    /// A shared-variable identifier (`v ∈ V`).
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_lang::VarId;
    /// let v = VarId::new(1);
    /// assert_eq!(v.to_string(), "v2");
    /// ```
    VarId, "v"
}

/// A compact set of identifiers, stored as a 16-bit bitmask.
///
/// The TM algorithms and specifications of the paper keep per-thread sets of
/// variables (read sets, write sets, lock sets, …) and sets of threads
/// (predecessor sets). Since the reduction theorems bound the interesting
/// instances at two threads and two variables — and even the scaling
/// experiments stay tiny — a one-word bitset keeps automaton states `Copy`,
/// hashable, and cheap to compare.
///
/// # Examples
///
/// ```
/// use tm_lang::{VarId, VarSet};
/// let mut s = VarSet::new();
/// s.insert(VarId::new(0));
/// s.insert(VarId::new(1));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(VarId::new(1)));
/// assert!(!s.remove(VarId::new(2)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdSet<T> {
    bits: u16,
    _marker: PhantomData<T>,
}

/// A set of [`VarId`]s.
pub type VarSet = IdSet<VarId>;
/// A set of [`ThreadId`]s.
pub type ThreadSet = IdSet<ThreadId>;

impl<T: Id> IdSet<T> {
    /// Creates an empty set.
    pub const fn new() -> Self {
        IdSet {
            bits: 0,
            _marker: PhantomData,
        }
    }

    /// Creates a set containing a single element.
    pub fn singleton(item: T) -> Self {
        let mut s = Self::new();
        s.insert(item);
        s
    }

    /// Creates the full set `{0, …, len - 1}`.
    pub fn full(len: usize) -> Self {
        assert!(len <= T::MAX);
        IdSet {
            bits: if len == 16 { u16::MAX } else { (1u16 << len) - 1 },
            _marker: PhantomData,
        }
    }

    /// Inserts an element; returns `true` if it was newly added.
    pub fn insert(&mut self, item: T) -> bool {
        let mask = 1u16 << item.index();
        let added = self.bits & mask == 0;
        self.bits |= mask;
        added
    }

    /// Removes an element; returns `true` if it was present.
    pub fn remove(&mut self, item: T) -> bool {
        let mask = 1u16 << item.index();
        let present = self.bits & mask != 0;
        self.bits &= !mask;
        present
    }

    /// Tests membership.
    pub fn contains(self, item: T) -> bool {
        self.bits & (1u16 << item.index()) != 0
    }

    /// Number of elements in the set.
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// `true` if the set has no elements.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.bits = 0;
    }

    /// Set union.
    pub fn union(self, other: Self) -> Self {
        IdSet {
            bits: self.bits | other.bits,
            _marker: PhantomData,
        }
    }

    /// Set intersection.
    pub fn intersection(self, other: Self) -> Self {
        IdSet {
            bits: self.bits & other.bits,
            _marker: PhantomData,
        }
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: Self) -> Self {
        IdSet {
            bits: self.bits & !other.bits,
            _marker: PhantomData,
        }
    }

    /// `true` if the two sets share no element.
    pub fn is_disjoint(self, other: Self) -> bool {
        self.bits & other.bits == 0
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset(self, other: Self) -> bool {
        self.bits & !other.bits == 0
    }

    /// In-place union.
    pub fn extend_with(&mut self, other: Self) {
        self.bits |= other.bits;
    }

    /// Iterates over the elements in increasing index order.
    pub fn iter(self) -> Iter<T> {
        Iter {
            bits: self.bits,
            _marker: PhantomData,
        }
    }

    /// The raw 16-bit membership mask (bit `i` set ⇔ id with index `i`
    /// present). Stable across processes — the serialization form used by
    /// the on-disk artifact store.
    pub const fn bits(self) -> u16 {
        self.bits
    }

    /// Reconstructs a set from a raw membership mask produced by
    /// [`IdSet::bits`]. Every `u16` is a valid mask (ids are capped at 16).
    pub const fn from_bits(bits: u16) -> Self {
        IdSet {
            bits,
            _marker: PhantomData,
        }
    }
}

impl<T: Id> Default for IdSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Id> FromIterator<T> for IdSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = Self::new();
        for item in iter {
            s.insert(item);
        }
        s
    }
}

impl<T: Id> Extend<T> for IdSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.insert(item);
        }
    }
}

impl<T: Id> IntoIterator for IdSet<T> {
    type Item = T;
    type IntoIter = Iter<T>;
    fn into_iter(self) -> Iter<T> {
        self.iter()
    }
}

/// Iterator over the elements of an [`IdSet`], produced by [`IdSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter<T> {
    bits: u16,
    _marker: PhantomData<T>,
}

impl<T: Id> Iterator for Iter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.bits == 0 {
            return None;
        }
        let idx = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(T::from_index(idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl<T: Id> ExactSizeIterator for Iter<T> {}

impl<T: Id + fmt::Display> fmt::Display for IdSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

impl<T: Id + fmt::Display> fmt::Debug for IdSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_one_based() {
        assert_eq!(ThreadId::new(0).to_string(), "t1");
        assert_eq!(ThreadId::new(3).to_string(), "t4");
        assert_eq!(VarId::new(1).to_string(), "v2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_out_of_range_panics() {
        let _ = ThreadId::new(16);
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = VarSet::new();
        assert!(s.is_empty());
        assert!(s.insert(VarId::new(3)));
        assert!(!s.insert(VarId::new(3)));
        assert!(s.contains(VarId::new(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(VarId::new(3)));
        assert!(!s.remove(VarId::new(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a: VarSet = [0, 1, 2].into_iter().map(VarId::new).collect();
        let b: VarSet = [1, 3].into_iter().map(VarId::new).collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b), VarSet::singleton(VarId::new(1)));
        assert_eq!(a.difference(b).len(), 2);
        assert!(!a.is_disjoint(b));
        assert!(a.intersection(b).is_subset(a));
        assert!(VarSet::new().is_subset(b));
    }

    #[test]
    fn set_full_and_iter_order() {
        let s = ThreadSet::full(3);
        let v: Vec<usize> = s.iter().map(|t| t.index()).collect();
        assert_eq!(v, vec![0, 1, 2]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn set_display() {
        let s: VarSet = [0, 2].into_iter().map(VarId::new).collect();
        assert_eq!(s.to_string(), "{v1,v3}");
        assert_eq!(VarSet::new().to_string(), "{}");
    }

    #[test]
    fn set_full_sixteen() {
        let s = VarSet::full(16);
        assert_eq!(s.len(), 16);
    }

    #[test]
    fn set_bits_round_trip() {
        let s: VarSet = [0, 2, 15].into_iter().map(VarId::new).collect();
        assert_eq!(VarSet::from_bits(s.bits()), s);
        assert_eq!(VarSet::from_bits(0), VarSet::new());
        assert_eq!(VarSet::from_bits(u16::MAX), VarSet::full(16));
    }
}
