//! Transactions: maximal command sequences of a thread (§2).
//!
//! Given a word `w` and a thread `t`, the thread projection `w|t` splits
//! into *transactions*: consecutive subsequences that start at an
//! initiating statement and run up to (and including) the next finishing
//! statement (commit or abort), or to the end of the projection.

use crate::ids::{ThreadId, VarSet};
use crate::statement::StatementKind;
use crate::word::Word;

/// How a transaction ends within the observed word.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TransactionKind {
    /// Ends with a commit statement.
    Committing,
    /// Ends with an abort statement.
    Aborting,
    /// Has no finishing statement in the word (still live at the end).
    Unfinished,
}

/// A transaction of a thread in a word: the indices (into the word) of its
/// statements, in order.
///
/// # Examples
///
/// ```
/// use tm_lang::{transactions, TransactionKind, Word};
/// let w: Word = "(r,1)1 (w,1)2 a2 (w,2)1 c1".parse()?;
/// let txns = transactions(&w);
/// assert_eq!(txns.len(), 2);
/// assert_eq!(txns[0].kind(), TransactionKind::Committing); // t1: r,w,c
/// assert_eq!(txns[1].kind(), TransactionKind::Aborting);   // t2: w,a
/// # Ok::<(), tm_lang::ParseStatementError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    thread: ThreadId,
    indices: Vec<usize>,
    kind: TransactionKind,
}

impl Transaction {
    /// The thread executing this transaction.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The indices of the transaction's statements within the word.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// How the transaction ends.
    pub fn kind(&self) -> TransactionKind {
        self.kind
    }

    /// `true` if the transaction commits.
    pub fn is_committing(&self) -> bool {
        self.kind == TransactionKind::Committing
    }

    /// `true` if the transaction aborts.
    pub fn is_aborting(&self) -> bool {
        self.kind == TransactionKind::Aborting
    }

    /// `true` if the transaction has no finishing statement.
    pub fn is_unfinished(&self) -> bool {
        self.kind == TransactionKind::Unfinished
    }

    /// Index (into the word) of the first statement.
    pub fn first_index(&self) -> usize {
        self.indices[0]
    }

    /// Index (into the word) of the last statement.
    pub fn last_index(&self) -> usize {
        *self.indices.last().expect("transactions are non-empty")
    }

    /// `x.precedes(y)` is the paper's `x <w y`: the last statement of `x`
    /// occurs before the first statement of `y`.
    pub fn precedes(&self, other: &Transaction) -> bool {
        self.last_index() < other.first_index()
    }

    /// Iterates over the transaction's statement kinds in order.
    pub fn kinds<'w>(&'w self, w: &'w Word) -> impl Iterator<Item = StatementKind> + 'w {
        self.indices.iter().map(move |&i| w[i].kind)
    }

    /// The set of variables this transaction writes to.
    pub fn writes(&self, w: &Word) -> VarSet {
        self.kinds(w)
            .filter_map(|k| match k {
                StatementKind::Write(v) => Some(v),
                _ => None,
            })
            .collect()
    }

    /// The set of variables this transaction *globally reads*: variables
    /// `v` with a read of `v` not preceded by a write of `v` within the
    /// same transaction (§2).
    pub fn global_reads(&self, w: &Word) -> VarSet {
        let mut written = VarSet::new();
        let mut reads = VarSet::new();
        for k in self.kinds(w) {
            match k {
                StatementKind::Write(v) => {
                    written.insert(v);
                }
                StatementKind::Read(v) if !written.contains(v) => {
                    reads.insert(v);
                }
                _ => {}
            }
        }
        reads
    }

    /// `true` if the statement at word index `i` (which must belong to this
    /// transaction) is a *global read*: a read of a variable with no prior
    /// write to it in this transaction.
    pub fn is_global_read(&self, w: &Word, i: usize) -> bool {
        let StatementKind::Read(v) = w[i].kind else {
            return false;
        };
        for &j in &self.indices {
            if j >= i {
                break;
            }
            if w[j].kind == StatementKind::Write(v) {
                return false;
            }
        }
        true
    }
}

/// Splits a word into its transactions, across all threads, ordered by
/// first statement index.
///
/// Every statement of the word belongs to exactly one transaction.
pub fn transactions(w: &Word) -> Vec<Transaction> {
    let mut open: Vec<Option<Transaction>> = vec![None; 16];
    let mut done: Vec<Transaction> = Vec::new();
    for (i, s) in w.iter().enumerate() {
        let slot = &mut open[s.thread.index()];
        let txn = slot.get_or_insert_with(|| Transaction {
            thread: s.thread,
            indices: Vec::new(),
            kind: TransactionKind::Unfinished,
        });
        txn.indices.push(i);
        if s.kind.is_finishing() {
            let mut finished = slot.take().expect("slot was just filled");
            finished.kind = if s.kind.is_commit() {
                TransactionKind::Committing
            } else {
                TransactionKind::Aborting
            };
            done.push(finished);
        }
    }
    done.extend(open.into_iter().flatten());
    done.sort_by_key(|t| t.first_index());
    done
}

/// Maps every statement index of `w` to the index (within
/// [`transactions`]`(w)`) of the transaction containing it.
pub fn transaction_of(w: &Word, txns: &[Transaction]) -> Vec<usize> {
    let mut owner = vec![usize::MAX; w.len()];
    for (x, txn) in txns.iter().enumerate() {
        for &i in txn.indices() {
            owner[i] = x;
        }
    }
    debug_assert!(owner.iter().all(|&x| x != usize::MAX));
    owner
}

/// `true` if the word is *sequential*: every pair of transactions is
/// ordered by `<w` (no two transactions overlap).
///
/// # Examples
///
/// ```
/// use tm_lang::{is_sequential, Word};
/// let seq: Word = "(r,1)1 c1 (w,1)2 c2".parse()?;
/// let ovl: Word = "(r,1)1 (w,1)2 c1 c2".parse()?;
/// assert!(is_sequential(&seq));
/// assert!(!is_sequential(&ovl));
/// # Ok::<(), tm_lang::ParseStatementError>(())
/// ```
pub fn is_sequential(w: &Word) -> bool {
    let txns = transactions(w);
    for (i, x) in txns.iter().enumerate() {
        for y in &txns[i + 1..] {
            if !(x.precedes(y) || y.precedes(x)) {
                return false;
            }
        }
    }
    true
}

/// The *transaction projection* of `w` on a subset of its transactions
/// (§4, P1): the subsequence containing every statement of the selected
/// transactions.
///
/// `selected` holds indices into [`transactions`]`(w)`.
pub fn transaction_projection(w: &Word, txns: &[Transaction], selected: &[usize]) -> Word {
    let mut keep = vec![false; w.len()];
    for &x in selected {
        for &i in txns[x].indices() {
            keep[i] = true;
        }
    }
    w.iter()
        .enumerate()
        .filter_map(|(i, &s)| keep[i].then_some(s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;

    fn w(s: &str) -> Word {
        s.parse().unwrap()
    }

    #[test]
    fn splits_interleaved_word() {
        let word = w("(r,1)1 (w,1)2 (w,2)1 c2 c1");
        let txns = transactions(&word);
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].thread(), ThreadId::new(0));
        assert_eq!(txns[0].indices(), &[0, 2, 4]);
        assert_eq!(txns[1].indices(), &[1, 3]);
    }

    #[test]
    fn several_transactions_per_thread() {
        let word = w("(r,1)1 c1 (w,1)1 a1 (r,2)1");
        let txns = transactions(&word);
        assert_eq!(txns.len(), 3);
        assert!(txns[0].is_committing());
        assert!(txns[1].is_aborting());
        assert!(txns[2].is_unfinished());
    }

    #[test]
    fn lone_commit_is_a_transaction() {
        let word = w("c1 a2");
        let txns = transactions(&word);
        assert_eq!(txns.len(), 2);
        assert!(txns[0].is_committing());
        assert!(txns[1].is_aborting());
    }

    #[test]
    fn precedence() {
        let word = w("(r,1)1 c1 (w,1)2 c2");
        let txns = transactions(&word);
        assert!(txns[0].precedes(&txns[1]));
        assert!(!txns[1].precedes(&txns[0]));
    }

    #[test]
    fn global_reads_exclude_read_after_own_write() {
        // t1 writes v1 then reads v1: not a global read of v1.
        let word = w("(w,1)1 (r,1)1 (r,2)1 c1");
        let txns = transactions(&word);
        assert_eq!(txns[0].global_reads(&word), VarSet::singleton(VarId::new(1)));
        assert!(!txns[0].is_global_read(&word, 1));
        assert!(txns[0].is_global_read(&word, 2));
    }

    #[test]
    fn writes_collects_all_written_vars() {
        let word = w("(w,1)1 (w,2)1 c1");
        let txns = transactions(&word);
        assert_eq!(txns[0].writes(&word).len(), 2);
    }

    #[test]
    fn transaction_of_total() {
        let word = w("(r,1)1 (w,1)2 c2 c1");
        let txns = transactions(&word);
        let owner = transaction_of(&word, &txns);
        assert_eq!(owner, vec![0, 1, 1, 0]);
    }

    #[test]
    fn projection_keeps_selected_only() {
        let word = w("(r,1)1 (w,1)2 a2 c1");
        let txns = transactions(&word);
        let committing: Vec<usize> = (0..txns.len()).filter(|&x| txns[x].is_committing()).collect();
        let proj = transaction_projection(&word, &txns, &committing);
        assert_eq!(proj.to_string(), "(r,1)1 c1");
    }

    #[test]
    fn sequential_detection() {
        assert!(is_sequential(&w("")));
        assert!(is_sequential(&w("(r,1)1 (w,1)1 c1 (r,1)2")));
        assert!(!is_sequential(&w("(r,1)1 (w,1)2 c1 c2")));
    }
}
