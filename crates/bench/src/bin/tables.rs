//! Regenerates every table of the paper in one run, printing measured
//! numbers next to the paper's. Used to fill EXPERIMENTS.md.
//!
//! ```bash
//! cargo run --release -p tm-bench --bin tables
//! ```

use std::time::{Duration, Instant};

use tm_algorithms::{DstmTm, MostGeneralSource, TmAlgorithm, TwoPhaseTm};
use tm_automata::{
    check_equivalence_antichain, check_inclusion, check_inclusion_compiled,
    check_inclusion_otf_lazy, check_inclusion_otf_stats, check_inclusion_reference, Alphabet,
    Dfa, DtsSpecSource,
};
use tm_bench::{
    liveness_property_tag, liveness_roster, table2_roster, table3_check, table3_names, MAX_STATES,
};
use tm_checker::Table;
use tm_lang::{LivenessProperty, SafetyProperty};
use tm_spec::{spec_alphabet, DetSpec, NondetSpec};

fn main() {
    // `TM_BENCH_LIVENESS_ONLY=1` regenerates only the liveness sections
    // (and `BENCH_liveness.json`) — the safety tables and inclusion
    // benches dominate a full run.
    if std::env::var("TM_BENCH_LIVENESS_ONLY").as_deref() != Ok("1") {
        table1();
        table2();
        theorem3();
        table3();
        let baseline = bench_inclusion_baseline();
        let scaling = bench_otf_scaling();
        write_bench_json(&baseline, &scaling);
    }
    let (liveness_baseline, liveness_speedup) = bench_liveness_baseline();
    let liveness_scaling = bench_liveness_scaling();
    write_liveness_json(&liveness_baseline, liveness_speedup, &liveness_scaling);
}

fn table1() {
    // Table 1 rows are reproduced programmatically (and asserted) in
    // `examples/table1_runs.rs` / `tests/table1_and_figures.rs`; here we
    // only point at them to keep this binary focused on measurements.
    println!("Table 1: see `cargo run --release --example table1_runs`\n");
}

fn table2() {
    for property in SafetyProperty::all() {
        let spec_start = Instant::now();
        let (spec, _) = DetSpec::new(property, 2, 2).to_dfa(MAX_STATES);
        let spec_time = spec_start.elapsed();
        let mut table = Table::new(
            format!(
                "Table 2 — L(A) ⊆ L(Σᵈ_{}) (spec: {} states, built in {:.2?})",
                property.short_name(),
                spec.num_states(),
                spec_time
            ),
            ["TM", "states", "paper", "verdict", "time", "counterexample"],
        );
        for (name, nfa, paper_states) in table2_roster() {
            let start = Instant::now();
            let result = check_inclusion(&nfa, &spec);
            let elapsed = start.elapsed();
            let (verdict, cx) = match result.counterexample() {
                None => ("Y".to_owned(), String::new()),
                Some(w) => (
                    "N".to_owned(),
                    w.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(" "),
                ),
            };
            table.push_row([
                name,
                nfa.num_states().to_string(),
                paper_states.to_string(),
                verdict,
                format!("{elapsed:.2?}"),
                cx,
            ]);
        }
        println!("{table}");
    }
}

fn theorem3() {
    let mut table = Table::new(
        "Theorem 3 — L(Σ) = L(Σᵈ) via antichains (2 threads, 2 variables)",
        [
            "property",
            "nondet states",
            "paper",
            "det states",
            "paper",
            "minimized",
            "equivalent",
            "time",
        ],
    );
    for property in SafetyProperty::all() {
        let nondet = NondetSpec::new(property, 2, 2).to_nfa(MAX_STATES);
        let (det, _) = DetSpec::new(property, 2, 2).to_dfa(MAX_STATES);
        let minimized = Dfa::determinize(&nondet.nfa, spec_alphabet(2, 2)).minimize();
        let start = Instant::now();
        let verdict = check_equivalence_antichain(&nondet.nfa, &det.to_nfa());
        let elapsed = start.elapsed();
        let (paper_nd, paper_d) = match property {
            SafetyProperty::StrictSerializability => ("12345", "3520"),
            SafetyProperty::Opacity => ("9202", "2272"),
        };
        table.push_row([
            property.short_name().to_owned(),
            nondet.num_states().to_string(),
            paper_nd.to_owned(),
            det.num_states().to_string(),
            paper_d.to_owned(),
            minimized.num_states().to_string(),
            verdict.holds().to_string(),
            format!("{elapsed:.2?}"),
        ]);
    }
    println!("{table}");
}

fn table3() {
    let mut table = Table::new(
        "Table 3 — liveness model checking (2 threads, 1 variable)",
        ["TM algorithm", "OF", "LF", "WF", "loop (OF or LF counterexample)"],
    );
    for name in table3_names() {
        let of = table3_check(name, LivenessProperty::ObstructionFreedom);
        let lf = table3_check(name, LivenessProperty::LivelockFreedom);
        let wf = table3_check(name, LivenessProperty::WaitFreedom);
        let lasso = of
            .counterexample()
            .or(lf.counterexample())
            .map(|l| l.cycle_notation())
            .unwrap_or_default();
        table.push_row([
            name.to_owned(),
            yn(of.holds()),
            yn(lf.holds()),
            yn(wf.holds()),
            lasso,
        ]);
    }
    println!("{table}");
    println!("paper: seq N/N, 2PL N/N, dstm+aggressive Y/N, TL2+polite N/N; WF all N");
}

fn yn(b: bool) -> String {
    if b { "Y".to_owned() } else { "N".to_owned() }
}

/// Best-of-`runs` wall-clock time of `f`.
fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .min()
        .expect("runs > 0")
}

/// Times the seed (label-hashing) inclusion check against the index-based
/// one on every Table 2 TM/property pair; the measurements become the
/// `cases` section of `BENCH_inclusion.json` — the committed baseline for
/// the interned-alphabet refactor.
fn bench_inclusion_baseline() -> Vec<String> {
    let mut cases = Vec::new();
    let mut table = Table::new(
        "Inclusion A/B — seed (label-hashing) vs compiled (letter ids), best of 3",
        ["TM", "property", "seed", "compiled", "precompiled", "speedup"],
    );
    // The roster depends only on the instance size, not the property.
    let roster = table2_roster();
    for property in SafetyProperty::all() {
        let (spec, _) = DetSpec::new(property, 2, 2).to_dfa(MAX_STATES);
        let compiled = spec.compile();
        for (name, nfa, _) in &roster {
            // One untimed run (the cheap precompiled path) to record the
            // explored product size; the timed runs recompute it anyway.
            let product_states = check_inclusion_compiled(nfa, &compiled).product_states();
            let seed = best_of(3, || check_inclusion_reference(nfa, &spec));
            let fast = best_of(3, || check_inclusion(nfa, &spec));
            let precompiled = best_of(3, || check_inclusion_compiled(nfa, &compiled));
            let speedup = seed.as_secs_f64() / fast.as_secs_f64();
            table.push_row([
                name.clone(),
                property.short_name().to_owned(),
                format!("{seed:.2?}"),
                format!("{fast:.2?}"),
                format!("{precompiled:.2?}"),
                format!("{speedup:.2}x"),
            ]);
            cases.push(format!(
                concat!(
                    "    {{\"tm\": \"{}\", \"property\": \"{}\", ",
                    "\"tm_states\": {}, \"spec_states\": {}, \"product_states\": {}, ",
                    "\"seed_ns\": {}, \"compiled_ns\": {}, \"precompiled_ns\": {}, ",
                    "\"speedup\": {:.3}}}"
                ),
                name,
                property.short_name(),
                nfa.num_states(),
                spec.num_states(),
                product_states,
                seed.as_nanos(),
                fast.as_nanos(),
                precompiled.as_nanos(),
                speedup,
            ));
        }
    }
    println!("{table}");
    cases
}

/// Preferred thread count of the parallel-engine measurements; clamped
/// to the host's parallelism by [`par_threads`] so the recorded numbers
/// never measure oversubscription.
const PAR_THREADS: usize = 4;

/// The thread count actually measured: `None` on hosts without real
/// parallelism (a 4-threads-on-1-cpu "speedup" would only document
/// scheduler thrash; regenerate on a multi-core host to record one).
fn par_threads() -> Option<usize> {
    let cpus = host_cpus();
    (cpus >= 2).then(|| PAR_THREADS.min(cpus))
}

/// Scaling rows for the on-the-fly product engine: 2PL (and DSTM where
/// the product stays tractable) against π_ss at (2,2) → (4,2). The
/// (3,3)/(4,2) rows only exist on the fully lazy engine — eagerly
/// determinizing those specifications does not terminate in reasonable
/// time — which is exactly the point of on-the-fly exploration.
fn bench_otf_scaling() -> Vec<String> {
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!(
            "Scaling — on-the-fly product engine, π_ss (host: {} cpus; par = {})",
            host_cpus(),
            par_threads().map_or("skipped (single-cpu host)".to_owned(), |t| {
                format!("{t} threads")
            })
        ),
        [
            "TM", "(n,k)", "product", "TM states", "lazy", "seq", "par", "speedup",
        ],
    );
    // (n, k, eager spec buildable, heavy → single timed run)
    for (n, k, eager, heavy) in [
        (2usize, 2usize, true, false),
        (3, 2, true, true),
        (3, 3, false, true),
        (4, 2, false, true),
    ] {
        let det = DetSpec::new(SafetyProperty::StrictSerializability, n, k);
        let letters = spec_alphabet(n, k);
        let alphabet = Alphabet::from_letters(&letters);
        let compiled = eager.then(|| det.to_dfa(MAX_STATES).0.compile());
        let runs = if heavy { 1 } else { 3 };

        let mut measure = |tm: &dyn ErasedTm, name: &str| {
            let lazy_spec = DtsSpecSource::new(&det, letters.clone());
            let (lazy, product, impl_states) = tm.time_lazy(&alphabet, &lazy_spec, runs);
            let seq = compiled
                .as_ref()
                .map(|spec| tm.time_compiled(&alphabet, spec, 1, runs).0);
            let par = match (compiled.as_ref(), par_threads()) {
                (Some(spec), Some(threads)) => {
                    Some(tm.time_compiled(&alphabet, spec, threads, runs).0)
                }
                _ => None,
            };
            let speedup = match (seq, par) {
                (Some(s), Some(p)) => format!("{:.2}x", s.as_secs_f64() / p.as_secs_f64()),
                _ => String::new(),
            };
            table.push_row([
                name.to_owned(),
                format!("({n},{k})"),
                product.to_string(),
                impl_states.to_string(),
                format!("{lazy:.2?}"),
                seq.map_or(String::new(), |d| format!("{d:.2?}")),
                par.map_or(String::new(), |d| format!("{d:.2?}")),
                speedup,
            ]);
            rows.push(format!(
                concat!(
                    "    {{\"tm\": \"{}\", \"property\": \"ss\", ",
                    "\"threads\": {}, \"vars\": {}, ",
                    "\"product_states\": {}, \"impl_states\": {}, ",
                    "\"lazy_ns\": {}, \"seq_ns\": {}, \"par_ns\": {}, ",
                    "\"par_threads\": {}}}"
                ),
                name,
                n,
                k,
                product,
                impl_states,
                lazy.as_nanos(),
                seq.map_or("null".to_owned(), |d| d.as_nanos().to_string()),
                par.map_or("null".to_owned(), |d| d.as_nanos().to_string()),
                par_threads().map_or("null".to_owned(), |t| t.to_string()),
            ));
        };

        measure(&TwoPhaseTm::new(n, k), "2PL");
        if (n, k) == (2, 2) || (n, k) == (3, 2) {
            measure(&DstmTm::new(n, k), "dstm");
        }
    }
    println!("{table}");
    rows
}

/// Object-safe timing shim over concrete TM types.
trait ErasedTm {
    /// Best-of-`runs` lazy (both sides on the fly) check; returns the
    /// wall time plus product/impl state counts.
    fn time_lazy(
        &self,
        alphabet: &Alphabet<tm_lang::Statement>,
        spec: &DtsSpecSource<'_, DetSpec>,
        runs: usize,
    ) -> (Duration, usize, usize);

    /// Best-of-`runs` check against a compiled specification with the
    /// given thread count.
    fn time_compiled(
        &self,
        alphabet: &Alphabet<tm_lang::Statement>,
        spec: &tm_automata::CompiledDfa<tm_lang::Statement>,
        threads: usize,
        runs: usize,
    ) -> (Duration, usize, usize);
}

impl<A> ErasedTm for A
where
    A: TmAlgorithm + Sync,
    A::State: Send + Sync,
{
    fn time_lazy(
        &self,
        alphabet: &Alphabet<tm_lang::Statement>,
        spec: &DtsSpecSource<'_, DetSpec>,
        runs: usize,
    ) -> (Duration, usize, usize) {
        let source = MostGeneralSource::new(self, alphabet.clone());
        let mut counts = (0, 0);
        let best = best_of(runs.max(1), || {
            let (result, stats) = check_inclusion_otf_lazy(&source, spec);
            counts = (result.product_states(), stats.impl_states);
        });
        (best, counts.0, counts.1)
    }

    fn time_compiled(
        &self,
        alphabet: &Alphabet<tm_lang::Statement>,
        spec: &tm_automata::CompiledDfa<tm_lang::Statement>,
        threads: usize,
        runs: usize,
    ) -> (Duration, usize, usize) {
        let source = MostGeneralSource::new(self, alphabet.clone());
        let mut counts = (0, 0);
        let best = best_of(runs.max(1), || {
            let (result, stats) = check_inclusion_otf_stats(&source, spec, threads);
            counts = (result.product_states(), stats.impl_states);
        });
        (best, counts.0, counts.1)
    }
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Times the compiled liveness engine against the seed reference checker
/// on the full TM × contention-manager roster at the paper's (2, 1)
/// liveness instance; the rows become the `cases` section of
/// `BENCH_liveness.json` (the acceptance record that the engine is
/// measurably faster than the reference).
fn bench_liveness_baseline() -> (Vec<String>, f64) {
    let mut cases = Vec::new();
    let mut table = Table::new(
        "Liveness A/B — seed (cloned subgraphs) vs engine (masked CSR), (2,1), best of 3",
        ["TM", "property", "verdict", "states", "reference", "engine", "speedup"],
    );
    let (mut total_reference, mut total_engine) = (Duration::ZERO, Duration::ZERO);
    for case in liveness_roster(2, 1) {
        for property in LivenessProperty::all() {
            let mut verdict = None;
            let engine = best_of(3, || {
                verdict = Some(case.check(property, 1));
            });
            let reference = best_of(3, || case.check_reference(property));
            let verdict = verdict.expect("measured at least once");
            total_reference += reference;
            total_engine += engine;
            let speedup = reference.as_secs_f64() / engine.as_secs_f64();
            table.push_row([
                case.name.clone(),
                liveness_property_tag(property).to_owned(),
                yn(verdict.holds()),
                verdict.tm_states.to_string(),
                format!("{reference:.2?}"),
                format!("{engine:.2?}"),
                format!("{speedup:.2}x"),
            ]);
            cases.push(format!(
                concat!(
                    "    {{\"tm\": \"{}\", \"property\": \"{}\", ",
                    "\"tm_states\": {}, \"holds\": {}, ",
                    "\"reference_ns\": {}, \"engine_ns\": {}, \"speedup\": {:.3}}}"
                ),
                case.name,
                liveness_property_tag(property),
                verdict.tm_states,
                verdict.holds(),
                reference.as_nanos(),
                engine.as_nanos(),
                speedup,
            ));
        }
    }
    println!("{table}");
    let overall = total_reference.as_secs_f64() / total_engine.as_secs_f64();
    println!("overall (2,1) engine speedup: {overall:.2}x\n");
    (cases, overall)
}

/// Scaling rows for the liveness engine: the full TM × manager roster at
/// (3, 1), (2, 2) and (3, 2) — instances the cloned-subgraph reference
/// was never run at. Engine only, single timed run, worker pool of
/// [`tm_automata::modelcheck_threads`].
fn bench_liveness_scaling() -> Vec<String> {
    let pool = tm_automata::modelcheck_threads();
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!("Liveness scaling — compiled engine, pool = {pool} threads"),
        ["TM", "(n,k)", "property", "verdict", "states", "time"],
    );
    for (n, k) in [(3usize, 1usize), (2, 2), (3, 2)] {
        for case in liveness_roster(n, k) {
            for property in LivenessProperty::all() {
                let start = Instant::now();
                let verdict = case.check(property, pool);
                let elapsed = start.elapsed();
                table.push_row([
                    case.name.clone(),
                    format!("({n},{k})"),
                    liveness_property_tag(property).to_owned(),
                    yn(verdict.holds()),
                    verdict.tm_states.to_string(),
                    format!("{elapsed:.2?}"),
                ]);
                rows.push(format!(
                    concat!(
                        "    {{\"tm\": \"{}\", \"threads\": {}, \"vars\": {}, ",
                        "\"property\": \"{}\", \"tm_states\": {}, \"holds\": {}, ",
                        "\"engine_ns\": {}, \"pool_threads\": {}}}"
                    ),
                    case.name,
                    n,
                    k,
                    liveness_property_tag(property),
                    verdict.tm_states,
                    verdict.holds(),
                    elapsed.as_nanos(),
                    pool,
                ));
            }
        }
    }
    println!("{table}");
    rows
}

/// Writes `BENCH_liveness.json`: the (2,1) engine-vs-reference baseline
/// (with the aggregate speedup over the full roster) plus the liveness
/// scaling rows.
fn write_liveness_json(cases: &[String], overall_speedup: f64, scaling: &[String]) {
    let json = format!(
        "{{\n  \"benchmark\": \"liveness-engine-vs-reference\",\n  \
         \"instance\": {{\"threads\": 2, \"vars\": 1}},\n  \
         \"unit\": \"best-of-3 wall clock; engine = masked-CSR passes at pool size 1, \
         reference = cloned filtered subgraphs\",\n  \
         \"host_cpus\": {},\n  \"overall_speedup\": {:.3},\n  \"cases\": [\n{}\n  ],\n  \
         \"scaling_unit\": \"single-run wall clock, engine only, pool_threads workers\",\n  \
         \"scaling\": [\n{}\n  ]\n}}\n",
        host_cpus(),
        overall_speedup,
        cases.join(",\n"),
        scaling.join(",\n")
    );
    match std::fs::write("BENCH_liveness.json", &json) {
        Ok(()) => println!("wrote BENCH_liveness.json"),
        Err(e) => eprintln!("could not write BENCH_liveness.json: {e}"),
    }
}

/// Writes `BENCH_inclusion.json`: the (2,2) seed-vs-compiled baseline
/// plus the on-the-fly scaling rows.
fn write_bench_json(cases: &[String], scaling: &[String]) {
    let json = format!(
        "{{\n  \"benchmark\": \"inclusion-seed-vs-compiled\",\n  \
         \"instance\": {{\"threads\": 2, \"vars\": 2}},\n  \
         \"unit\": \"best-of-3 wall clock\",\n  \"cases\": [\n{}\n  ],\n  \
         \"scaling_unit\": \"best wall clock; lazy = both sides on the fly, \
         seq/par = compiled spec, par_threads threads\",\n  \
         \"host_cpus\": {},\n  \"scaling\": [\n{}\n  ]\n}}\n",
        cases.join(",\n"),
        host_cpus(),
        scaling.join(",\n")
    );
    match std::fs::write("BENCH_inclusion.json", &json) {
        Ok(()) => println!("wrote BENCH_inclusion.json"),
        Err(e) => eprintln!("could not write BENCH_inclusion.json: {e}"),
    }
}
