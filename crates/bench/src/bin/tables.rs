//! Regenerates every table of the paper in one run, printing measured
//! numbers next to the paper's. Used to fill EXPERIMENTS.md.
//!
//! ```bash
//! cargo run --release -p tm-bench --bin tables
//! ```
//!
//! All verdict-producing sections run through [`tm_checker::Verifier`]
//! sessions — one per instance size — so every compiled artifact (the
//! deterministic specifications of Table 2, the run graph of each
//! Table 3 TM) is **built exactly once per (n, k)**; the binary asserts
//! this on the sessions' build counters. Verdicts, counterexamples, and
//! lassos are identical to the one-shot entry points at every
//! `TM_MODELCHECK_THREADS` setting (the sessions' determinism contract).
//!
//! Environment gates:
//!
//! * `TM_BENCH_LIVENESS_ONLY=1` — regenerate only the liveness sections
//!   (and `BENCH_liveness.json`); the safety tables and inclusion benches
//!   dominate a full run.
//! * `TM_BENCH_SMOKE=1` — CI mode: the paper tables and the build-once
//!   assertions only; no A/B measurements, no `BENCH_*.json` rewrites.
//! * `TM_BENCH_SERVICE_ONLY=1` — regenerate only the tm-service batch
//!   baseline (`BENCH_service.json`).
//!
//! Perf trajectory (`TM_BENCH_TREND`): every `BENCH_*.json` carries a
//! `history` array of timestamped headline records (host cpus, pool
//! size, the section's headline numbers), preserved verbatim across
//! regenerations. `TM_BENCH_TREND=record` appends this run's record;
//! `TM_BENCH_TREND=check` appends **and** compares it against the
//! previous record, exiting nonzero when a headline metric is worse by
//! more than `TM_BENCH_TREND_TOLERANCE` (a fraction; default
//! [`DEFAULT_TREND_TOLERANCE`] — generous, because CI records and
//! checks across unrelated 1-cpu hosts). Unset, the run rewrites the
//! measurement sections but leaves `history` untouched.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use tm_algorithms::{MostGeneralSource, Tl2Tm, TmAlgorithm, TwoPhaseTm};
use tm_automata::{
    check_equivalence_antichain, check_inclusion, check_inclusion_compiled,
    check_inclusion_otf_executor, check_inclusion_otf_lazy, check_inclusion_reference, Dfa,
    DtsSpecSource, Executor, WorkerPool,
};
use tm_bench::{
    liveness_property_tag, liveness_roster, table2_cases, table2_roster, table3_check_session,
    table3_names, MAX_STATES,
};
use tm_checker::{SpecMode, Table, Verifier};
use tm_lang::{LivenessProperty, SafetyProperty};
use tm_spec::{spec_alphabet, DetSpec, NondetSpec};

fn env_flag(name: &str) -> bool {
    std::env::var(name).as_deref() == Ok("1")
}

/// Default `TM_BENCH_TREND_TOLERANCE`: a metric may be up to 150% worse
/// than the previous history record before `check` mode fails. Wide on
/// purpose — the committed baseline and the CI checker are unrelated
/// hosts — while still catching order-of-magnitude regressions.
const DEFAULT_TREND_TOLERANCE: f64 = 1.5;

/// How many previous history records a regeneration keeps (plus the one
/// it may append), so the trajectory files stay reviewable.
const TREND_HISTORY_KEEP: usize = 30;

/// Set once any `check`-mode comparison regresses; `main` turns it into
/// a nonzero exit after every requested section has reported.
static TREND_REGRESSED: AtomicBool = AtomicBool::new(false);

#[derive(Clone, Copy, PartialEq)]
enum TrendMode {
    Off,
    Record,
    Check,
}

fn trend_mode() -> TrendMode {
    match std::env::var("TM_BENCH_TREND").as_deref() {
        Ok("record") => TrendMode::Record,
        Ok("check") => TrendMode::Check,
        _ => TrendMode::Off,
    }
}

/// A headline number of one bench section, trended across runs.
struct Metric {
    name: &'static str,
    value: f64,
    /// Direction: wall-clock metrics regress upward, throughput
    /// metrics regress downward.
    lower_is_better: bool,
}

impl Metric {
    fn nanos(name: &'static str, d: Duration) -> Metric {
        Metric { name, value: d.as_nanos() as f64, lower_is_better: true }
    }

    fn rate(name: &'static str, value: f64) -> Metric {
        Metric { name, value, lower_is_better: false }
    }
}

fn exit_if_regressed() {
    if TREND_REGRESSED.load(Ordering::Relaxed) {
        eprintln!("TM_BENCH_TREND=check: headline metrics regressed beyond tolerance");
        std::process::exit(1);
    }
}

fn main() {
    let liveness_only = env_flag("TM_BENCH_LIVENESS_ONLY");
    let smoke = env_flag("TM_BENCH_SMOKE");
    if env_flag("TM_BENCH_SERVICE_ONLY") {
        bench_service();
        exit_if_regressed();
        return;
    }
    if !liveness_only {
        table1();
        table2();
        theorem3();
        if !smoke {
            let (baseline, compiled_total) = bench_inclusion_baseline();
            let (scaling, lazy_total) = bench_otf_scaling();
            let (pool_vs_scoped, pool_total) = bench_pool_vs_scoped();
            let phases = bench_safety_phases();
            write_bench_json(
                &baseline,
                &scaling,
                &pool_vs_scoped,
                &phases,
                &[
                    Metric::nanos("inclusion_compiled_total_ns", compiled_total),
                    Metric::nanos("scaling_lazy_total_ns", lazy_total),
                    Metric::nanos("pool_dispatch_total_ns", pool_total),
                ],
            );
        }
    }

    // Liveness: everything below shares one session per (n, k), so each
    // TM's run graph is compiled exactly once per instance size.
    let mut session21 = Verifier::new(2, 1);
    table3(&mut session21);
    assert_eq!(
        session21.run_graph_builds(),
        4,
        "Table 3 must build each of its four run graphs exactly once"
    );
    if smoke {
        // CI smoke: pin the build-once contract on the full roster at the
        // next instance size, then stop (no JSON rewrites).
        let _ = bench_liveness_session(&[(3, 1)]);
        println!("smoke mode: A/B benches and BENCH json regeneration skipped");
        return;
    }
    let (liveness_cases, liveness_speedup, liveness_phases, liveness_total) =
        bench_liveness_baseline(&mut session21);
    assert_eq!(
        session21.run_graph_builds(),
        12,
        "the (2,1) session must build each roster run graph exactly once"
    );
    let session_rows = bench_liveness_session(&[(3, 1), (2, 2), (3, 2)]);
    write_liveness_json(
        &liveness_cases,
        liveness_speedup,
        &session_rows,
        &liveness_phases,
        &[
            Metric::nanos("session_total_ns", liveness_total),
            Metric::rate("overall_speedup", liveness_speedup),
        ],
    );
    if !liveness_only {
        bench_service();
    }
    exit_if_regressed();
}

fn table1() {
    // Table 1 rows are reproduced programmatically (and asserted) in
    // `examples/table1_runs.rs` / `tests/table1_and_figures.rs`; here we
    // only point at them to keep this binary focused on measurements.
    println!("Table 1: see `cargo run --release --example table1_runs`\n");
}

/// Table 2 through one eager (2, 2) session: each property's
/// specification is determinized and compiled once, shared by all five
/// TMs; the product BFS runs on the session's worker pool. The "states"
/// column still comes from the materialized most-general NFAs (the
/// paper's full "Size" figure — the on-the-fly check would stop early on
/// the violating TM).
fn table2() {
    let mut verifier = Verifier::new(2, 2)
        .spec_mode(SpecMode::Eager)
        .max_states(MAX_STATES);
    let cases = table2_cases();
    let roster = table2_roster();
    for property in SafetyProperty::all() {
        let mut rows = Vec::new();
        let mut spec_states = 0;
        let mut spec_time = Duration::ZERO;
        for (case, (name, nfa, paper_states)) in cases.iter().zip(&roster) {
            let verdict = case.check_session(&mut verifier, property);
            if !verdict.stats.artifact_cached {
                spec_time = verdict.stats.build_time;
            }
            let check_time = verdict.stats.search_time;
            let safety = verdict.as_safety().expect("safety query");
            spec_states = safety.spec_states;
            let (verdict, cx) = match safety.counterexample() {
                None => ("Y".to_owned(), String::new()),
                Some(w) => ("N".to_owned(), w.to_string()),
            };
            rows.push([
                name.clone(),
                nfa.num_states().to_string(),
                paper_states.to_string(),
                verdict,
                format!("{check_time:.2?}"),
                cx,
            ]);
        }
        let mut table = Table::new(
            format!(
                "Table 2 — L(A) ⊆ L(Σᵈ_{}) (spec: {} states, built in {:.2?})",
                property.short_name(),
                spec_states,
                spec_time
            ),
            ["TM", "states", "paper", "verdict", "time", "counterexample"],
        );
        for row in rows {
            table.push_row(row);
        }
        println!("{table}");
    }
    assert_eq!(
        verifier.spec_builds(),
        SafetyProperty::all().len(),
        "Table 2 must build each specification exactly once"
    );
}

fn theorem3() {
    let mut table = Table::new(
        "Theorem 3 — L(Σ) = L(Σᵈ) via antichains (2 threads, 2 variables)",
        [
            "property",
            "nondet states",
            "paper",
            "det states",
            "paper",
            "minimized",
            "equivalent",
            "time",
        ],
    );
    for property in SafetyProperty::all() {
        let nondet = NondetSpec::new(property, 2, 2).to_nfa(MAX_STATES);
        let (det, _) = DetSpec::new(property, 2, 2).to_dfa(MAX_STATES);
        let minimized = Dfa::determinize(&nondet.nfa, spec_alphabet(2, 2)).minimize();
        let start = Instant::now();
        let verdict = check_equivalence_antichain(&nondet.nfa, &det.to_nfa());
        let elapsed = start.elapsed();
        let (paper_nd, paper_d) = match property {
            SafetyProperty::StrictSerializability => ("12345", "3520"),
            SafetyProperty::Opacity => ("9202", "2272"),
        };
        table.push_row([
            property.short_name().to_owned(),
            nondet.num_states().to_string(),
            paper_nd.to_owned(),
            det.num_states().to_string(),
            paper_d.to_owned(),
            minimized.num_states().to_string(),
            verdict.holds().to_string(),
            format!("{elapsed:.2?}"),
        ]);
    }
    println!("{table}");
}

/// Table 3 through the shared (2, 1) session: each TM's run graph is
/// compiled on its OF query and answers LF and WF from cache.
fn table3(verifier: &mut Verifier) {
    let mut table = Table::new(
        "Table 3 — liveness model checking (2 threads, 1 variable)",
        ["TM algorithm", "OF", "LF", "WF", "loop (OF or LF counterexample)"],
    );
    for name in table3_names() {
        let of = table3_check_session(verifier, name, LivenessProperty::ObstructionFreedom);
        let lf = table3_check_session(verifier, name, LivenessProperty::LivelockFreedom);
        let wf = table3_check_session(verifier, name, LivenessProperty::WaitFreedom);
        let lasso = of
            .counterexample()
            .or(lf.counterexample())
            .map(|l| l.cycle_notation())
            .unwrap_or_default();
        table.push_row([
            name.to_owned(),
            yn(of.holds()),
            yn(lf.holds()),
            yn(wf.holds()),
            lasso,
        ]);
    }
    println!("{table}");
    println!("paper: seq N/N, 2PL N/N, dstm+aggressive Y/N, TL2+polite N/N; WF all N");
}

fn yn(b: bool) -> String {
    if b { "Y".to_owned() } else { "N".to_owned() }
}

/// Best-of-`runs` wall-clock time of `f`.
fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .min()
        .expect("runs > 0")
}

/// Times the seed (label-hashing) inclusion check against the index-based
/// one on every Table 2 TM/property pair; the measurements become the
/// `cases` section of `BENCH_inclusion.json` — the committed baseline for
/// the interned-alphabet refactor.
fn bench_inclusion_baseline() -> (Vec<String>, Duration) {
    let mut cases = Vec::new();
    let mut compiled_total = Duration::ZERO;
    let mut table = Table::new(
        "Inclusion A/B — seed (label-hashing) vs compiled (letter ids), best of 3",
        ["TM", "property", "seed", "compiled", "precompiled", "speedup"],
    );
    // The roster depends only on the instance size, not the property.
    let roster = table2_roster();
    for property in SafetyProperty::all() {
        let (spec, _) = DetSpec::new(property, 2, 2).to_dfa(MAX_STATES);
        let compiled = spec.compile();
        for (name, nfa, _) in &roster {
            // One untimed run (the cheap precompiled path) to record the
            // explored product size; the timed runs recompute it anyway.
            let product_states = check_inclusion_compiled(nfa, &compiled).product_states();
            let seed = best_of(3, || check_inclusion_reference(nfa, &spec));
            let fast = best_of(3, || check_inclusion(nfa, &spec));
            let precompiled = best_of(3, || check_inclusion_compiled(nfa, &compiled));
            compiled_total += fast;
            let speedup = seed.as_secs_f64() / fast.as_secs_f64();
            table.push_row([
                name.clone(),
                property.short_name().to_owned(),
                format!("{seed:.2?}"),
                format!("{fast:.2?}"),
                format!("{precompiled:.2?}"),
                format!("{speedup:.2}x"),
            ]);
            cases.push(format!(
                concat!(
                    "    {{\"tm\": \"{}\", \"property\": \"{}\", ",
                    "\"tm_states\": {}, \"spec_states\": {}, \"product_states\": {}, ",
                    "\"seed_ns\": {}, \"compiled_ns\": {}, \"precompiled_ns\": {}, ",
                    "\"speedup\": {:.3}}}"
                ),
                name,
                property.short_name(),
                nfa.num_states(),
                spec.num_states(),
                product_states,
                seed.as_nanos(),
                fast.as_nanos(),
                precompiled.as_nanos(),
                speedup,
            ));
        }
    }
    println!("{table}");
    (cases, compiled_total)
}

/// Preferred thread count of the parallel-engine measurements; clamped
/// to the host's parallelism by [`par_threads`] so the recorded numbers
/// never measure oversubscription.
const PAR_THREADS: usize = 4;

/// The thread count actually measured: `None` on hosts without real
/// parallelism (a 4-threads-on-1-cpu "speedup" would only document
/// scheduler thrash; regenerate on a multi-core host to record one).
fn par_threads() -> Option<usize> {
    let cpus = host_cpus();
    (cpus >= 2).then(|| PAR_THREADS.min(cpus))
}

/// Scaling rows for the on-the-fly product engine: 2PL (and DSTM where
/// the product stays tractable) against π_ss at (2,2) → (4,2). The
/// (3,3)/(4,2) rows only exist on the fully lazy engine — eagerly
/// determinizing those specifications does not terminate in reasonable
/// time — which is exactly the point of on-the-fly exploration.
fn bench_otf_scaling() -> (Vec<String>, Duration) {
    let mut rows = Vec::new();
    let mut lazy_total = Duration::ZERO;
    let mut table = Table::new(
        format!(
            "Scaling — on-the-fly product engine, π_ss (host: {} cpus; par = {})",
            host_cpus(),
            par_threads().map_or("skipped (single-cpu host)".to_owned(), |t| {
                format!("{t} threads")
            })
        ),
        [
            "TM", "(n,k)", "product", "TM states", "lazy", "seq", "par", "speedup",
        ],
    );
    // (n, k, eager spec buildable, heavy → single timed run)
    for (n, k, eager, heavy) in [
        (2usize, 2usize, true, false),
        (3, 2, true, true),
        (3, 3, false, true),
        (4, 2, false, true),
    ] {
        let det = DetSpec::new(SafetyProperty::StrictSerializability, n, k);
        let letters = spec_alphabet(n, k);
        let alphabet = tm_automata::Alphabet::from_letters(&letters);
        let compiled = eager.then(|| det.to_dfa(MAX_STATES).0.compile());
        let runs = if heavy { 1 } else { 3 };

        let mut measure = |tm: &dyn ErasedTm, name: &str| {
            let lazy_spec = DtsSpecSource::new(&det, letters.clone());
            let (lazy, product, impl_states) = tm.time_lazy(&alphabet, &lazy_spec, runs);
            lazy_total += lazy;
            let seq = compiled
                .as_ref()
                .map(|spec| tm.time_compiled(&alphabet, spec, 1, runs).0);
            let par = match (compiled.as_ref(), par_threads()) {
                (Some(spec), Some(threads)) => {
                    Some(tm.time_compiled(&alphabet, spec, threads, runs).0)
                }
                _ => None,
            };
            let speedup = match (seq, par) {
                (Some(s), Some(p)) => format!("{:.2}x", s.as_secs_f64() / p.as_secs_f64()),
                _ => String::new(),
            };
            table.push_row([
                name.to_owned(),
                format!("({n},{k})"),
                product.to_string(),
                impl_states.to_string(),
                format!("{lazy:.2?}"),
                seq.map_or(String::new(), |d| format!("{d:.2?}")),
                par.map_or(String::new(), |d| format!("{d:.2?}")),
                speedup,
            ]);
            rows.push(format!(
                concat!(
                    "    {{\"tm\": \"{}\", \"property\": \"ss\", ",
                    "\"threads\": {}, \"vars\": {}, ",
                    "\"product_states\": {}, \"impl_states\": {}, ",
                    "\"lazy_ns\": {}, \"seq_ns\": {}, \"par_ns\": {}, ",
                    "\"par_threads\": {}}}"
                ),
                name,
                n,
                k,
                product,
                impl_states,
                lazy.as_nanos(),
                seq.map_or("null".to_owned(), |d| d.as_nanos().to_string()),
                par.map_or("null".to_owned(), |d| d.as_nanos().to_string()),
                par_threads().map_or("null".to_owned(), |t| t.to_string()),
            ));
        };

        measure(&TwoPhaseTm::new(n, k), "2PL");
        if (n, k) == (2, 2) || (n, k) == (3, 2) {
            measure(&tm_algorithms::DstmTm::new(n, k), "dstm");
        }
    }
    println!("{table}");
    (rows, lazy_total)
}

/// Dispatch-overhead A/B for the parallel product engine: the same
/// level-synchronous BFS once with fresh scoped threads per region (the
/// pre-session behavior) and once on a persistent [`WorkerPool`] — the
/// `pool_vs_scoped` section of `BENCH_inclusion.json`. On a single-cpu
/// host the absolute times measure dispatch overhead, not speedup
/// (`host_cpus` is recorded alongside).
fn bench_pool_vs_scoped() -> (Vec<String>, Duration) {
    let mut rows = Vec::new();
    let mut pool_total = Duration::ZERO;
    let mut table = Table::new(
        format!(
            "Pool vs scoped — parallel product engine dispatch (host: {} cpus)",
            host_cpus()
        ),
        ["TM", "(n,k)", "workers", "scoped", "pool", "scoped/pool"],
    );
    let mut measure = |tm: &dyn ErasedTm,
                       name: &str,
                       n: usize,
                       k: usize,
                       runs: usize,
                       worker_counts: &[usize]| {
        let det = DetSpec::new(SafetyProperty::StrictSerializability, n, k);
        let spec = det.to_dfa(MAX_STATES).0.compile();
        let alphabet = spec.alphabet().clone();
        for &workers in worker_counts {
            let scoped = tm.time_executor(&alphabet, &spec, &Executor::Scoped { threads: workers }, runs);
            let pool = WorkerPool::new(workers);
            let pooled = tm.time_executor(&alphabet, &spec, &Executor::Pool(&pool), runs);
            pool_total += pooled;
            let ratio = scoped.as_secs_f64() / pooled.as_secs_f64();
            table.push_row([
                name.to_owned(),
                format!("({n},{k})"),
                workers.to_string(),
                format!("{scoped:.2?}"),
                format!("{pooled:.2?}"),
                format!("{ratio:.2}x"),
            ]);
            rows.push(format!(
                concat!(
                    "    {{\"tm\": \"{}\", \"property\": \"ss\", ",
                    "\"threads\": {}, \"vars\": {}, \"workers\": {}, ",
                    "\"scoped_ns\": {}, \"pool_ns\": {}, \"scoped_over_pool\": {:.3}}}"
                ),
                name,
                n,
                k,
                workers,
                scoped.as_nanos(),
                pooled.as_nanos(),
                ratio,
            ));
        }
    };
    // TL2 (2,2): the largest Table 2 product, with frontiers wide enough
    // to cross the engine's parallel threshold; dstm (3,2): a deep
    // multi-second product with thousands of level regions, the worst
    // case for per-level spawning (single run, two workers only — the
    // eager (3,2) spec alone costs seconds to build).
    measure(&Tl2Tm::new(2, 2), "TL2", 2, 2, 3, &[2, 4]);
    measure(&tm_algorithms::DstmTm::new(3, 2), "dstm", 3, 2, 1, &[2]);
    println!("{table}");
    (rows, pool_total)
}

/// Object-safe timing shim over concrete TM types.
trait ErasedTm {
    /// Best-of-`runs` lazy (both sides on the fly) check; returns the
    /// wall time plus product/impl state counts.
    fn time_lazy(
        &self,
        alphabet: &tm_automata::Alphabet<tm_lang::Statement>,
        spec: &DtsSpecSource<&DetSpec>,
        runs: usize,
    ) -> (Duration, usize, usize);

    /// Best-of-`runs` check against a compiled specification with the
    /// given thread count.
    fn time_compiled(
        &self,
        alphabet: &tm_automata::Alphabet<tm_lang::Statement>,
        spec: &tm_automata::CompiledDfa<tm_lang::Statement>,
        threads: usize,
        runs: usize,
    ) -> (Duration, usize, usize);

    /// Best-of-`runs` check against a compiled specification on an
    /// explicit executor.
    fn time_executor(
        &self,
        alphabet: &tm_automata::Alphabet<tm_lang::Statement>,
        spec: &tm_automata::CompiledDfa<tm_lang::Statement>,
        executor: &Executor<'_>,
        runs: usize,
    ) -> Duration;
}

impl<A> ErasedTm for A
where
    A: TmAlgorithm + Sync,
    A::State: Send + Sync,
{
    fn time_lazy(
        &self,
        alphabet: &tm_automata::Alphabet<tm_lang::Statement>,
        spec: &DtsSpecSource<&DetSpec>,
        runs: usize,
    ) -> (Duration, usize, usize) {
        let source = MostGeneralSource::new(self, alphabet.clone());
        let mut counts = (0, 0);
        let best = best_of(runs.max(1), || {
            let (result, stats) =
                check_inclusion_otf_lazy(&source, spec).expect("bench query within bounds");
            counts = (result.product_states(), stats.impl_states);
        });
        (best, counts.0, counts.1)
    }

    fn time_compiled(
        &self,
        alphabet: &tm_automata::Alphabet<tm_lang::Statement>,
        spec: &tm_automata::CompiledDfa<tm_lang::Statement>,
        threads: usize,
        runs: usize,
    ) -> (Duration, usize, usize) {
        let source = MostGeneralSource::new(self, alphabet.clone());
        let mut counts = (0, 0);
        let best = best_of(runs.max(1), || {
            let (result, stats) = tm_automata::check_inclusion_otf_stats(&source, spec, threads)
                .expect("bench query within bounds");
            counts = (result.product_states(), stats.impl_states);
        });
        (best, counts.0, counts.1)
    }

    fn time_executor(
        &self,
        alphabet: &tm_automata::Alphabet<tm_lang::Statement>,
        spec: &tm_automata::CompiledDfa<tm_lang::Statement>,
        executor: &Executor<'_>,
        runs: usize,
    ) -> Duration {
        let source = MostGeneralSource::new(self, alphabet.clone());
        best_of(runs.max(1), || {
            check_inclusion_otf_executor(&source, spec, executor, usize::MAX)
        })
    }
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The previous `history` records of a `BENCH_*.json`, spliced out
/// textually (one record per line, exactly as this binary writes them)
/// so regenerations preserve the recorded trajectory byte-for-byte.
fn previous_history(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Some(start) = text.find("\"history\": [") else {
        return Vec::new();
    };
    let tail = &text[start + "\"history\": [".len()..];
    // Records are single-line objects with no nested arrays, so the
    // first ']' closes the history array.
    let Some(end) = tail.find(']') else {
        return Vec::new();
    };
    tail[..end]
        .lines()
        .map(str::trim)
        .filter(|line| line.starts_with('{'))
        .map(|line| line.trim_end_matches(',').to_owned())
        .collect()
}

/// One history record: when the run happened, where, and the section's
/// headline numbers.
fn trend_record(metrics: &[Metric]) -> String {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let fields: Vec<String> = metrics
        .iter()
        .map(|m| {
            if m.value.fract() == 0.0 {
                format!("\"{}\": {}", m.name, m.value as u128)
            } else {
                format!("\"{}\": {:.3}", m.name, m.value)
            }
        })
        .collect();
    format!(
        "    {{\"recorded_at_unix\": {now}, \"host_cpus\": {}, \"pool_size\": {}, \
         \"metrics\": {{{}}}}}",
        host_cpus(),
        tm_automata::modelcheck_threads(),
        fields.join(", ")
    )
}

/// `check` mode: each headline metric may be worse than the previous
/// record's by at most `TM_BENCH_TREND_TOLERANCE` (a fraction of the
/// old value); anything beyond flags the run for a nonzero exit.
fn check_trend(path: &str, previous: Option<&String>, metrics: &[Metric]) {
    let tolerance = std::env::var("TM_BENCH_TREND_TOLERANCE")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(DEFAULT_TREND_TOLERANCE);
    let Some(previous) = previous else {
        println!("{path}: no history record to check against (run TM_BENCH_TREND=record first)");
        return;
    };
    let Ok(record) = tm_service::Json::parse(previous) else {
        eprintln!("{path}: unparseable history record {previous:?}");
        TREND_REGRESSED.store(true, Ordering::Relaxed);
        return;
    };
    for metric in metrics {
        let Some(old) = record
            .get("metrics")
            .and_then(|m| m.get(metric.name))
            .and_then(tm_service::Json::as_f64)
            .filter(|old| *old > 0.0)
        else {
            println!("{path}: no previous {} to check against", metric.name);
            continue;
        };
        let worse = if metric.lower_is_better {
            metric.value / old
        } else {
            old / metric.value
        };
        if worse > 1.0 + tolerance {
            eprintln!(
                "{path}: {} regressed to {worse:.2}x of the previous record, beyond the \
                 {:.0}% tolerance (was {old:.0}, now {:.0})",
                metric.name,
                tolerance * 100.0,
                metric.value
            );
            TREND_REGRESSED.store(true, Ordering::Relaxed);
        } else {
            println!(
                "{path}: {} ok at {worse:.2}x of the previous record (tolerance {:.0}%)",
                metric.name,
                tolerance * 100.0
            );
        }
    }
}

/// Appends the perf-trajectory section to a regenerated `BENCH_*.json`
/// body (the full JSON minus its closing brace) and writes the file;
/// see the module docs for the `TM_BENCH_TREND` modes.
fn write_with_history(path: &str, body: String, metrics: &[Metric]) {
    let mode = trend_mode();
    let mut records = previous_history(path);
    if records.len() > TREND_HISTORY_KEEP {
        records.drain(..records.len() - TREND_HISTORY_KEEP);
    }
    if mode == TrendMode::Check {
        check_trend(path, records.last(), metrics);
    }
    if mode != TrendMode::Off {
        records.push(trend_record(metrics));
    }
    let history = if records.is_empty() {
        "[]".to_owned()
    } else {
        format!("[\n{}\n  ]", records.join(",\n"))
    };
    let json = format!(
        "{body},\n  \"history_unit\": \"perf trajectory: one record per \
         TM_BENCH_TREND=record|check run, oldest first, last {TREND_HISTORY_KEEP} kept \
         across regenerations; metrics are this file's headline numbers, compared \
         against the latest record by TM_BENCH_TREND=check under \
         TM_BENCH_TREND_TOLERANCE (suffix _ns: lower is better; rates: higher is \
         better)\",\n  \"history\": {history}\n}}\n",
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Nonzero engine-phase totals (`QueryStats::phase_ns`) as a JSON
/// object fragment, keyed by `tm_obs::Phase` name.
fn phase_json(phase_ns: &tm_obs::PhaseNanos) -> String {
    let entries: Vec<String> = tm_obs::Phase::ALL
        .into_iter()
        .filter(|&p| phase_ns[p as usize] > 0)
        .map(|p| format!("\"{}\": {}", p.name(), phase_ns[p as usize]))
        .collect();
    format!("{{{}}}", entries.join(", "))
}

/// Per-query engine-phase breakdown of the Table 2 safety roster at
/// (2, 2) — where each query spends its time (spec interning, BFS
/// levels, dedup merges, pool dispatch vs queue wait), from
/// `QueryStats::phase_ns` through a fresh session. The `phases` section
/// of `BENCH_inclusion.json`.
fn bench_safety_phases() -> Vec<String> {
    let mut rows = Vec::new();
    let mut verifier = Verifier::new(2, 2).max_states(MAX_STATES);
    let cases = table2_cases();
    let roster = table2_roster();
    for property in SafetyProperty::all() {
        for (case, (name, _, _)) in cases.iter().zip(&roster) {
            let verdict = case.check_session(&mut verifier, property);
            rows.push(format!(
                "    {{\"tm\": \"{}\", \"property\": \"{}\", \"cached_spec\": {}, \
                 \"phase_ns\": {}}}",
                name,
                property.short_name(),
                verdict.stats.artifact_cached,
                phase_json(&verdict.stats.phase_ns)
            ));
        }
    }
    rows
}

/// The (2, 1) liveness A/B, restructured around the session: the seed
/// reference checker (one-shot: explore + cloned filtered subgraphs) vs
/// a query against the session's cached compiled run graph (search only;
/// the one-time graph build is recorded per TM alongside). The rows
/// become the `cases` section of `BENCH_liveness.json`; the per-query
/// phase breakdowns (`QueryStats::phase_ns`) its `phases` section.
fn bench_liveness_baseline(verifier: &mut Verifier) -> (Vec<String>, f64, Vec<String>, Duration) {
    let mut cases = Vec::new();
    let mut phases = Vec::new();
    let mut table = Table::new(
        "Liveness A/B — seed one-shot (cloned subgraphs) vs session query (cached CSR), (2,1), best of 3",
        ["TM", "property", "verdict", "states", "reference", "session", "graph build", "speedup"],
    );
    let (mut total_reference, mut total_session) = (Duration::ZERO, Duration::ZERO);
    let mut total_builds = Duration::ZERO;
    for case in liveness_roster(2, 1) {
        // Prime the session (builds the graph unless an earlier section
        // already did), so the timed queries measure pure search.
        let _ = case.check_session(verifier, LivenessProperty::ObstructionFreedom);
        let build = verifier
            .run_graph_build_time(&case.name)
            .expect("graph cached by the priming query");
        // Count every graph's one-time build — including the four that
        // Table 3 already paid — so the aggregate speedup is honest.
        total_builds += build;
        for property in LivenessProperty::all() {
            let mut verdict = None;
            let session = best_of(3, || {
                verdict = Some(case.check_session(verifier, property));
            });
            let reference = best_of(3, || case.check_reference(property));
            let verdict = verdict.expect("measured at least once");
            let states = verdict.stats.states_explored;
            total_reference += reference;
            total_session += session;
            let speedup = reference.as_secs_f64() / session.as_secs_f64();
            table.push_row([
                case.name.clone(),
                liveness_property_tag(property).to_owned(),
                yn(verdict.holds()),
                states.to_string(),
                format!("{reference:.2?}"),
                format!("{session:.2?}"),
                format!("{build:.2?}"),
                format!("{speedup:.2}x"),
            ]);
            cases.push(format!(
                concat!(
                    "    {{\"tm\": \"{}\", \"property\": \"{}\", ",
                    "\"tm_states\": {}, \"holds\": {}, ",
                    "\"reference_ns\": {}, \"session_ns\": {}, ",
                    "\"graph_build_ns\": {}, \"speedup\": {:.3}}}"
                ),
                case.name,
                liveness_property_tag(property),
                states,
                verdict.holds(),
                reference.as_nanos(),
                session.as_nanos(),
                build.as_nanos(),
                speedup,
            ));
            phases.push(format!(
                "    {{\"tm\": \"{}\", \"property\": \"{}\", \"phase_ns\": {}}}",
                case.name,
                liveness_property_tag(property),
                phase_json(&verdict.stats.phase_ns)
            ));
        }
    }
    println!("{table}");
    // Overall: what the full roster costs the session (all builds, paid
    // once each, plus every search) against the one-shot reference.
    let session_total = total_session + total_builds;
    let overall = total_reference.as_secs_f64() / session_total.as_secs_f64();
    println!("overall (2,1) session speedup (builds amortized): {overall:.2}x\n");
    (cases, overall, phases, session_total)
}

/// The build-once-answer-three section: the full TM × manager roster at
/// each size, one session per size — each TM pays one graph build and
/// three property searches. `oneshot_est_ns` is what three one-shot
/// checks would pay (three builds); the `speedup_est` column is the
/// session's wall-clock cut.
fn bench_liveness_session(sizes: &[(usize, usize)]) -> Vec<String> {
    let pool = tm_automata::modelcheck_threads();
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!("Liveness sessions — build once, answer OF+LF+WF (pool = {pool} threads)"),
        [
            "TM", "(n,k)", "verdicts", "states", "build", "searches", "session", "vs one-shot",
        ],
    );
    for &(n, k) in sizes {
        let mut verifier = Verifier::new(n, k);
        let roster = liveness_roster(n, k);
        let roster_len = roster.len();
        for case in roster {
            let mut searches = Duration::ZERO;
            let mut per_property = Vec::new();
            let mut verdicts = Vec::new();
            let mut states = 0;
            for property in LivenessProperty::all() {
                let verdict = case.check_session(&mut verifier, property);
                searches += verdict.stats.search_time;
                states = verdict.stats.states_explored;
                per_property.push(format!(
                    "\"{}_search_ns\": {}",
                    liveness_property_tag(property),
                    verdict.stats.search_time.as_nanos()
                ));
                verdicts.push(yn(verdict.holds()));
            }
            let build = verifier
                .run_graph_build_time(&case.name)
                .expect("graph cached by the first query");
            let session = build + searches;
            let oneshot_est = build * 3 + searches;
            let speedup = oneshot_est.as_secs_f64() / session.as_secs_f64();
            table.push_row([
                case.name.clone(),
                format!("({n},{k})"),
                verdicts.join("/"),
                states.to_string(),
                format!("{build:.2?}"),
                format!("{searches:.2?}"),
                format!("{session:.2?}"),
                format!("{speedup:.2}x"),
            ]);
            rows.push(format!(
                concat!(
                    "    {{\"tm\": \"{}\", \"threads\": {}, \"vars\": {}, ",
                    "\"tm_states\": {}, \"verdicts\": \"{}\", ",
                    "\"graph_build_ns\": {}, {}, ",
                    "\"session_ns\": {}, \"oneshot_est_ns\": {}, ",
                    "\"speedup_est\": {:.3}, \"pool_threads\": {}}}"
                ),
                case.name,
                n,
                k,
                states,
                verdicts.join("/"),
                build.as_nanos(),
                per_property.join(", "),
                session.as_nanos(),
                oneshot_est.as_nanos(),
                speedup,
                pool,
            ));
        }
        assert_eq!(
            verifier.run_graph_builds(),
            roster_len,
            "the ({n},{k}) session must build each roster run graph exactly once"
        );
    }
    println!("{table}");
    rows
}

/// The tm-service batch baseline: the full Table 2 + Table 3 roster
/// (22 queries) submitted twice — cold (every artifact builds) and warm
/// (cache hits, or rebuilds under eviction) — at an **unbounded** budget
/// and at a **tight** one (the largest artifact plus a quarter of the
/// rest: smaller than the artifact total, so the roster cannot be
/// answered without evicting). Verdicts are asserted identical across
/// budgets; throughput, hit/rebuild rates, evictions, and the peak
/// tracked bytes become `BENCH_service.json`. A persistence pass runs
/// the roster through the content-addressed artifact store: cold
/// write-through, a restarted warm-started service (zero builds), and
/// promote-instead-of-rebuild under the tight budget.
fn bench_service() {
    use tm_service::{table2_batch, table3_batch, Service, ServiceConfig};

    let mut batch = table3_batch();
    batch.extend(table2_batch());
    let pool = tm_automata::modelcheck_threads();
    let config = |mem_budget| ServiceConfig {
        mem_budget,
        pool_size: pool,
        max_states: MAX_STATES,
        ..ServiceConfig::default()
    };

    // Unbounded pass: ground-truth verdicts and the artifact ledger the
    // tight budget is derived from.
    let unbounded = Service::new(config(None));
    let start = Instant::now();
    let reference = unbounded.submit(&batch);
    let unbounded_cold = start.elapsed();
    let start = Instant::now();
    let _ = unbounded.submit(&batch);
    let unbounded_warm = start.elapsed();
    let ledger = unbounded.ledger();
    let total: usize = ledger.iter().map(|(_, bytes)| bytes).sum();
    let largest: usize = ledger.iter().map(|(_, bytes)| *bytes).max().unwrap_or(0);
    let tight = largest + (total - largest) / 4;
    assert!(tight < total, "the tight budget must force eviction");

    let budgeted = Service::new(config(Some(tight)));
    let start = Instant::now();
    let cold_results = budgeted.submit(&batch);
    let tight_cold = start.elapsed();
    let start = Instant::now();
    let warm_results = budgeted.submit(&batch);
    let tight_warm = start.elapsed();
    let stats = budgeted.stats();
    assert!(
        stats.peak_tracked_bytes <= tight,
        "peak {} exceeds the {tight}-byte budget",
        stats.peak_tracked_bytes
    );
    for (run, name) in [(&cold_results, "cold"), (&warm_results, "warm")] {
        for (a, b) in run.iter().zip(&reference) {
            assert_eq!(
                (a.holds, &a.outcome),
                (b.holds, &b.outcome),
                "budgeted {name} verdict must match unbounded: {}",
                a.spec
            );
        }
    }

    let qps = |d: Duration| batch.len() as f64 / d.as_secs_f64();
    let mut table = Table::new(
        format!(
            "Service batches — Table 2 + Table 3 roster ({} queries, pool = {pool}, \
             artifacts total {total} B, largest {largest} B)",
            batch.len()
        ),
        ["budget", "cold", "warm", "cold q/s", "builds", "rebuilds", "evictions", "peak B"],
    );
    let mut rows = Vec::new();
    for (budget, cold, warm, stats) in [
        (None, unbounded_cold, unbounded_warm, unbounded.stats()),
        (Some(tight), tight_cold, tight_warm, stats),
    ] {
        table.push_row([
            budget.map_or("unbounded".to_owned(), |b: usize| format!("{b} B")),
            format!("{cold:.2?}"),
            format!("{warm:.2?}"),
            format!("{:.1}", qps(cold)),
            stats.artifact_builds.to_string(),
            stats.artifact_rebuilds.to_string(),
            stats.evictions.to_string(),
            stats.peak_tracked_bytes.to_string(),
        ]);
        rows.push(format!(
            concat!(
                "    {{\"budget_bytes\": {}, \"cold_ns\": {}, \"warm_ns\": {}, ",
                "\"cold_qps\": {:.3}, \"warm_qps\": {:.3}, ",
                "\"artifact_builds\": {}, \"artifact_rebuilds\": {}, ",
                "\"cache_hits\": {}, \"evictions\": {}, ",
                "\"peak_tracked_bytes\": {}, \"tracked_bytes\": {}}}"
            ),
            budget.map_or("null".to_owned(), |b: usize| b.to_string()),
            cold.as_nanos(),
            warm.as_nanos(),
            qps(cold),
            qps(warm),
            stats.artifact_builds,
            stats.artifact_rebuilds,
            stats.cache_hits,
            stats.evictions,
            stats.peak_tracked_bytes,
            stats.tracked_bytes,
        ));
    }
    println!("{table}");

    // Instrumentation overhead: the same warm roster (unbounded budget,
    // every artifact cached) with phase timers and metric updates
    // enabled vs `TM_OBS=off` — the documented "near-free when
    // disabled, cheap when enabled" contract (target: ≤ 5% on-vs-off).
    // The ~97 Hz sampling profiler is measured on top of the enabled
    // run: its own overhead (push/pop of phase slots is already paid by
    // the timers; the sampler adds one reader thread) must stay within
    // the same 5% envelope.
    let obs_service = Service::new(config(None));
    let _ = obs_service.submit(&batch);
    tm_obs::set_obs_enabled(true);
    let obs_on = best_of(5, || obs_service.submit(&batch));
    tm_obs::start_sampler();
    let sampler_on = best_of(5, || obs_service.submit(&batch));
    tm_obs::stop_sampler();
    tm_obs::set_obs_enabled(false);
    let obs_off = best_of(5, || obs_service.submit(&batch));
    tm_obs::set_obs_enabled(true);
    let obs_overhead = obs_on.as_secs_f64() / obs_off.as_secs_f64() - 1.0;
    let profiler_overhead = sampler_on.as_secs_f64() / obs_on.as_secs_f64() - 1.0;
    println!(
        "Instrumentation — warm roster best of 5: obs on {obs_on:.2?}, off {obs_off:.2?} \
         ({:+.1}% overhead, target ≤ 5%); sampler running {sampler_on:.2?} \
         ({:+.1}% over obs on, target ≤ 5%)\n",
        obs_overhead * 100.0,
        profiler_overhead * 100.0
    );

    // Concurrency: the same fixed amount of warm work — 8 batch
    // submissions of the roster — pushed through one shared service by
    // 1 vs 4 in-flight submitters (the `&self` API: no global service
    // mutex, per-session locking, pinned artifacts). On a single-core
    // host the two rates are expected to tie; on multi-core hosts the
    // multi-inflight rate should not be below the single-inflight one.
    let concurrent = std::sync::Arc::new(Service::new(config(None)));
    let warm_reference = concurrent.submit(&batch);
    const TOTAL_BATCHES: usize = 8;
    let mut conc_table = Table::new(
        format!(
            "Service concurrency — {TOTAL_BATCHES} warm batch submissions of the roster, \
             shared service (pool = {pool})"
        ),
        ["inflight", "elapsed", "q/s"],
    );
    let mut conc_rows = Vec::new();
    let mut conc4_qps = 0.0;
    for inflight in [1usize, 4] {
        let per_thread = TOTAL_BATCHES / inflight;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..inflight {
                let service = std::sync::Arc::clone(&concurrent);
                let (batch, reference) = (&batch, &warm_reference);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        let results = service.submit(batch);
                        for (a, b) in results.iter().zip(reference) {
                            assert_eq!(
                                (a.holds, &a.outcome),
                                (b.holds, &b.outcome),
                                "concurrent verdict must match warm reference: {}",
                                a.spec
                            );
                        }
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        let queries = (TOTAL_BATCHES * batch.len()) as f64;
        let conc_qps = queries / elapsed.as_secs_f64();
        if inflight == 4 {
            conc4_qps = conc_qps;
        }
        conc_table.push_row([
            inflight.to_string(),
            format!("{elapsed:.2?}"),
            format!("{conc_qps:.1}"),
        ]);
        conc_rows.push(format!(
            "    {{\"inflight\": {inflight}, \"batches\": {TOTAL_BATCHES}, \
             \"elapsed_ns\": {}, \"qps\": {conc_qps:.3}}}",
            elapsed.as_nanos()
        ));
    }
    println!("{conc_table}");

    // Persistence: the same roster through the content-addressed
    // artifact store. A cold service write-throughs every build; a
    // "restarted daemon" warm-starts over the same directory and must
    // answer with zero builds; a tight-budget service over its own
    // directory demotes evictions to disk and, on re-submission,
    // promotes them back instead of rebuilding (compare its warm pass
    // against the storeless tight budget's rebuild-based one above).
    let store_dir = std::env::temp_dir().join(format!("tm-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_config = |mem_budget, dir: &std::path::Path| ServiceConfig {
        mem_budget,
        pool_size: pool,
        max_states: MAX_STATES,
        store_dir: Some(dir.to_path_buf()),
        ..ServiceConfig::default()
    };
    let cold_store = Service::try_new(store_config(None, &store_dir)).expect("store opens");
    let start = Instant::now();
    let cold_store_results = cold_store.submit(&batch);
    let store_cold = start.elapsed();
    let cold_store_stats = cold_store.stats();
    drop(cold_store);

    let start = Instant::now();
    let warm_store = Service::try_new(store_config(None, &store_dir)).expect("store opens");
    let warm_boot = start.elapsed();
    let start = Instant::now();
    let warm_store_results = warm_store.submit(&batch);
    let store_warm = start.elapsed();
    let warm_store_stats = warm_store.stats();
    assert_eq!(
        warm_store_stats.artifact_builds, 0,
        "a warm-started service answers the roster with zero builds"
    );

    let demote_dir =
        std::env::temp_dir().join(format!("tm-bench-store-demote-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&demote_dir);
    let demote_service =
        Service::try_new(store_config(Some(tight), &demote_dir)).expect("store opens");
    let _ = demote_service.submit(&batch);
    let start = Instant::now();
    let promote_results = demote_service.submit(&batch);
    let promote_warm = start.elapsed();
    let demote_stats = demote_service.stats();
    assert_eq!(
        demote_stats.artifact_rebuilds, 0,
        "with a store, every would-be rebuild is a promote"
    );
    assert!(demote_stats.store_promotes > 0, "the tight budget must promote");
    for (run, name) in [
        (&cold_store_results, "store cold"),
        (&warm_store_results, "store warm"),
        (&promote_results, "store promote"),
    ] {
        for (a, b) in run.iter().zip(&reference) {
            assert_eq!(
                (a.holds, &a.outcome),
                (b.holds, &b.outcome),
                "{name} verdict must match unbounded: {}",
                a.spec
            );
        }
    }
    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&demote_dir);

    let mut store_table = Table::new(
        format!(
            "Service persistence — same roster through the artifact store \
             ({} B on disk, {} files)",
            warm_store_stats.store_bytes, warm_store_stats.store_files
        ),
        ["pass", "elapsed", "builds", "saves", "hits", "promotes", "demotes"],
    );
    for (pass, elapsed, stats) in [
        ("cold + write-through", store_cold, &cold_store_stats),
        ("warm-started batch", store_warm, &warm_store_stats),
        ("tight budget, promote", promote_warm, &demote_stats),
    ] {
        store_table.push_row([
            pass.to_owned(),
            format!("{elapsed:.2?}"),
            stats.artifact_builds.to_string(),
            stats.store_saves.to_string(),
            stats.store_hits.to_string(),
            stats.store_promotes.to_string(),
            stats.store_demotes.to_string(),
        ]);
    }
    println!("{store_table}");
    println!(
        "Warm boot (store open + install of {} artifacts): {warm_boot:.2?}; \
         tight-budget warm pass: {promote_warm:.2?} promoting vs {tight_warm:.2?} \
         rebuilding without a store\n",
        warm_store_stats.store_hits
    );

    let json = format!(
        "{{\n  \"benchmark\": \"service-batch\",\n  \
         \"unit\": \"wall clock per 22-query batch (Table 2 safety at (2,2) + Table 3 \
         liveness at (2,1)); cold = fresh service (every artifact builds), warm = same \
         service re-submitted (cache hits at an unbounded budget, rebuilds of evicted \
         artifacts at the tight one); tight budget = largest artifact + (total - \
         largest)/4, so the roster cannot be held resident at once; concurrency = 8 warm \
         submissions of the roster through one shared service at 1 vs 4 in-flight \
         submitter threads\",\n  \
         \"host_cpus\": {},\n  \"pool_size\": {},\n  \"queries_per_batch\": {},\n  \
         \"artifact_total_bytes\": {},\n  \"largest_artifact_bytes\": {},\n  \
         \"budgets\": [\n{}\n  ],\n  \"concurrency\": [\n{}\n  ],\n  \
         \"persistence_unit\": \"same roster through the content-addressed artifact \
         store (tm-store): store_cold_ns = fresh service writing every built artifact \
         through to disk, warm_boot_ns = restarted service opening the store and \
         installing every artifact at construction, store_warm_ns = that restarted \
         service answering the full roster with zero builds, promote_warm_ns = a \
         tight-budget service re-answering the roster by promoting demoted artifacts \
         from disk instead of rebuilding (compare the tight budget row's rebuild-based \
         warm_ns)\",\n  \
         \"persistence\": {{\"store_cold_ns\": {}, \"warm_boot_ns\": {}, \
         \"store_warm_ns\": {}, \"promote_warm_ns\": {}, \"store_bytes\": {}, \
         \"store_files\": {}, \"cold_saves\": {}, \"warm_hits\": {}, \"promotes\": {}, \
         \"demotes\": {}}},\n  \
         \"instrumentation_unit\": \"best-of-5 warm roster through an unbounded-budget \
         service with tm-obs phase timers enabled (default) vs TM_OBS=off; \
         overhead_ratio = on/off - 1, target <= 0.05; sampler_on_warm_ns = same roster \
         with the ~97 Hz sampling profiler also running, profiler_overhead_ratio = \
         sampler_on/on - 1, target <= 0.05\",\n  \
         \"instrumentation\": {{\"obs_on_warm_ns\": {}, \"obs_off_warm_ns\": {}, \
         \"overhead_ratio\": {:.4}, \"sampler_on_warm_ns\": {}, \
         \"profiler_overhead_ratio\": {:.4}}}",
        host_cpus(),
        pool,
        batch.len(),
        total,
        largest,
        rows.join(",\n"),
        conc_rows.join(",\n"),
        store_cold.as_nanos(),
        warm_boot.as_nanos(),
        store_warm.as_nanos(),
        promote_warm.as_nanos(),
        warm_store_stats.store_bytes,
        warm_store_stats.store_files,
        cold_store_stats.store_saves,
        warm_store_stats.store_hits,
        demote_stats.store_promotes,
        demote_stats.store_demotes,
        obs_on.as_nanos(),
        obs_off.as_nanos(),
        obs_overhead,
        sampler_on.as_nanos(),
        profiler_overhead
    );
    write_with_history(
        "BENCH_service.json",
        json,
        &[
            Metric::nanos("cold_ns", unbounded_cold),
            Metric::nanos("warm_ns", unbounded_warm),
            Metric::rate("concurrent4_qps", conc4_qps),
        ],
    );
}

/// Writes `BENCH_liveness.json`: the (2,1) session-vs-reference baseline
/// (with the aggregate speedup over the full roster) plus the
/// build-once-answer-three session rows and the per-query phase
/// breakdowns.
fn write_liveness_json(
    cases: &[String],
    overall_speedup: f64,
    session: &[String],
    phases: &[String],
    metrics: &[Metric],
) {
    let json = format!(
        "{{\n  \"benchmark\": \"liveness-session-vs-reference\",\n  \
         \"instance\": {{\"threads\": 2, \"vars\": 1}},\n  \
         \"unit\": \"best-of-3 wall clock; reference = seed one-shot (cloned filtered \
         subgraphs), session = query against the session-cached compiled run graph \
         (search only; graph_build_ns is paid once per TM)\",\n  \
         \"host_cpus\": {},\n  \"overall_speedup\": {:.3},\n  \"cases\": [\n{}\n  ],\n  \
         \"session_unit\": \"build once, answer OF+LF+WF: single-run wall clock per \
         property search on pool_threads workers; oneshot_est_ns = 3*graph_build_ns + \
         searches (what three one-shot checks would pay)\",\n  \
         \"session\": [\n{}\n  ],\n  \
         \"phases_unit\": \"tm-obs engine-phase totals (QueryStats::phase_ns, \
         nanoseconds, nonzero only) of the final measured run of each (2,1) query; \
         phases nest (run_graph_build contains its pool phases), so they do not sum to \
         wall time\",\n  \
         \"phases\": [\n{}\n  ]",
        host_cpus(),
        overall_speedup,
        cases.join(",\n"),
        session.join(",\n"),
        phases.join(",\n")
    );
    write_with_history("BENCH_liveness.json", json, metrics);
}

/// Writes `BENCH_inclusion.json`: the (2,2) seed-vs-compiled baseline,
/// the on-the-fly scaling rows, the pool-vs-scoped dispatch A/B, and
/// the per-query phase breakdowns.
fn write_bench_json(
    cases: &[String],
    scaling: &[String],
    pool_vs_scoped: &[String],
    phases: &[String],
    metrics: &[Metric],
) {
    let json = format!(
        "{{\n  \"benchmark\": \"inclusion-seed-vs-compiled\",\n  \
         \"instance\": {{\"threads\": 2, \"vars\": 2}},\n  \
         \"unit\": \"best-of-3 wall clock\",\n  \"cases\": [\n{}\n  ],\n  \
         \"scaling_unit\": \"best wall clock; lazy = both sides on the fly, \
         seq/par = compiled spec, par_threads threads\",\n  \
         \"host_cpus\": {},\n  \"scaling\": [\n{}\n  ],\n  \
         \"pool_vs_scoped_unit\": \"best wall clock of the parallel product engine with \
         identical work: scoped = fresh thread::scope per BFS-level region (pre-session \
         behavior), pool = persistent WorkerPool; on a single-cpu host this measures \
         dispatch overhead, not speedup\",\n  \
         \"pool_vs_scoped\": [\n{}\n  ],\n  \
         \"phases_unit\": \"tm-obs engine-phase totals (QueryStats::phase_ns, \
         nanoseconds, nonzero only) per Table 2 query through a fresh (2,2) session; \
         cached_spec = false on each property's first query (which pays spec_intern); \
         phases nest, so they do not sum to wall time\",\n  \
         \"phases\": [\n{}\n  ]",
        cases.join(",\n"),
        host_cpus(),
        scaling.join(",\n"),
        pool_vs_scoped.join(",\n"),
        phases.join(",\n")
    );
    write_with_history("BENCH_inclusion.json", json, metrics);
}
