//! # tm-bench — the experiment suite
//!
//! Shared definitions of the paper's experiment roster, used by the
//! Criterion benches (`benches/`) and the `tables` binary that regenerates
//! every table of the paper in one run:
//!
//! ```bash
//! cargo run --release -p tm-bench --bin tables
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tm_algorithms::{
    most_general_nfa, AggressiveCm, DstmTm, PoliteCm, SequentialTm, Tl2Tm, TmAlgorithm,
    TwoPhaseTm, ValidationStyle, WithContentionManager,
};
use tm_automata::Nfa;
use tm_checker::{LivenessVerdict, Verdict, Verifier};
use tm_lang::{LivenessProperty, SafetyProperty, Statement};

/// State-space bound used throughout the experiment suite.
pub const MAX_STATES: usize = 20_000_000;

/// The safety-experiment roster of Table 2: TM name, word-level automaton,
/// and the paper's reported state count.
pub fn table2_roster() -> Vec<(String, Nfa<Statement>, usize)> {
    let modified = WithContentionManager::new(
        Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock),
        PoliteCm,
    );
    vec![
        named(&SequentialTm::new(2, 2), 3),
        named(&TwoPhaseTm::new(2, 2), 99),
        named(&DstmTm::new(2, 2), 1846),
        named(&Tl2Tm::new(2, 2), 21568),
        named(&modified, 17520),
    ]
}

fn named<A: TmAlgorithm>(tm: &A, paper_states: usize) -> (String, Nfa<Statement>, usize) {
    (tm.name(), most_general_nfa(tm, MAX_STATES).nfa, paper_states)
}

/// The liveness-experiment roster of Table 3 as boxed check thunks
/// (TM construction is cheap; the checks run per property).
pub fn table3_names() -> [&'static str; 4] {
    ["seq", "2PL", "dstm+aggressive", "TL2+polite"]
}

/// Runs a liveness check for one of the [`table3_names`] rows (one-shot:
/// each call builds the TM's run graph anew; the `tables` bin goes
/// through [`table3_check_session`] instead).
///
/// # Panics
///
/// Panics if `name` is not one of the roster names.
pub fn table3_check(
    name: &str,
    property: tm_lang::LivenessProperty,
) -> tm_checker::LivenessVerdict {
    match name {
        "seq" => tm_checker::check_liveness(&SequentialTm::new(2, 1), property),
        "2PL" => tm_checker::check_liveness(&TwoPhaseTm::new(2, 1), property),
        "dstm+aggressive" => tm_checker::check_liveness(
            &WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm),
            property,
        ),
        "TL2+polite" => tm_checker::check_liveness(
            &WithContentionManager::new(Tl2Tm::new(2, 1), PoliteCm),
            property,
        ),
        other => panic!("unknown Table 3 row: {other}"),
    }
}

/// [`table3_check`] through a [`Verifier`] session at (2, 1): the TM's
/// compiled run graph is built by the session's first query for it and
/// answers the other properties from cache. Verdicts and lassos are
/// bit-identical to [`table3_check`]'s.
///
/// # Panics
///
/// Panics if `name` is not one of the roster names or the session's
/// instance size is not (2, 1).
pub fn table3_check_session(
    verifier: &mut Verifier,
    name: &str,
    property: LivenessProperty,
) -> LivenessVerdict {
    let verdict = match name {
        "seq" => verifier.check_liveness(&SequentialTm::new(2, 1), property),
        "2PL" => verifier.check_liveness(&TwoPhaseTm::new(2, 1), property),
        "dstm+aggressive" => verifier.check_liveness(
            &WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm),
            property,
        ),
        "TL2+polite" => verifier.check_liveness(
            &WithContentionManager::new(Tl2Tm::new(2, 1), PoliteCm),
            property,
        ),
        other => panic!("unknown Table 3 row: {other}"),
    };
    verdict
        .into_liveness()
        .expect("liveness query returns a liveness verdict")
}

/// One TM × contention-manager liveness case of [`liveness_roster`]: the
/// concrete TM type erased behind check thunks so heterogeneous rosters
/// fit in one list.
pub struct LivenessCase {
    /// Display name (`tm.name()`, e.g. `"dstm+aggressive"`).
    pub name: String,
    tm: Box<dyn ErasedLiveness>,
}

impl LivenessCase {
    fn new<A: TmAlgorithm + 'static>(tm: A) -> Self {
        LivenessCase {
            name: tm.name(),
            tm: Box::new(tm),
        }
    }

    /// Runs the compiled liveness engine ([`tm_checker::check_liveness_threads`])
    /// with an explicit worker-pool size.
    pub fn check(&self, property: LivenessProperty, threads: usize) -> LivenessVerdict {
        self.tm.check(property, threads)
    }

    /// Runs the query through a [`Verifier`] session: the first query for
    /// this TM compiles its run graph into the session cache, later ones
    /// answer from it (`verdict.stats` records which happened).
    pub fn check_session(
        &self,
        verifier: &mut Verifier,
        property: LivenessProperty,
    ) -> Verdict {
        self.tm.check_session(verifier, property)
    }

    /// Runs the seed reference checker
    /// ([`tm_checker::check_liveness_reference`]).
    pub fn check_reference(&self, property: LivenessProperty) -> LivenessVerdict {
        self.tm.check_reference(property)
    }
}

/// Object-safe shim over concrete TM types (the [`TmAlgorithm`] trait has
/// an associated state type and cannot be boxed directly).
trait ErasedLiveness {
    fn check(&self, property: LivenessProperty, threads: usize) -> LivenessVerdict;
    fn check_session(&self, verifier: &mut Verifier, property: LivenessProperty) -> Verdict;
    fn check_reference(&self, property: LivenessProperty) -> LivenessVerdict;
}

impl<A: TmAlgorithm> ErasedLiveness for A {
    fn check(&self, property: LivenessProperty, threads: usize) -> LivenessVerdict {
        tm_checker::check_liveness_threads(self, property, threads)
    }

    fn check_session(&self, verifier: &mut Verifier, property: LivenessProperty) -> Verdict {
        verifier.check_liveness(self, property)
    }

    fn check_reference(&self, property: LivenessProperty) -> LivenessVerdict {
        tm_checker::check_liveness_reference(self, property)
    }
}

/// One TM safety case of [`table2_cases`]: the concrete TM type erased
/// behind a session-check thunk (the safety analogue of
/// [`LivenessCase`]).
pub struct SafetyCase {
    /// Display name (`tm.name()`).
    pub name: String,
    /// The paper's reported Table 2 state count for this TM.
    pub paper_states: usize,
    tm: Box<dyn ErasedSafety>,
}

impl SafetyCase {
    fn new<A>(tm: A, paper_states: usize) -> Self
    where
        A: TmAlgorithm + Sync + 'static,
        A::State: Send + Sync,
    {
        SafetyCase {
            name: tm.name(),
            paper_states,
            tm: Box::new(tm),
        }
    }

    /// Runs the safety query through a [`Verifier`] session (the
    /// specification artifact is shared across every case of the same
    /// property).
    pub fn check_session(&self, verifier: &mut Verifier, property: SafetyProperty) -> Verdict {
        self.tm.check_session(verifier, property)
    }
}

/// Object-safe shim for [`SafetyCase`].
trait ErasedSafety {
    fn check_session(&self, verifier: &mut Verifier, property: SafetyProperty) -> Verdict;
}

impl<A> ErasedSafety for A
where
    A: TmAlgorithm + Sync,
    A::State: Send + Sync,
{
    fn check_session(&self, verifier: &mut Verifier, property: SafetyProperty) -> Verdict {
        verifier.check_safety(self, property)
    }
}

/// The Table 2 TMs as session-checkable cases, in the same order (and
/// with the same paper state counts) as [`table2_roster`].
pub fn table2_cases() -> Vec<SafetyCase> {
    let modified = WithContentionManager::new(
        Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock),
        PoliteCm,
    );
    vec![
        SafetyCase::new(SequentialTm::new(2, 2), 3),
        SafetyCase::new(TwoPhaseTm::new(2, 2), 99),
        SafetyCase::new(DstmTm::new(2, 2), 1846),
        SafetyCase::new(Tl2Tm::new(2, 2), 21568),
        SafetyCase::new(modified, 17520),
    ]
}

/// Short tag of a liveness property (`"of"` / `"lf"` / `"wf"`) for table
/// and JSON rows.
pub fn liveness_property_tag(property: LivenessProperty) -> &'static str {
    match property {
        LivenessProperty::ObstructionFreedom => "of",
        LivenessProperty::LivelockFreedom => "lf",
        LivenessProperty::WaitFreedom => "wf",
    }
}

/// The liveness roster at instance size `(n, k)`: every TM of the paper
/// crossed with every contention manager (bare, aggressive, polite) — the
/// paper's Table 3 rows are the subset
/// `{seq, 2PL, dstm+aggressive, TL2+polite}` at `(2, 1)`.
pub fn liveness_roster(n: usize, k: usize) -> Vec<LivenessCase> {
    let mut roster = Vec::new();
    macro_rules! push_combos {
        ($tm:expr) => {
            roster.push(LivenessCase::new($tm));
            roster.push(LivenessCase::new(WithContentionManager::new($tm, AggressiveCm)));
            roster.push(LivenessCase::new(WithContentionManager::new($tm, PoliteCm)));
        };
    }
    push_combos!(SequentialTm::new(n, k));
    push_combos!(TwoPhaseTm::new(n, k));
    push_combos!(DstmTm::new(n, k));
    push_combos!(Tl2Tm::new(n, k));
    roster
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_paper_rows() {
        let roster = table2_roster();
        assert_eq!(roster.len(), 5);
        assert_eq!(roster[0].0, "sequential");
        assert_eq!(roster[0].1.num_states(), 3);
        assert_eq!(roster[4].0, "modified-TL2+polite");
    }

    #[test]
    #[should_panic(expected = "unknown Table 3 row")]
    fn unknown_row_panics() {
        let _ = table3_check("nope", tm_lang::LivenessProperty::ObstructionFreedom);
    }

    #[test]
    fn table2_cases_align_with_the_materialized_roster() {
        let cases = table2_cases();
        let roster = table2_roster();
        assert_eq!(cases.len(), roster.len());
        for (case, (name, _, paper)) in cases.iter().zip(&roster) {
            assert_eq!(&case.name, name);
            assert_eq!(case.paper_states, *paper);
        }
    }

    #[test]
    fn session_check_matches_one_shot_on_a_sample() {
        let mut verifier = Verifier::new(2, 1);
        let roster = liveness_roster(2, 1);
        let case = &roster[0];
        for property in LivenessProperty::all() {
            let session = case.check_session(&mut verifier, property);
            let one_shot = case.check(property, 1);
            assert_eq!(session.holds(), one_shot.holds(), "{property}");
        }
        assert_eq!(verifier.run_graph_builds(), 1);
    }

    #[test]
    fn liveness_roster_is_the_full_tm_times_cm_product() {
        let roster = liveness_roster(2, 1);
        assert_eq!(roster.len(), 12);
        let names: Vec<&str> = roster.iter().map(|c| c.name.as_str()).collect();
        for expected in ["sequential", "dstm+aggressive", "TL2+polite", "2PL+aggressive"] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
    }
}
