//! Profiles the TL2 (3, 2) liveness queries with the in-repo ~97 Hz
//! sampling profiler: registers the calling thread as the session
//! thread, runs OF + LF + WF through a fresh [`Verifier`] session, and
//! prints the folded stacks of the window — the same format
//! `GET /v1/profile` serves, ready for `flamegraph.pl` or speedscope.
//!
//! ```bash
//! cargo run --release -p tm-bench --example profile_tl2
//! ```
//!
//! The interesting line is the session thread inside
//! `run_graph_build`: the run-graph compilation of the first query is
//! serial, so at any pool size the build window folds as
//! `session-*;query;run_graph_build` with the worker threads idle —
//! the serial bottleneck discussed in `crates/bench/NOTES.md`.

use std::time::Instant;

use tm_bench::liveness_roster;
use tm_checker::Verifier;
use tm_lang::LivenessProperty;
use tm_obs::{profile_snapshot, register_thread, start_sampler, stop_sampler, ThreadKind};

fn main() {
    let pool = tm_automata::modelcheck_threads();
    let _session = register_thread(ThreadKind::Session);
    let case = liveness_roster(3, 2)
        .into_iter()
        .find(|case| case.name.starts_with("TL2"))
        .expect("TL2 is in the (3,2) roster");
    println!("profiling {} at (3, 2), pool = {pool} threads", case.name);

    start_sampler();
    let before = profile_snapshot();
    let start = Instant::now();
    let mut verifier = Verifier::new(3, 2);
    for property in LivenessProperty::all() {
        let query_start = Instant::now();
        let verdict = case.check_session(&mut verifier, property);
        println!(
            "  {property}: {} (cached artifact: {}, {:.2?})",
            if verdict.holds() { "Y" } else { "N" },
            verdict.stats.artifact_cached,
            query_start.elapsed()
        );
    }
    let elapsed = start.elapsed();
    let folded = profile_snapshot().folded_since(&before);
    stop_sampler();

    println!("\nfolded stacks over {elapsed:.2?} of work (count = ~10.3 ms samples):");
    print!("{folded}");
}
