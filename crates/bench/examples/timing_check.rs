//! Quick sizing probe: specification state counts and construction times
//! beyond the reduction bound (used to calibrate the scaling bench).
use std::time::Instant;
use tm_lang::SafetyProperty;
use tm_spec::{DetSpec, NondetSpec};

fn main() {
    for (n, k) in [(2usize, 3usize), (3, 1), (3, 2)] {
        let t = Instant::now();
        let (dfa, _) = DetSpec::new(SafetyProperty::Opacity, n, k).to_dfa(20_000_000);
        println!("det op ({n},{k}): {} states in {:.2?}", dfa.num_states(), t.elapsed());
        let t = Instant::now();
        let nd = NondetSpec::new(SafetyProperty::Opacity, n, k).to_nfa(20_000_000);
        println!("nondet op ({n},{k}): {} states in {:.2?}", nd.num_states(), t.elapsed());
    }
}
