//! Release-mode liveness scaling smoke for CI: runs the compiled liveness
//! engine on every TM × contention-manager combination at (3, 1) and
//! (2, 2) — instance sizes beyond the paper's (2, 1) Table 3 — and
//! cross-checks every counterexample against the word-level property
//! oracle. A regression on the engine (hang, state-space blowup, bogus
//! lasso) fails or times this run out instead of wedging the test job.
//!
//! ```bash
//! cargo run --release -p tm-bench --example liveness_smoke
//! ```

use std::time::Instant;

use tm_bench::{liveness_property_tag, liveness_roster};
use tm_lang::LivenessProperty;

fn main() {
    let pool = tm_automata::modelcheck_threads();
    println!("liveness scaling smoke (pool = {pool} threads)");
    let start = Instant::now();
    let mut checks = 0usize;
    for (n, k) in [(3usize, 1usize), (2, 2)] {
        for case in liveness_roster(n, k) {
            for property in LivenessProperty::all() {
                let verdict = case.check(property, pool);
                let holds = verdict.holds();
                if let Some(lasso) = verdict.counterexample() {
                    // Every violation must be a genuine one: its
                    // word-level projection fails the property.
                    let word = lasso
                        .to_word_lasso()
                        .expect("TM loops always emit statements");
                    assert!(
                        !property.holds(&word),
                        "{} ({n},{k}) {property}: lasso {word} satisfies the property",
                        case.name
                    );
                }
                if property == LivenessProperty::WaitFreedom {
                    // A thread may always read forever without
                    // committing: no TM is wait free.
                    assert!(!holds, "{} ({n},{k}) claims wait freedom", case.name);
                }
                println!(
                    "  {:22} ({n},{k}) {:2}: {} [{} states, {:.2?}]",
                    case.name,
                    liveness_property_tag(property),
                    if holds { "Y" } else { "N" },
                    verdict.tm_states,
                    verdict.total_time
                );
                checks += 1;
            }
        }
    }
    println!("{checks} checks passed in {:.2?}", start.elapsed());
}
