//! **Table 3** bench: time to model check obstruction freedom and
//! livelock freedom for each TM algorithm (with its contention manager)
//! on the most general program with two threads and one variable.
//!
//! The paper reports 0.1–2 s per row on a 2.66 GHz desktop PC.

use criterion::{criterion_group, criterion_main, Criterion};

use tm_algorithms::{
    AggressiveCm, DstmTm, PoliteCm, SequentialTm, Tl2Tm, TwoPhaseTm, WithContentionManager,
};
use tm_checker::check_liveness;
use tm_lang::LivenessProperty;

fn bench_liveness(c: &mut Criterion) {
    for property in [
        LivenessProperty::ObstructionFreedom,
        LivenessProperty::LivelockFreedom,
        LivenessProperty::WaitFreedom,
    ] {
        let tag = match property {
            LivenessProperty::ObstructionFreedom => "of",
            LivenessProperty::LivelockFreedom => "lf",
            LivenessProperty::WaitFreedom => "wf",
        };
        let mut group = c.benchmark_group(format!("table3/{tag}"));
        group.sample_size(10);
        group.bench_function("seq", |b| {
            b.iter(|| check_liveness(&SequentialTm::new(2, 1), property))
        });
        group.bench_function("2PL", |b| {
            b.iter(|| check_liveness(&TwoPhaseTm::new(2, 1), property))
        });
        group.bench_function("dstm+aggressive", |b| {
            let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
            b.iter(|| check_liveness(&tm, property))
        });
        group.bench_function("TL2+polite", |b| {
            let tm = WithContentionManager::new(Tl2Tm::new(2, 1), PoliteCm);
            b.iter(|| check_liveness(&tm, property))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_liveness);
criterion_main!(benches);
