//! **Table 3** bench: time to model check obstruction freedom and
//! livelock freedom for each TM algorithm (with its contention manager)
//! on the most general program with two threads and one variable.
//!
//! The paper reports 0.1–2 s per row on a 2.66 GHz desktop PC.

use criterion::{criterion_group, criterion_main, Criterion};

use tm_algorithms::{
    AggressiveCm, DstmTm, PoliteCm, SequentialTm, Tl2Tm, TwoPhaseTm, WithContentionManager,
};
use tm_checker::{check_liveness, check_liveness_reference, check_liveness_threads};
use tm_lang::LivenessProperty;

fn bench_liveness(c: &mut Criterion) {
    for property in [
        LivenessProperty::ObstructionFreedom,
        LivenessProperty::LivelockFreedom,
        LivenessProperty::WaitFreedom,
    ] {
        let tag = match property {
            LivenessProperty::ObstructionFreedom => "of",
            LivenessProperty::LivelockFreedom => "lf",
            LivenessProperty::WaitFreedom => "wf",
        };
        let mut group = c.benchmark_group(format!("table3/{tag}"));
        group.sample_size(10);
        group.bench_function("seq", |b| {
            b.iter(|| check_liveness(&SequentialTm::new(2, 1), property))
        });
        group.bench_function("2PL", |b| {
            b.iter(|| check_liveness(&TwoPhaseTm::new(2, 1), property))
        });
        group.bench_function("dstm+aggressive", |b| {
            let tm = WithContentionManager::new(DstmTm::new(2, 1), AggressiveCm);
            b.iter(|| check_liveness(&tm, property))
        });
        group.bench_function("TL2+polite", |b| {
            let tm = WithContentionManager::new(Tl2Tm::new(2, 1), PoliteCm);
            b.iter(|| check_liveness(&tm, property))
        });
        group.finish();
    }
}

/// A/B: the compiled engine (masked CSR passes, pool size 1 for a fair
/// single-threaded comparison) against the seed reference (cloned
/// filtered subgraphs) on the heaviest Table 3 rows.
fn bench_engine_vs_reference(c: &mut Criterion) {
    let two_phase = TwoPhaseTm::new(2, 1);
    let tl2 = WithContentionManager::new(Tl2Tm::new(2, 1), PoliteCm);
    let mut group = c.benchmark_group("table3/engine-vs-reference");
    group.sample_size(10);
    group.bench_function("engine/2PL/lf", |b| {
        b.iter(|| check_liveness_threads(&two_phase, LivenessProperty::LivelockFreedom, 1))
    });
    group.bench_function("reference/2PL/lf", |b| {
        b.iter(|| check_liveness_reference(&two_phase, LivenessProperty::LivelockFreedom))
    });
    group.bench_function("engine/TL2+polite/lf", |b| {
        b.iter(|| check_liveness_threads(&tl2, LivenessProperty::LivelockFreedom, 1))
    });
    group.bench_function("reference/TL2+polite/lf", |b| {
        b.iter(|| check_liveness_reference(&tl2, LivenessProperty::LivelockFreedom))
    });
    group.finish();
}

criterion_group!(benches, bench_liveness, bench_engine_vs_reference);
criterion_main!(benches);
