//! **Table 2** bench: time for the language-inclusion safety checks
//! `L(A) ⊆ L(Σᵈ_ss)` and `L(A) ⊆ L(Σᵈ_op)` for each TM algorithm on the
//! most general program with two threads and two variables.
//!
//! The paper reports: seq 0.01 s, 2PL 0.01 s, DSTM 0.16/0.13 s,
//! TL2 3.2/2.4 s, modified TL2+polite 9/8 s (counterexample search) on a
//! 2.8 GHz dual-core PC. Shapes (ordering, rough ratios) are the
//! reproduction target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tm_algorithms::{
    most_general_nfa, DstmTm, PoliteCm, SequentialTm, Tl2Tm, TwoPhaseTm, ValidationStyle,
    WithContentionManager,
};
use tm_automata::{check_inclusion, Dfa, Nfa};
use tm_lang::{SafetyProperty, Statement};
use tm_spec::DetSpec;

const MAX: usize = 10_000_000;

fn tm_automata_for_bench() -> Vec<(&'static str, Nfa<Statement>)> {
    vec![
        ("seq", most_general_nfa(&SequentialTm::new(2, 2), MAX).nfa),
        ("2PL", most_general_nfa(&TwoPhaseTm::new(2, 2), MAX).nfa),
        ("dstm", most_general_nfa(&DstmTm::new(2, 2), MAX).nfa),
        ("TL2", most_general_nfa(&Tl2Tm::new(2, 2), MAX).nfa),
        (
            "modTL2pol",
            most_general_nfa(
                &WithContentionManager::new(
                    Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock),
                    PoliteCm,
                ),
                MAX,
            )
            .nfa,
        ),
    ]
}

fn spec_for(property: SafetyProperty) -> Dfa<Statement> {
    DetSpec::new(property, 2, 2).to_dfa(MAX).0
}

fn bench_inclusion(c: &mut Criterion) {
    let tms = tm_automata_for_bench();
    for property in SafetyProperty::all() {
        let spec = spec_for(property);
        let mut group = c.benchmark_group(format!("table2/{}", property.short_name()));
        group.sample_size(10);
        for (name, nfa) in &tms {
            group.bench_with_input(BenchmarkId::from_parameter(name), nfa, |b, nfa| {
                b.iter(|| check_inclusion(nfa, &spec))
            });
        }
        group.finish();
    }
}

fn bench_automaton_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/construction");
    group.sample_size(10);
    group.bench_function("spec-ss", |b| {
        b.iter(|| spec_for(SafetyProperty::StrictSerializability))
    });
    group.bench_function("spec-op", |b| b.iter(|| spec_for(SafetyProperty::Opacity)));
    group.bench_function("tm-TL2", |b| {
        b.iter(|| most_general_nfa(&Tl2Tm::new(2, 2), MAX))
    });
    group.finish();
}

criterion_group!(benches, bench_inclusion, bench_automaton_construction);
criterion_main!(benches);
