//! Scaling bench (extension beyond the paper's tables): how specification
//! and TM state spaces — and the inclusion check — grow with the instance
//! size `(n, k)`, underlining why the reduction theorem matters.
//!
//! The `scaling/compiled-vs-seed` group is the A/B evidence for the
//! interned-alphabet refactor: the seed (label-hashing)
//! `check_inclusion_reference` against the index-based `check_inclusion`
//! and its precompiled-spec variant, on the same automata.
//!
//! Automaton construction dominates this bench's setup, so each sized
//! case checks the command-line filter *before* building its automata;
//! e.g. `cargo bench --bench scaling -- compiled-vs-seed` builds nothing
//! else (add `/2x2` to one of its bench ids, such as
//! `compiled-vs-seed/seed/2x2`, to narrow further).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tm_algorithms::{most_general_nfa, DstmTm, TwoPhaseTm};
use tm_automata::{check_inclusion, check_inclusion_compiled, check_inclusion_reference};
use tm_lang::SafetyProperty;
use tm_spec::{DetSpec, NondetSpec};

const MAX: usize = 20_000_000;

const SIZES: [(usize, usize); 5] = [(2, 1), (2, 2), (3, 1), (2, 3), (3, 2)];

fn bench_compiled_vs_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/compiled-vs-seed");
    group.sample_size(10);
    for (n, k) in [(2, 2), (2, 3)] {
        let tag = format!("{n}x{k}");
        // Build this size's automata only if at least one of its three
        // bench ids survives the filter.
        if !["seed", "compiled", "precompiled"]
            .iter()
            .any(|kind| group.is_selected(&format!("{kind}/{tag}")))
        {
            continue;
        }
        let spec = DetSpec::new(SafetyProperty::Opacity, n, k).to_dfa(MAX).0;
        let compiled = spec.compile();
        let tm = most_general_nfa(&DstmTm::new(n, k), MAX).nfa;
        group.bench_with_input(BenchmarkId::new("seed", &tag), &tm, |b, tm| {
            b.iter(|| check_inclusion_reference(tm, &spec))
        });
        group.bench_with_input(BenchmarkId::new("compiled", &tag), &tm, |b, tm| {
            b.iter(|| check_inclusion(tm, &spec))
        });
        group.bench_with_input(BenchmarkId::new("precompiled", &tag), &tm, |b, tm| {
            b.iter(|| check_inclusion_compiled(tm, &compiled))
        });
    }
    group.finish();
}

fn bench_spec_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/spec-construction");
    group.sample_size(10);
    for (n, k) in SIZES {
        let tag = format!("{n}x{k}");
        if group.is_selected(&format!("det-op/{tag}")) {
            group.bench_with_input(BenchmarkId::new("det-op", &tag), &(n, k), |b, &(n, k)| {
                b.iter(|| DetSpec::new(SafetyProperty::Opacity, n, k).to_dfa(MAX))
            });
        }
        if group.is_selected(&format!("nondet-op/{tag}")) {
            group.bench_with_input(BenchmarkId::new("nondet-op", &tag), &(n, k), |b, &(n, k)| {
                b.iter(|| NondetSpec::new(SafetyProperty::Opacity, n, k).to_nfa(MAX))
            });
        }
    }
    group.finish();
}

fn bench_inclusion_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/inclusion-dstm-op");
    group.sample_size(10);
    for (n, k) in SIZES {
        let tag = format!("{n}x{k}");
        if !group.is_selected(&tag) {
            continue;
        }
        let spec = DetSpec::new(SafetyProperty::Opacity, n, k).to_dfa(MAX).0;
        let tm = most_general_nfa(&DstmTm::new(n, k), MAX).nfa;
        group.bench_with_input(BenchmarkId::from_parameter(&tag), &(n, k), |b, _| {
            b.iter(|| check_inclusion(&tm, &spec))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scaling/inclusion-2pl-ss");
    group.sample_size(10);
    for (n, k) in SIZES {
        let tag = format!("{n}x{k}");
        if !group.is_selected(&tag) {
            continue;
        }
        let spec = DetSpec::new(SafetyProperty::StrictSerializability, n, k)
            .to_dfa(MAX)
            .0;
        let tm = most_general_nfa(&TwoPhaseTm::new(n, k), MAX).nfa;
        group.bench_with_input(BenchmarkId::from_parameter(&tag), &(n, k), |b, _| {
            b.iter(|| check_inclusion(&tm, &spec))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compiled_vs_seed,
    bench_spec_construction,
    bench_inclusion_scaling
);
criterion_main!(benches);
