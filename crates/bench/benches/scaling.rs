//! Scaling bench (extension beyond the paper's tables): how specification
//! and TM state spaces — and the inclusion check — grow with the instance
//! size `(n, k)`, underlining why the reduction theorem matters.
//!
//! The `scaling/compiled-vs-seed` group is the A/B evidence for the
//! interned-alphabet refactor: the seed (label-hashing)
//! `check_inclusion_reference` against the index-based `check_inclusion`
//! and its precompiled-spec variant, on the same automata.
//!
//! Automaton construction dominates this bench's setup, so each sized
//! case checks the command-line filter *before* building its automata;
//! e.g. `cargo bench --bench scaling -- compiled-vs-seed` builds nothing
//! else (add `/2x2` to one of its bench ids, such as
//! `compiled-vs-seed/seed/2x2`, to narrow further).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tm_algorithms::{most_general_nfa, DstmTm, MostGeneralSource, Tl2Tm, TwoPhaseTm};
use tm_automata::{
    check_inclusion, check_inclusion_compiled, check_inclusion_otf_executor,
    check_inclusion_otf_lazy, check_inclusion_otf_threads, check_inclusion_reference,
    modelcheck_threads, Alphabet, DtsSpecSource, Executor, WorkerPool,
};
use tm_lang::SafetyProperty;
use tm_spec::{spec_alphabet, DetSpec, NondetSpec};

const MAX: usize = 20_000_000;

const SIZES: [(usize, usize); 5] = [(2, 1), (2, 2), (3, 1), (2, 3), (3, 2)];

/// Instance sizes of the on-the-fly group. At (3, 3) and (4, 2) only the
/// fully lazy engine runs — eagerly determinizing those specifications
/// does not terminate in reasonable time — so those rows bench
/// `otf-lazy` alone (the `otf-lazy/3x3` / `otf-lazy/4x2` filters are
/// what CI's release smoke runs behind a timeout).
const OTF_SIZES: [(usize, usize); 4] = [(2, 2), (3, 2), (3, 3), (4, 2)];

fn bench_compiled_vs_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/compiled-vs-seed");
    group.sample_size(10);
    for (n, k) in [(2, 2), (2, 3)] {
        let tag = format!("{n}x{k}");
        // Build this size's automata only if at least one of its three
        // bench ids survives the filter.
        if !["seed", "compiled", "precompiled"]
            .iter()
            .any(|kind| group.is_selected(&format!("{kind}/{tag}")))
        {
            continue;
        }
        let spec = DetSpec::new(SafetyProperty::Opacity, n, k).to_dfa(MAX).0;
        let compiled = spec.compile();
        let tm = most_general_nfa(&DstmTm::new(n, k), MAX).nfa;
        group.bench_with_input(BenchmarkId::new("seed", &tag), &tm, |b, tm| {
            b.iter(|| check_inclusion_reference(tm, &spec))
        });
        group.bench_with_input(BenchmarkId::new("compiled", &tag), &tm, |b, tm| {
            b.iter(|| check_inclusion(tm, &spec))
        });
        group.bench_with_input(BenchmarkId::new("precompiled", &tag), &tm, |b, tm| {
            b.iter(|| check_inclusion_compiled(tm, &compiled))
        });
    }
    group.finish();
}

fn bench_spec_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/spec-construction");
    group.sample_size(10);
    for (n, k) in SIZES {
        let tag = format!("{n}x{k}");
        if group.is_selected(&format!("det-op/{tag}")) {
            group.bench_with_input(BenchmarkId::new("det-op", &tag), &(n, k), |b, &(n, k)| {
                b.iter(|| DetSpec::new(SafetyProperty::Opacity, n, k).to_dfa(MAX))
            });
        }
        if group.is_selected(&format!("nondet-op/{tag}")) {
            group.bench_with_input(BenchmarkId::new("nondet-op", &tag), &(n, k), |b, &(n, k)| {
                b.iter(|| NondetSpec::new(SafetyProperty::Opacity, n, k).to_nfa(MAX))
            });
        }
    }
    group.finish();
}

fn bench_inclusion_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/inclusion-dstm-op");
    group.sample_size(10);
    for (n, k) in SIZES {
        let tag = format!("{n}x{k}");
        if !group.is_selected(&tag) {
            continue;
        }
        let spec = DetSpec::new(SafetyProperty::Opacity, n, k).to_dfa(MAX).0;
        let tm = most_general_nfa(&DstmTm::new(n, k), MAX).nfa;
        group.bench_with_input(BenchmarkId::from_parameter(&tag), &(n, k), |b, _| {
            b.iter(|| check_inclusion(&tm, &spec))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scaling/inclusion-2pl-ss");
    group.sample_size(10);
    for (n, k) in SIZES {
        let tag = format!("{n}x{k}");
        if !group.is_selected(&tag) {
            continue;
        }
        let spec = DetSpec::new(SafetyProperty::StrictSerializability, n, k)
            .to_dfa(MAX)
            .0;
        let tm = most_general_nfa(&TwoPhaseTm::new(n, k), MAX).nfa;
        group.bench_with_input(BenchmarkId::from_parameter(&tag), &(n, k), |b, _| {
            b.iter(|| check_inclusion(&tm, &spec))
        });
    }
    group.finish();
}

/// The on-the-fly product engine on the TM steppers themselves: no NFA is
/// built, the TM is stepped lazily — against the compiled spec,
/// sequentially (`otf-seq`) and on the thread pool (`otf-par`,
/// `TM_MODELCHECK_THREADS` or all cores up to 8), and with the spec side
/// lazy too (`otf-lazy`). This is the group that scales past (3, 2).
fn bench_otf_product(c: &mut Criterion) {
    let threads = modelcheck_threads().max(2);
    let mut group = c.benchmark_group("scaling/otf-product");
    group.sample_size(10);
    for (n, k) in OTF_SIZES {
        let tag = format!("{n}x{k}");
        let lazy_selected = group.is_selected(&format!("otf-lazy/{tag}"));
        let eager_feasible = matches!((n, k), (2, 2) | (3, 2));
        let eager_selected = eager_feasible
            && ["otf-seq", "otf-par"]
                .iter()
                .any(|kind| group.is_selected(&format!("{kind}/{tag}")));
        if !lazy_selected && !eager_selected {
            continue;
        }
        let det = DetSpec::new(SafetyProperty::StrictSerializability, n, k);
        let letters = spec_alphabet(n, k);
        let tm = TwoPhaseTm::new(n, k);
        let source = MostGeneralSource::new(&tm, Alphabet::from_letters(&letters));
        if lazy_selected {
            let spec = DtsSpecSource::new(&det, letters.clone());
            group.bench_with_input(BenchmarkId::new("otf-lazy", &tag), &(n, k), |b, _| {
                b.iter(|| check_inclusion_otf_lazy(&source, &spec))
            });
        }
        if eager_selected {
            let spec = det.to_dfa(MAX).0.compile();
            group.bench_with_input(BenchmarkId::new("otf-seq", &tag), &(n, k), |b, _| {
                b.iter(|| check_inclusion_otf_threads(&source, &spec, 1))
            });
            group.bench_with_input(BenchmarkId::new("otf-par", &tag), &(n, k), |b, _| {
                b.iter(|| check_inclusion_otf_threads(&source, &spec, threads))
            });
        }
    }
    group.finish();
}

/// Pool-vs-scoped A/B: the parallel product engine doing identical work,
/// once spawning fresh scoped threads for every BFS-level region (the
/// pre-session behavior) and once dispatching to a persistent
/// [`WorkerPool`] (what a `tm_checker::Verifier` session does). TL2 at
/// (2, 2) is the largest Table 2 product — frontiers wide enough to
/// cross the engine's parallel threshold, hundreds of level regions —
/// so the difference is pure dispatch overhead.
fn bench_pool_vs_scoped(c: &mut Criterion) {
    let threads = modelcheck_threads().max(2);
    let mut group = c.benchmark_group("scaling/pool-vs-scoped");
    group.sample_size(10);
    let tag = "2x2";
    if !["scoped", "pool"]
        .iter()
        .any(|kind| group.is_selected(&format!("{kind}/{tag}")))
    {
        group.finish();
        return;
    }
    let spec = DetSpec::new(SafetyProperty::StrictSerializability, 2, 2)
        .to_dfa(MAX)
        .0
        .compile();
    let tm = Tl2Tm::new(2, 2);
    let source = MostGeneralSource::new(&tm, spec.alphabet().clone());
    group.bench_with_input(BenchmarkId::new("scoped", tag), &(), |b, ()| {
        b.iter(|| {
            check_inclusion_otf_executor(
                &source,
                &spec,
                &Executor::Scoped { threads },
                usize::MAX,
            )
        })
    });
    let pool = WorkerPool::new(threads);
    group.bench_with_input(BenchmarkId::new("pool", tag), &(), |b, ()| {
        b.iter(|| {
            check_inclusion_otf_executor(&source, &spec, &Executor::Pool(&pool), usize::MAX)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compiled_vs_seed,
    bench_spec_construction,
    bench_inclusion_scaling,
    bench_otf_product,
    bench_pool_vs_scoped
);
criterion_main!(benches);
