//! Scaling bench (extension beyond the paper's tables): how specification
//! and TM state spaces — and the inclusion check — grow with the instance
//! size `(n, k)`, underlining why the reduction theorem matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tm_algorithms::{most_general_nfa, DstmTm, TwoPhaseTm};
use tm_automata::check_inclusion;
use tm_lang::SafetyProperty;
use tm_spec::{DetSpec, NondetSpec};

const MAX: usize = 20_000_000;

const SIZES: [(usize, usize); 4] = [(2, 1), (2, 2), (3, 1), (2, 3)];

fn bench_spec_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/spec-construction");
    group.sample_size(10);
    for (n, k) in SIZES {
        group.bench_with_input(
            BenchmarkId::new("det-op", format!("{n}x{k}")),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| DetSpec::new(SafetyProperty::Opacity, n, k).to_dfa(MAX))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("nondet-op", format!("{n}x{k}")),
            &(n, k),
            |b, &(n, k)| {
                b.iter(|| NondetSpec::new(SafetyProperty::Opacity, n, k).to_nfa(MAX))
            },
        );
    }
    group.finish();
}

fn bench_inclusion_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/inclusion-dstm-op");
    group.sample_size(10);
    for (n, k) in SIZES {
        let spec = DetSpec::new(SafetyProperty::Opacity, n, k).to_dfa(MAX).0;
        let tm = most_general_nfa(&DstmTm::new(n, k), MAX).nfa;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{k}")),
            &(n, k),
            |b, _| b.iter(|| check_inclusion(&tm, &spec)),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("scaling/inclusion-2pl-ss");
    group.sample_size(10);
    for (n, k) in SIZES {
        let spec = DetSpec::new(SafetyProperty::StrictSerializability, n, k)
            .to_dfa(MAX)
            .0;
        let tm = most_general_nfa(&TwoPhaseTm::new(n, k), MAX).nfa;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{k}")),
            &(n, k),
            |b, _| b.iter(|| check_inclusion(&tm, &spec)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spec_construction, bench_inclusion_scaling);
criterion_main!(benches);
