//! Reference-checker bench (extension): cost of the definition-level
//! decision procedures — the conflict-graph construction versus the
//! brute-force search over serialization orders — as a function of word
//! length. Motivates the paper's point that the classical conflict-graph
//! approach cannot yield a finite-state specification (it re-runs per
//! word), while the spec automaton answers membership in O(len).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tm_lang::{
    is_opaque, is_opaque_brute_force, random_word, transactions, Alphabet, Word,
};
use tm_spec::DetSpec;

fn sample_words(len: usize, count: usize) -> Vec<Word> {
    let mut rng = StdRng::seed_from_u64(42);
    let alphabet = Alphabet::new(2, 2);
    let mut out = Vec::new();
    while out.len() < count {
        let w = random_word(alphabet, len, |bound| rng.gen_range(0..bound));
        // Keep the brute force feasible.
        if transactions(&w).len() <= 6 {
            out.push(w);
        }
    }
    out
}

fn bench_checkers(c: &mut Criterion) {
    let spec = DetSpec::new(tm_lang::SafetyProperty::Opacity, 2, 2);
    for len in [4usize, 8, 12] {
        let words = sample_words(len, 50);
        let mut group = c.benchmark_group(format!("reference/len{len}"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("conflict-graph", len), &words, |b, ws| {
            b.iter(|| ws.iter().filter(|w| is_opaque(w)).count())
        });
        group.bench_with_input(BenchmarkId::new("brute-force", len), &words, |b, ws| {
            b.iter(|| ws.iter().filter(|w| is_opaque_brute_force(w)).count())
        });
        group.bench_with_input(BenchmarkId::new("det-spec-membership", len), &words, |b, ws| {
            b.iter(|| ws.iter().filter(|w| spec.accepts_word(w)).count())
        });
        group.finish();
    }
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
