//! **Theorem 3 / §5.3** bench: antichain language-equivalence of the
//! nondeterministic and deterministic specifications for two threads and
//! two variables (the paper's external antichain tool proved both
//! equivalences within 5 seconds), compared against brute-force subset
//! determinization + minimization.

use criterion::{criterion_group, criterion_main, Criterion};

use tm_automata::{check_equivalence_antichain, check_inclusion_antichain, Dfa};
use tm_lang::SafetyProperty;
use tm_spec::{spec_alphabet, DetSpec, NondetSpec};

const MAX: usize = 10_000_000;

fn bench_equivalence(c: &mut Criterion) {
    for property in SafetyProperty::all() {
        let nondet = NondetSpec::new(property, 2, 2).to_nfa(MAX);
        let det = DetSpec::new(property, 2, 2).to_dfa(MAX).0.to_nfa();
        let mut group =
            c.benchmark_group(format!("theorem3/{}", property.short_name()));
        group.sample_size(10);
        group.bench_function("antichain-equivalence", |b| {
            b.iter(|| check_equivalence_antichain(&nondet.nfa, &det))
        });
        group.bench_function("antichain-forward-only", |b| {
            b.iter(|| check_inclusion_antichain(&nondet.nfa, &det))
        });
        group.bench_function("subset-determinize+minimize", |b| {
            b.iter(|| {
                let dfa = Dfa::determinize(&nondet.nfa, spec_alphabet(2, 2));
                dfa.minimize()
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_equivalence);
criterion_main!(benches);
