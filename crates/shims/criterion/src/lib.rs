//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! with honest wall-clock measurement (warm-up, then `sample_size`
//! samples; median, min and max are reported on stdout).
//!
//! Differences from real criterion, by design:
//!
//! * no plotting, no statistics beyond median/min/max, no saved baselines;
//! * positional command-line arguments are substring filters on the full
//!   `group/bench` id (same spirit as criterion's filter argument);
//! * the environment variable `TM_BENCH_QUICK=1` caps every bench at one
//!   warm-up iteration and three samples, so CI can smoke-run benches in
//!   seconds.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<N: fmt::Display, P: fmt::Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing harness handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filters: Vec<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional args that are not cargo-bench plumbing act as
        // substring filters, like criterion's own filter argument.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            filters,
            quick: std::env::var_os("TM_BENCH_QUICK").is_some_and(|v| v == "1"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark (its own single-entry group).
    pub fn bench_function<I, F>(&mut self, id: I, f: F)
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.id.clone());
        group.run(String::new(), f);
        group.finish();
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_id.contains(f.as_str()))
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and runs a benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        self.run(id.into().id, f);
        self
    }

    /// Registers and runs a benchmark taking a borrowed input.
    pub fn bench_with_input<I, Inp: ?Sized, F>(&mut self, id: I, input: &Inp, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &Inp),
    {
        self.run(id.into().id, |b| f(b, input));
        self
    }

    /// Whether a benchmark registered in this group as `id` would
    /// survive the command-line filters — the same check `run` applies.
    /// Benches whose *setup* is expensive query this before constructing
    /// inputs, so the skip logic cannot diverge from the harness's.
    ///
    /// (Extension over real criterion, which offers no setup-time filter
    /// query; guard any use with `#[cfg]` if this shim is ever swapped
    /// out.)
    pub fn is_selected(&self, id: &str) -> bool {
        self.criterion.matches(&format!("{}/{}", self.name, id))
    }

    /// Ends the group (formatting no-op; kept for API parity).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let full_id = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.criterion.matches(&full_id) {
            return;
        }
        let samples = if self.criterion.quick {
            3
        } else {
            self.sample_size
        };
        // Warm-up: one untimed run (criterion warms by wall-clock; one
        // iteration is enough to populate caches for these workloads).
        let mut warmup = Bencher {
            samples: Vec::with_capacity(1),
            iters_per_sample: 1,
        };
        f(&mut warmup);
        let mut bencher = Bencher {
            samples: Vec::with_capacity(samples),
            iters_per_sample: 1,
        };
        f(&mut bencher);
        report(&full_id, &mut bencher.samples);
    }
}

fn report(id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id:<60} no samples recorded (closure never called iter)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{id:<60} time: [{:>12?} {:>12?} {:>12?}]  ({} samples)",
        min,
        median,
        max,
        samples.len()
    );
}

/// Declares a function that runs a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion {
            filters: Vec::new(),
            quick: true,
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut c = Criterion {
            filters: vec!["other".to_owned()],
            quick: true,
        };
        let mut ran = false;
        let mut group = c.benchmark_group("shim");
        group.bench_function("skipped", |b| b.iter(|| ran = true));
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn is_selected_matches_run_semantics() {
        let mut c = Criterion {
            filters: vec!["group/yes".to_owned()],
            quick: true,
        };
        let group = c.benchmark_group("group");
        assert!(group.is_selected("yes/2x2"));
        assert!(!group.is_selected("no/2x2"));
        group.finish();
        let mut unfiltered = Criterion {
            filters: Vec::new(),
            quick: true,
        };
        assert!(unfiltered.benchmark_group("g").is_selected("anything"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "2x2").id, "f/2x2");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
