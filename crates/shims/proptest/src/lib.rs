//! Offline stand-in for the `proptest` crate.
//!
//! The container build must work without registry access, so this crate
//! implements the API subset the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   ranges, 2-/3-tuples of strategies, and [`collection::vec`];
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from real proptest, by design: generation is a fixed-seed
//! splitmix64 stream (fully deterministic, no `PROPTEST_` env handling)
//! and failing inputs are reported but **not shrunk**.

#![forbid(unsafe_code)]

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64 + 1;
                    start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The deterministic case runner behind [`proptest!`].
pub mod test_runner {
    use crate::strategy::Strategy;
    use std::fmt::Debug;

    /// Per-case outcome signal used by the `prop_*` macros.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case does not satisfy a `prop_assume!` precondition.
        Reject,
        /// A `prop_assert!` failed.
        Fail(String),
    }

    /// Runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the bounded-
            // exhaustive suites of this workspace fast in debug builds.
            ProptestConfig { cases: 64 }
        }
    }

    /// Fixed-seed splitmix64 stream used for generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Runs `test` on `config.cases` generated inputs; rejected cases are
    /// re-drawn (up to 100× the case count), failures panic with the
    /// offending input.
    pub fn run<S, F>(config: &ProptestConfig, strategy: &S, test: F)
    where
        S: Strategy,
        S::Value: Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng {
            state: 0x7071_7465_7374_2e72, // arbitrary fixed seed
        };
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        while accepted < config.cases {
            if attempts >= config.cases as u64 * 100 {
                // Matches proptest's behavior of giving up on an
                // over-restrictive prop_assume!, loudly.
                panic!(
                    "proptest shim: too many rejected cases \
                     ({accepted}/{} accepted after {attempts} attempts)",
                    config.cases
                );
            }
            attempts += 1;
            let value = strategy.generate(&mut rng);
            let repr = format!("{value:?}");
            match test(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(message)) => {
                    panic!("proptest case failed: {message}\n  input: {repr}")
                }
            }
        }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($pat:pat in $strat:expr) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(&config, &($strat), |$pat| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (0usize..10, 0usize..10)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds((a, b) in arb_pair()) {
            prop_assert!(a < 10);
            prop_assert!(b < 10, "b = {}", b);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0usize..3, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for x in &v {
                prop_assert!(*x < 3);
            }
        }

        #[test]
        fn map_and_assume(n in (0usize..100).prop_map(|x| x * 2)) {
            prop_assume!(n > 10);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Doc comments on cases must parse.
        #[test]
        fn config_override_applies(n in 0usize..5) {
            prop_assert!(n < 5);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_report_input() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            &(0usize..2),
            |n| {
                crate::prop_assert!(n < 1, "saw {}", n);
                Ok(())
            },
        );
    }
}
