//! Offline stand-in for the `rand` crate.
//!
//! The container build must work without registry access, so this crate
//! implements exactly the API subset the workspace uses: a seedable
//! pseudo-random generator (`rngs::StdRng`) and `Rng::gen_range` over
//! `usize` ranges. The generator is splitmix64 — statistically fine for
//! test-input sampling, *not* cryptographic.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value sources.
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        let span = range
            .end
            .checked_sub(range.start)
            .filter(|&s| s > 0)
            .expect("gen_range: empty range");
        // Modulo bias is negligible for the small spans used in tests.
        range.start + (self.next_u64() % span as u64) as usize
    }

    /// [`Rng::gen_range`] over a `u64` range: the full 64-bit span is
    /// honored on every target, where a detour through `usize` would
    /// truncate spans above `usize::MAX` on 32-bit platforms. For spans
    /// that fit a `usize` this draws the same value from the same
    /// generator state as `gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range_u64(&mut self, range: Range<u64>) -> u64 {
        let span = range
            .end
            .checked_sub(range.start)
            .filter(|&s| s > 0)
            .expect("gen_range_u64: empty range");
        range.start + self.next_u64() % span
    }
}

/// Concrete generators.
pub mod rngs {
    /// A splitmix64 generator, stand-in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(0..7);
            assert_eq!(x, b.gen_range(0..7));
            assert!(x < 7);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = StdRng::seed_from_u64(1).gen_range(3..3);
    }

    #[test]
    fn gen_range_u64_matches_gen_range_on_shared_spans() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.gen_range_u64(10..2_501) as usize, b.gen_range(10..2_501));
        }
    }

    #[test]
    fn gen_range_u64_covers_spans_beyond_u32() {
        // A span no 32-bit usize could represent: every sample must
        // still land inside it (a truncating implementation would wrap
        // or panic).
        let mut rng = StdRng::seed_from_u64(3);
        let lo = 1u64 << 33;
        let hi = (1u64 << 40) + 5;
        let mut distinct_high_bits = std::collections::HashSet::new();
        for _ in 0..64 {
            let x = rng.gen_range_u64(lo..hi);
            assert!((lo..hi).contains(&x));
            distinct_high_bits.insert(x >> 32);
        }
        // The draw actually spreads over the >32-bit portion of the span.
        assert!(distinct_high_bits.len() > 1);
    }
}
