//! Offline stand-in for the `rand` crate.
//!
//! The container build must work without registry access, so this crate
//! implements exactly the API subset the workspace uses: a seedable
//! pseudo-random generator (`rngs::StdRng`) and `Rng::gen_range` over
//! `usize` ranges. The generator is splitmix64 — statistically fine for
//! test-input sampling, *not* cryptographic.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value sources.
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        let span = range
            .end
            .checked_sub(range.start)
            .filter(|&s| s > 0)
            .expect("gen_range: empty range");
        // Modulo bias is negligible for the small spans used in tests.
        range.start + (self.next_u64() % span as u64) as usize
    }
}

/// Concrete generators.
pub mod rngs {
    /// A splitmix64 generator, stand-in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(0..7);
            assert_eq!(x, b.gen_range(0..7));
            assert!(x < 7);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = StdRng::seed_from_u64(1).gen_range(3..3);
    }
}
