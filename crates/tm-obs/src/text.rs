//! A tiny Prometheus text-exposition parser/checker — enough to
//! validate our own `/metrics` output: `tm-query --metrics` uses it to
//! pretty-print and to assert required series exist, and the CI smoke
//! uses that flag as its in-repo format checker.
//!
//! Checked invariants:
//!
//! * every non-comment line is `name[{labels}] value` with a parsable
//!   float value and well-formed label syntax;
//! * every sample's base name was declared by a preceding `# TYPE` line;
//! * histogram `_bucket` series are cumulative (non-decreasing in `le`
//!   order as emitted) and end with an `+Inf` bucket equal to `_count`.

use std::collections::HashMap;

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// The full sample name (including `_bucket`/`_sum`/`_count`
    /// suffixes for histogram series).
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A fully parsed exposition: samples plus declared metric types.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    /// Every sample line, in source order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: base name → kind.
    pub types: HashMap<String, String>,
}

impl Exposition {
    /// All samples with the given name.
    pub fn series(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// `true` if at least one sample with this name exists. For
    /// histograms pass the base name: declared histogram types count as
    /// present when their `_count` series exists.
    pub fn has_series(&self, name: &str) -> bool {
        self.samples.iter().any(|s| s.name == name)
            || (self.types.get(name).is_some_and(|k| k == "histogram")
                && self.samples.iter().any(|s| s.name == format!("{name}_count")))
    }
}

fn parse_labels(block: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let key = rest[..eq].trim().to_owned();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {line_no}: bad label name {key:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {line_no}: label value must be quoted"))?;
        // Scan to the closing quote, honoring backslash escapes.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err(format!("line {line_no}: dangling escape")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

fn parse_value(text: &str, line_no: usize) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse()
            .map_err(|e| format!("line {line_no}: bad value {other:?}: {e}")),
    }
}

/// The base metric name a sample belongs to (strips histogram
/// suffixes when the stripped name was declared as a histogram).
fn base_name<'a>(sample: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = sample.strip_suffix(suffix) {
            if types.get(stripped).is_some_and(|k| k == "histogram") {
                return stripped;
            }
        }
    }
    sample
}

/// Parses a full text exposition, validating structure (see the module
/// docs for the checked invariants).
pub fn parse_prometheus(text: &str) -> Result<Exposition, String> {
    let mut exposition = Exposition::default();
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without a name"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without a kind"))?;
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {line_no}: unknown TYPE kind {kind:?}"));
                }
                exposition.types.insert(name.to_owned(), kind.to_owned());
            }
            continue;
        }
        // Sample: name[{labels}] value
        let (name_part, value_part) = match line.find('{') {
            Some(open) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {line_no}: unterminated label block"))?;
                (
                    (&line[..open], parse_labels(&line[open + 1..close], line_no)?),
                    line[close + 1..].trim(),
                )
            }
            None => {
                let mut parts = line.splitn(2, char::is_whitespace);
                let name = parts.next().unwrap_or_default();
                let value = parts
                    .next()
                    .ok_or_else(|| format!("line {line_no}: sample without a value"))?;
                ((name, Vec::new()), value.trim())
            }
        };
        let (name, labels) = name_part;
        let name = name.trim();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {line_no}: bad metric name {name:?}"));
        }
        let base = base_name(name, &exposition.types);
        if !exposition.types.contains_key(base) {
            return Err(format!("line {line_no}: sample {name:?} has no TYPE declaration"));
        }
        exposition.samples.push(Sample {
            name: name.to_owned(),
            labels,
            value: parse_value(value_part, line_no)?,
        });
    }
    check_histograms(&exposition)?;
    Ok(exposition)
}

/// Validates the cumulative-bucket invariant of every declared
/// histogram: within one label set (ignoring `le`), bucket values are
/// non-decreasing in emission order, an `+Inf` bucket exists, and it
/// equals the `_count` sample.
fn check_histograms(exposition: &Exposition) -> Result<(), String> {
    for (name, kind) in &exposition.types {
        if kind != "histogram" {
            continue;
        }
        // Group buckets by their non-`le` label signature.
        let mut groups: HashMap<String, Vec<&Sample>> = HashMap::new();
        for sample in &exposition.samples {
            if sample.name == format!("{name}_bucket") {
                let signature: Vec<String> = sample
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                groups.entry(signature.join(",")).or_default().push(sample);
            }
        }
        if groups.is_empty() {
            // A declared histogram with no buckets yet is fine (no
            // observations, no series registered) unless count exists.
            continue;
        }
        for (signature, buckets) in &groups {
            let mut previous = 0.0f64;
            for bucket in buckets {
                if bucket.value < previous {
                    return Err(format!(
                        "histogram {name}{{{signature}}}: bucket values not cumulative"
                    ));
                }
                previous = bucket.value;
            }
            let last = buckets.last().expect("non-empty group");
            if last.label("le") != Some("+Inf") {
                return Err(format!("histogram {name}{{{signature}}}: missing +Inf bucket"));
            }
            let count = exposition
                .samples
                .iter()
                .find(|s| {
                    s.name == format!("{name}_count")
                        && s.labels
                            .iter()
                            .filter(|(k, _)| k != "le")
                            .map(|(k, v)| format!("{k}={v}"))
                            .collect::<Vec<_>>()
                            .join(",")
                            == *signature
                })
                .ok_or_else(|| format!("histogram {name}{{{signature}}}: missing _count"))?;
            if (last.value - count.value).abs() > 0.0 {
                return Err(format!(
                    "histogram {name}{{{signature}}}: +Inf bucket {} != count {}",
                    last.value, count.value
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counters_gauges_and_histograms() {
        let text = "\
# HELP tm_queries_total total queries
# TYPE tm_queries_total counter
tm_queries_total{result=\"ok\"} 41
tm_queries_total{result=\"aborted\"} 1
# TYPE tm_tracked_bytes gauge
tm_tracked_bytes 123456
# TYPE tm_query_seconds histogram
tm_query_seconds_bucket{le=\"0.001\"} 2
tm_query_seconds_bucket{le=\"+Inf\"} 3
tm_query_seconds_sum 0.25
tm_query_seconds_count 3
";
        let exposition = parse_prometheus(text).expect("valid exposition");
        assert_eq!(exposition.series("tm_queries_total").len(), 2);
        assert!(exposition.has_series("tm_tracked_bytes"));
        assert!(exposition.has_series("tm_query_seconds"));
        assert!(!exposition.has_series("tm_nope"));
        let ok = &exposition.series("tm_queries_total")[0];
        assert_eq!(ok.label("result"), Some("ok"));
        assert_eq!(ok.value, 41.0);
    }

    #[test]
    fn rejects_undeclared_and_malformed_samples() {
        assert!(parse_prometheus("tm_x 1\n").is_err(), "no TYPE declaration");
        assert!(
            parse_prometheus("# TYPE tm_x counter\ntm_x notanumber\n").is_err(),
            "bad value"
        );
        assert!(
            parse_prometheus("# TYPE tm_x counter\ntm_x{l=unquoted} 1\n").is_err(),
            "unquoted label"
        );
        assert!(
            parse_prometheus("# TYPE tm_x wibble\n").is_err(),
            "unknown kind"
        );
    }

    #[test]
    fn rejects_non_cumulative_histograms() {
        let text = "\
# TYPE tm_h histogram
tm_h_bucket{le=\"1\"} 5
tm_h_bucket{le=\"2\"} 3
tm_h_bucket{le=\"+Inf\"} 5
tm_h_sum 9
tm_h_count 5
";
        assert!(parse_prometheus(text).unwrap_err().contains("not cumulative"));
        let text = "\
# TYPE tm_h histogram
tm_h_bucket{le=\"1\"} 5
tm_h_bucket{le=\"+Inf\"} 5
tm_h_sum 9
tm_h_count 6
";
        assert!(parse_prometheus(text).unwrap_err().contains("!= count"));
    }
}
