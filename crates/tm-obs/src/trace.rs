//! Phase spans: named engine phases ([`Phase`]), the RAII
//! [`PhaseTimer`], and the per-query [`TraceRecord`] a thread-local
//! recorder accumulates.
//!
//! Every recorded span goes to the **global** per-phase histogram
//! (`tm_phase_seconds{phase=…}`); when a recorder is installed on the
//! recording thread ([`with_recorder`] / [`ensure_recorder`]) the span
//! is *also* added to the per-query phase totals, and — if event capture
//! was requested — appended to a bounded event list (capacity
//! [`TRACE_EVENT_CAP`]; overflow increments
//! [`TraceRecord::dropped_events`] instead of allocating further).
//!
//! The recorder is thread-local on purpose: engine phases are recorded
//! from the query's coordinating thread (the BFS level loop, artifact
//! builds, and lock/budget waits all run there), so a per-query trace
//! needs no cross-thread synchronization. Worker-side timings (pool
//! queue wait) go to the global histograms only.

use std::cell::RefCell;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::registry::{global_histogram, Histogram, Unit};
use crate::obs_enabled;

/// A named phase of query execution. The engine phases are recorded by
/// `tm-automata`; the wait phases by `tm-service`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Phase {
    /// Lazy spec-row interning inside `SpecCache` (safety queries on the
    /// default lazy path).
    SpecIntern,
    /// One BFS level of the product engine (span value = frontier size
    /// entering the level).
    BfsLevel,
    /// The stripe-parallel dedup merge closing one parallel BFS level.
    DedupMerge,
    /// Compiling a TM's run graph (liveness artifact build).
    RunGraphBuild,
    /// The mask-filtered Tarjan SCC search of a loop query.
    SccSearch,
    /// Extracting a concrete lasso witness from a found loop.
    LassoExtract,
    /// Dispatching one parallel region to the executor (submit + drain,
    /// as seen by the coordinating thread).
    PoolDispatch,
    /// Time a pool job spent queued before a worker picked it up
    /// (worker-side; global histogram only, never in a per-query trace).
    PoolQueueWait,
    /// Waiting to lock the session mutex of the query's instance size.
    SessionLockWait,
    /// Waiting in budget admission for pinned bytes to drain.
    BudgetAdmitWait,
    /// Waiting in budget settle for the final charge to fit.
    BudgetSettleWait,
    /// Loading an artifact from the on-disk store (read + verify +
    /// decode; span value = file size in bytes).
    StoreLoad,
    /// Saving an artifact to the on-disk store (encode + atomic write;
    /// span value = file size in bytes).
    StoreSave,
}

impl Phase {
    /// Number of phases ( = the length of a [`PhaseNanos`] breakdown).
    pub const COUNT: usize = 13;

    /// Every phase, in `repr` order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::SpecIntern,
        Phase::BfsLevel,
        Phase::DedupMerge,
        Phase::RunGraphBuild,
        Phase::SccSearch,
        Phase::LassoExtract,
        Phase::PoolDispatch,
        Phase::PoolQueueWait,
        Phase::SessionLockWait,
        Phase::BudgetAdmitWait,
        Phase::BudgetSettleWait,
        Phase::StoreLoad,
        Phase::StoreSave,
    ];

    /// The stable snake_case name used in metric labels, trace JSON, and
    /// the phase-breakdown columns.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SpecIntern => "spec_intern",
            Phase::BfsLevel => "bfs_level",
            Phase::DedupMerge => "dedup_merge",
            Phase::RunGraphBuild => "run_graph_build",
            Phase::SccSearch => "scc_search",
            Phase::LassoExtract => "lasso_extract",
            Phase::PoolDispatch => "pool_dispatch",
            Phase::PoolQueueWait => "pool_queue_wait",
            Phase::SessionLockWait => "session_lock_wait",
            Phase::BudgetAdmitWait => "budget_admit_wait",
            Phase::BudgetSettleWait => "budget_settle_wait",
            Phase::StoreLoad => "store_load",
            Phase::StoreSave => "store_save",
        }
    }

    /// Parses a [`Phase::name`] back (wire decoding).
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Per-phase nanosecond totals, indexed by `Phase as usize`.
pub type PhaseNanos = [u64; Phase::COUNT];

/// One captured span in a per-query trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Which phase.
    pub phase: Phase,
    /// Start offset from the trace origin, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Phase-specific magnitude (frontier size for
    /// [`Phase::BfsLevel`]/[`Phase::DedupMerge`], rows interned for
    /// [`Phase::SpecIntern`], tasks for [`Phase::PoolDispatch`], 0
    /// otherwise).
    pub value: u64,
}

/// What a per-query recorder collected: phase totals, and optionally
/// the individual spans.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TraceRecord {
    /// Nanoseconds per phase (always collected while a recorder is
    /// installed).
    pub phase_ns: PhaseNanos,
    /// Captured spans, in record order (empty unless event capture was
    /// requested; bounded by [`TRACE_EVENT_CAP`]).
    pub events: Vec<TraceEvent>,
    /// Spans that did not fit in the event buffer.
    pub dropped_events: u64,
}

impl TraceRecord {
    /// Total recorded nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }
}

/// Capacity of a trace's event buffer; spans past it are counted in
/// [`TraceRecord::dropped_events`] rather than allocated.
pub const TRACE_EVENT_CAP: usize = 512;

struct Collector {
    origin: Instant,
    record: TraceRecord,
    capture_events: bool,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

fn phase_histogram(phase: Phase) -> &'static Histogram {
    static HISTOGRAMS: OnceLock<Vec<Histogram>> = OnceLock::new();
    let all = HISTOGRAMS.get_or_init(|| {
        Phase::ALL
            .into_iter()
            .map(|p| {
                global_histogram(
                    "tm_phase_seconds",
                    "Time spent per engine/service phase",
                    &[("phase", p.name())],
                    Unit::Nanos,
                )
            })
            .collect()
    });
    &all[phase as usize]
}

/// Records one finished span: into the global per-phase histogram, and
/// into the thread's recorder if one is installed. Called by
/// [`PhaseTimer`]; direct use is for sites that measure durations
/// themselves (condvar waits).
pub fn record_phase(phase: Phase, duration: Duration, value: u64) {
    let dur_ns = duration.as_nanos().min(u128::from(u64::MAX)) as u64;
    phase_histogram(phase).observe(dur_ns);
    COLLECTOR.with(|cell| {
        if let Some(collector) = cell.borrow_mut().as_mut() {
            collector.record.phase_ns[phase as usize] += dur_ns;
            if collector.capture_events {
                if collector.record.events.len() < TRACE_EVENT_CAP {
                    let start_ns = collector.origin.elapsed().as_nanos().min(u128::from(u64::MAX))
                        as u64;
                    collector.record.events.push(TraceEvent {
                        phase,
                        start_ns: start_ns.saturating_sub(dur_ns),
                        dur_ns,
                        value,
                    });
                } else {
                    collector.record.dropped_events += 1;
                }
            }
        }
    });
}

/// `true` if this thread currently has a recorder installed.
pub fn recorder_active() -> bool {
    COLLECTOR.with(|cell| cell.borrow().is_some())
}

/// The recorder's phase totals so far (`None` without a recorder).
/// Callers that run inside someone else's recorder — the session query
/// inside the service's per-query recorder — diff two snapshots to get
/// their own share.
pub fn phase_totals() -> Option<PhaseNanos> {
    COLLECTOR.with(|cell| cell.borrow().as_ref().map(|c| c.record.phase_ns))
}

/// Runs `f` with a fresh recorder installed on this thread and returns
/// its result plus the collected [`TraceRecord`]. The previous recorder
/// (if any) is suspended for the duration and restored afterwards, so
/// nesting is safe (the inner record is *not* folded into the outer
/// one).
pub fn with_recorder<R>(capture_events: bool, f: impl FnOnce() -> R) -> (R, TraceRecord) {
    let previous = COLLECTOR.with(|cell| {
        cell.borrow_mut().replace(Collector {
            origin: Instant::now(),
            record: TraceRecord::default(),
            capture_events,
        })
    });
    let result = f();
    let collector = COLLECTOR.with(|cell| {
        let mut slot = cell.borrow_mut();
        let taken = slot.take();
        *slot = previous;
        taken
    });
    let record = collector.map(|c| c.record).unwrap_or_default();
    (result, record)
}

/// Runs `f` under this thread's existing recorder if one is installed
/// (returning `None` for the record — the outer owner keeps it), or
/// under a fresh one otherwise ([`with_recorder`]). This is what the
/// session layer uses so phase totals flow to whichever recorder is
/// outermost, without double-installing under the service.
pub fn ensure_recorder<R>(f: impl FnOnce() -> R) -> (R, Option<TraceRecord>) {
    if recorder_active() || !obs_enabled() {
        (f(), None)
    } else {
        let (result, record) = with_recorder(false, f);
        (result, Some(record))
    }
}

/// An RAII span: measures from construction to drop and records via
/// [`record_phase`]. When instrumentation is disabled
/// ([`crate::obs_enabled`] is `false`) construction is one atomic load
/// and drop is a no-op — no clock reads.
#[must_use = "a PhaseTimer records on drop; binding it to _ ends the span immediately"]
#[derive(Debug)]
pub struct PhaseTimer {
    phase: Phase,
    value: u64,
    start: Option<Instant>,
    /// Whether the span pushed a profiler frame (the thread was
    /// registered with [`crate::profile`]) and owes a pop on drop.
    frame: bool,
}

impl PhaseTimer {
    /// Starts a span (no-op when instrumentation is disabled). On a
    /// thread registered with the sampling profiler
    /// ([`crate::profile::register_thread`]) the phase is also published
    /// as the thread's current frame for the span's duration.
    pub fn start(phase: Phase) -> Self {
        let start = obs_enabled().then(Instant::now);
        PhaseTimer {
            phase,
            value: 0,
            frame: start.is_some() && crate::profile::push_phase(phase),
            start,
        }
    }

    /// Attaches a phase-specific magnitude (see [`TraceEvent::value`]).
    pub fn with_value(mut self, value: u64) -> Self {
        self.value = value;
        self
    }

    /// Updates the magnitude after construction.
    pub fn set_value(&mut self, value: u64) {
        self.value = value;
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn stop(self) {}
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if self.frame {
            crate::profile::pop_phase();
        }
        if let Some(start) = self.start {
            record_phase(self.phase, start.elapsed(), self.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global enable flag (the flag is
    /// process-wide; the test harness is parallel).
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn recorder_collects_totals_and_events() {
        let _flag = flag_lock();
        crate::set_obs_enabled(true);
        let ((), record) = with_recorder(true, || {
            record_phase(Phase::BfsLevel, Duration::from_nanos(100), 7);
            record_phase(Phase::BfsLevel, Duration::from_nanos(50), 3);
            record_phase(Phase::DedupMerge, Duration::from_nanos(25), 3);
        });
        assert_eq!(record.phase_ns[Phase::BfsLevel as usize], 150);
        assert_eq!(record.phase_ns[Phase::DedupMerge as usize], 25);
        assert_eq!(record.total_ns(), 175);
        assert_eq!(record.events.len(), 3);
        assert_eq!(record.events[0].value, 7);
        assert_eq!(record.dropped_events, 0);
    }

    #[test]
    fn event_buffer_is_bounded() {
        let _flag = flag_lock();
        crate::set_obs_enabled(true);
        let ((), record) = with_recorder(true, || {
            for _ in 0..TRACE_EVENT_CAP + 10 {
                record_phase(Phase::SpecIntern, Duration::from_nanos(1), 0);
            }
        });
        assert_eq!(record.events.len(), TRACE_EVENT_CAP);
        assert_eq!(record.dropped_events, 10);
        assert_eq!(record.phase_ns[Phase::SpecIntern as usize], (TRACE_EVENT_CAP + 10) as u64);
    }

    #[test]
    fn totals_only_recorder_allocates_no_events() {
        let _flag = flag_lock();
        crate::set_obs_enabled(true);
        let ((), record) = with_recorder(false, || {
            record_phase(Phase::SccSearch, Duration::from_nanos(42), 0);
        });
        assert!(record.events.is_empty());
        assert_eq!(record.phase_ns[Phase::SccSearch as usize], 42);
    }

    #[test]
    fn nested_recorders_do_not_leak_into_each_other() {
        let _flag = flag_lock();
        crate::set_obs_enabled(true);
        let ((), outer) = with_recorder(false, || {
            record_phase(Phase::SessionLockWait, Duration::from_nanos(10), 0);
            let ((), inner) = with_recorder(false, || {
                record_phase(Phase::SccSearch, Duration::from_nanos(99), 0);
            });
            assert_eq!(inner.phase_ns[Phase::SccSearch as usize], 99);
            record_phase(Phase::SessionLockWait, Duration::from_nanos(5), 0);
        });
        assert_eq!(outer.phase_ns[Phase::SessionLockWait as usize], 15);
        assert_eq!(outer.phase_ns[Phase::SccSearch as usize], 0, "inner spans stay inner");
    }

    #[test]
    fn ensure_recorder_defers_to_an_installed_one() {
        let _flag = flag_lock();
        crate::set_obs_enabled(true);
        let ((), outer) = with_recorder(false, || {
            let (_, inner) = ensure_recorder(|| {
                record_phase(Phase::RunGraphBuild, Duration::from_nanos(30), 0);
            });
            assert!(inner.is_none(), "existing recorder keeps the spans");
        });
        assert_eq!(outer.phase_ns[Phase::RunGraphBuild as usize], 30);
        // Without an outer recorder, ensure_recorder returns its own.
        let (_, own) = ensure_recorder(|| {
            record_phase(Phase::RunGraphBuild, Duration::from_nanos(11), 0);
        });
        assert_eq!(own.expect("fresh recorder").phase_ns[Phase::RunGraphBuild as usize], 11);
    }

    #[test]
    fn phase_names_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }

    #[test]
    fn disabled_timer_records_nothing() {
        let _flag = flag_lock();
        crate::set_obs_enabled(false);
        let ((), record) = with_recorder(true, || {
            PhaseTimer::start(Phase::BfsLevel).with_value(9).stop();
        });
        crate::set_obs_enabled(true);
        assert_eq!(record.total_ns(), 0);
        assert!(record.events.is_empty());
    }
}
