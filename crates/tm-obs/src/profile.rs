//! The cooperative sampling profiler: per-thread frame slots and the
//! ~97 Hz sampler that reads them.
//!
//! Instead of interrupting threads (no signals, no unsafe stack walks —
//! the workspace is std-only and `tm-obs` forbids unsafe), every thread
//! that wants to be profiled *cooperates*: it registers a `Slot` via
//! [`register_thread`] and publishes its current activity into a small
//! fixed-depth stack of atomic frames. Publication piggybacks on the
//! instrumentation that already exists — every [`crate::PhaseTimer`]
//! pushes its [`Phase`] on construction and pops it on drop, and pool
//! workers wrap each job in a [`task_frame`] — so a profiled thread's
//! stack reads like `worker-3: task / run_graph_build`.
//!
//! The opt-in sampler thread ([`start_sampler`]) wakes every
//! [`SAMPLE_PERIOD_MICROS`] and, per tick:
//!
//! * folds each registered thread's current stack into a
//!   *folded-stack* line (`worker-3;task;run_graph_build`), counting
//!   samples per distinct stack — the flamegraph collapsed format;
//! * observes the number of busy pool workers into the
//!   `tm_parallelism` histogram, the direct measurement of "how many
//!   cores does a query actually keep busy";
//! * counts idle threads under an explicit `idle` frame so per-thread
//!   utilization (busy / total samples) falls out of the same data.
//!
//! Reads are racy by design: a sampler may catch a stack mid-push and
//! see a frame early or late by one tick. A sampling profiler only
//! needs statistical truth; the determinism contract is untouched
//! because nothing here feeds back into the engines (pinned by the
//! sampler-on ≡ sampler-off conformance tests).
//!
//! Cost model: with `TM_OBS=off` nothing is published and
//! [`register_thread`] hands back an inert guard — the hot-path cost is
//! the same single relaxed load the rest of `tm-obs` pays. Enabled, a
//! frame push/pop is two relaxed stores plus one load on data owned by
//! the pushing thread.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::obs_enabled;
use crate::registry::{global_histogram, Histogram, Unit};
use crate::trace::Phase;

/// Maximum published stack depth per thread; deeper nesting keeps
/// counting depth (pops stay balanced) but publishes no further frames.
/// Engine spans nest at most three deep today (task → dispatch → phase).
pub const PROFILE_MAX_DEPTH: usize = 8;

/// Sampler period: 10 309 µs ≈ 97 Hz. Deliberately a prime number of
/// microseconds (and not a divisor of common timer periods) so the
/// sampler does not phase-lock with periodic engine work.
pub const SAMPLE_PERIOD_MICROS: u64 = 10_309;

// Frame encoding inside a slot's atomic stack.
const FRAME_EMPTY: usize = 0;
const FRAME_TASK: usize = 1;
const FRAME_PHASE_BASE: usize = 2;

/// What kind of thread a profile slot belongs to (the root frame of its
/// folded stacks).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadKind {
    /// A `WorkerPool` worker.
    Worker,
    /// An HTTP connection/batch thread in `tm-serve`.
    Http,
    /// A thread driving a `Verifier` session directly (benches, the
    /// profiling examples).
    Session,
}

impl ThreadKind {
    /// The stable label used as the folded-stack root (`worker-3`).
    pub fn label(self) -> &'static str {
        match self {
            ThreadKind::Worker => "worker",
            ThreadKind::Http => "http",
            ThreadKind::Session => "session",
        }
    }
}

/// One thread's published stack: a fixed array of atomic frames plus a
/// depth counter. Only the owning thread writes; the sampler reads
/// racily.
struct Slot {
    kind: ThreadKind,
    ordinal: usize,
    /// `false` once the owning thread unregistered; inactive slots are
    /// skipped by the sampler and reused by the next registration of the
    /// same kind (bounding folded-stack cardinality under HTTP thread
    /// churn).
    active: AtomicBool,
    depth: AtomicUsize,
    frames: [AtomicUsize; PROFILE_MAX_DEPTH],
}

impl Slot {
    fn new(kind: ThreadKind, ordinal: usize) -> Self {
        Slot {
            kind,
            ordinal,
            active: AtomicBool::new(true),
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicUsize::new(FRAME_EMPTY)),
        }
    }

    fn reset(&self) {
        self.depth.store(0, Ordering::Relaxed);
        for frame in &self.frames {
            frame.store(FRAME_EMPTY, Ordering::Relaxed);
        }
    }
}

fn slots() -> &'static Mutex<Vec<Arc<Slot>>> {
    static SLOTS: OnceLock<Mutex<Vec<Arc<Slot>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_slots() -> std::sync::MutexGuard<'static, Vec<Arc<Slot>>> {
    slots().lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Slot>>> = const { RefCell::new(None) };
}

/// Registers the calling thread with the profiler until the returned
/// guard drops. With `TM_OBS=off` the guard is inert: no slot is
/// allocated and nothing is ever published.
#[must_use = "the thread is profiled only while the guard lives"]
pub fn register_thread(kind: ThreadKind) -> ThreadRegistration {
    if !obs_enabled() {
        return ThreadRegistration { slot: None };
    }
    let slot = {
        let mut table = lock_slots();
        // Reuse the lowest-ordinal inactive slot of this kind so thread
        // churn (HTTP connections come and go) maps onto a bounded set
        // of folded-stack roots.
        let reused = table
            .iter()
            .filter(|s| s.kind == kind && !s.active.load(Ordering::Relaxed))
            .min_by_key(|s| s.ordinal)
            .cloned();
        match reused {
            Some(slot) => {
                slot.reset();
                slot.active.store(true, Ordering::Relaxed);
                slot
            }
            None => {
                let ordinal = table.iter().filter(|s| s.kind == kind).count();
                let slot = Arc::new(Slot::new(kind, ordinal));
                table.push(Arc::clone(&slot));
                slot
            }
        }
    };
    CURRENT.with(|cell| *cell.borrow_mut() = Some(Arc::clone(&slot)));
    ThreadRegistration { slot: Some(slot) }
}

/// RAII handle of [`register_thread`]; unregisters (and stops all
/// publication from) the thread on drop.
#[derive(Debug)]
pub struct ThreadRegistration {
    slot: Option<Arc<Slot>>,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("kind", &self.kind)
            .field("ordinal", &self.ordinal)
            .finish()
    }
}

impl ThreadRegistration {
    /// `true` if the thread actually got a slot (`false` under
    /// `TM_OBS=off`).
    pub fn is_registered(&self) -> bool {
        self.slot.is_some()
    }
}

impl Drop for ThreadRegistration {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            CURRENT.with(|cell| *cell.borrow_mut() = None);
            slot.reset();
            slot.active.store(false, Ordering::Relaxed);
        }
    }
}

/// Pushes a frame onto the calling thread's slot. Returns `true` iff a
/// frame was pushed (a matching [`pop_frame`] is then owed).
fn push_frame(frame: usize) -> bool {
    CURRENT.with(|cell| {
        let borrow = cell.borrow();
        let Some(slot) = borrow.as_ref() else {
            return false;
        };
        let depth = slot.depth.load(Ordering::Relaxed);
        if depth < PROFILE_MAX_DEPTH {
            slot.frames[depth].store(frame, Ordering::Relaxed);
        }
        // The depth bump is released so a sampler that sees the new
        // depth also sees the frame written above.
        slot.depth.store(depth + 1, Ordering::Release);
        true
    })
}

/// Pops the frame a successful [`push_frame`] published.
fn pop_frame() {
    CURRENT.with(|cell| {
        let borrow = cell.borrow();
        let Some(slot) = borrow.as_ref() else {
            return;
        };
        let depth = slot.depth.load(Ordering::Relaxed);
        if depth == 0 {
            return; // unbalanced pop; never happens through the guards
        }
        slot.depth.store(depth - 1, Ordering::Release);
        if depth - 1 < PROFILE_MAX_DEPTH {
            slot.frames[depth - 1].store(FRAME_EMPTY, Ordering::Relaxed);
        }
    });
}

/// Pushes the [`Phase`] frame of a starting `PhaseTimer` (crate-internal
/// hook). Returns whether a pop is owed.
pub(crate) fn push_phase(phase: Phase) -> bool {
    push_frame(FRAME_PHASE_BASE + phase as usize)
}

/// Pops the frame pushed by [`push_phase`] (crate-internal hook).
pub(crate) fn pop_phase() {
    pop_frame();
}

/// Marks the calling thread busy on a task for the guard's lifetime —
/// pool workers wrap each dequeued job in one, which is what makes a
/// worker's sample read `busy` (and feeds `tm_parallelism`) even between
/// finer-grained phase spans. No-op without a registered slot or with
/// `TM_OBS=off`.
#[must_use = "the task frame is published only while the guard lives"]
#[derive(Debug)]
pub struct TaskFrame {
    pushed: bool,
}

/// Publishes a [`TaskFrame`] on the calling thread.
pub fn task_frame() -> TaskFrame {
    TaskFrame {
        pushed: obs_enabled() && push_frame(FRAME_TASK),
    }
}

impl Drop for TaskFrame {
    fn drop(&mut self) {
        if self.pushed {
            pop_frame();
        }
    }
}

fn frame_name(frame: usize) -> &'static str {
    match frame {
        FRAME_EMPTY => "",
        FRAME_TASK => "task",
        _ => Phase::ALL
            .get(frame - FRAME_PHASE_BASE)
            .map(|p| p.name())
            .unwrap_or(""),
    }
}

/// Accumulated profile state: total sampler ticks and samples per
/// distinct folded stack. Snapshots are *cumulative* — diff two
/// ([`ProfileSnapshot::folded_since`]) to get a window.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ProfileSnapshot {
    /// Sampler ticks taken so far.
    pub samples: u64,
    /// Samples per folded stack (`worker-0;task;bfs_level` → count).
    pub folded: BTreeMap<String, u64>,
}

impl ProfileSnapshot {
    /// The folded-stack text (flamegraph collapsed format: one
    /// `stack count` line per distinct stack) for the window between an
    /// earlier snapshot and this one.
    pub fn folded_since(&self, earlier: &ProfileSnapshot) -> String {
        let mut out = String::new();
        for (stack, &count) in &self.folded {
            let before = earlier.folded.get(stack).copied().unwrap_or(0);
            if count > before {
                out.push_str(&format!("{stack} {}\n", count - before));
            }
        }
        out
    }
}

fn profile_data() -> &'static Mutex<ProfileSnapshot> {
    static DATA: OnceLock<Mutex<ProfileSnapshot>> = OnceLock::new();
    DATA.get_or_init(|| Mutex::new(ProfileSnapshot::default()))
}

/// The cumulative profile accumulated by every sampler run so far.
pub fn profile_snapshot() -> ProfileSnapshot {
    profile_data().lock().unwrap_or_else(|poisoned| poisoned.into_inner()).clone()
}

fn parallelism_histogram() -> &'static Histogram {
    static HISTOGRAM: OnceLock<Histogram> = OnceLock::new();
    HISTOGRAM.get_or_init(|| {
        global_histogram(
            "tm_parallelism",
            "Busy pool workers per profiler sample",
            &[],
            Unit::None,
        )
    })
}

/// One sampler tick over `slots`, folded into `data`.
fn sample_once(data: &Mutex<ProfileSnapshot>) {
    let slots: Vec<Arc<Slot>> = lock_slots()
        .iter()
        .filter(|s| s.active.load(Ordering::Relaxed))
        .cloned()
        .collect();
    let mut busy_workers = 0u64;
    let mut stacks: Vec<String> = Vec::with_capacity(slots.len());
    for slot in &slots {
        let depth = slot.depth.load(Ordering::Acquire).min(PROFILE_MAX_DEPTH);
        let mut stack = format!("{}-{}", slot.kind.label(), slot.ordinal);
        if depth == 0 {
            stack.push_str(";idle");
        } else {
            if slot.kind == ThreadKind::Worker {
                busy_workers += 1;
            }
            for frame in slot.frames.iter().take(depth) {
                let name = frame_name(frame.load(Ordering::Relaxed));
                if !name.is_empty() {
                    stack.push(';');
                    stack.push_str(name);
                }
            }
        }
        stacks.push(stack);
    }
    parallelism_histogram().observe(busy_workers);
    let mut data = data.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    data.samples += 1;
    for stack in stacks {
        *data.folded.entry(stack).or_insert(0) += 1;
    }
}

struct SamplerHandle {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

fn sampler_state() -> &'static Mutex<Option<SamplerHandle>> {
    static STATE: OnceLock<Mutex<Option<SamplerHandle>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// Starts the sampler thread. Idempotent: returns `true` if this call
/// started it, `false` if it was already running.
pub fn start_sampler() -> bool {
    let mut state = sampler_state().lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if state.is_some() {
        return false;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("tm-obs-sampler".to_owned())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                sample_once(profile_data());
                std::thread::sleep(Duration::from_micros(SAMPLE_PERIOD_MICROS));
            }
        })
        .expect("spawning the sampler thread");
    *state = Some(SamplerHandle { stop, thread });
    true
}

/// Stops and joins the sampler thread. Idempotent: returns `true` if
/// this call stopped it, `false` if it was not running. Accumulated
/// profile data is kept.
pub fn stop_sampler() -> bool {
    let handle = {
        let mut state =
            sampler_state().lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        state.take()
    };
    match handle {
        Some(handle) => {
            handle.stop.store(true, Ordering::Relaxed);
            let _ = handle.thread.join();
            true
        }
        None => false,
    }
}

/// `true` while the sampler thread is running.
pub fn sampler_running() -> bool {
    sampler_state().lock().unwrap_or_else(|poisoned| poisoned.into_inner()).is_some()
}

/// Profiles the next `window` of wall clock and returns the folded-stack
/// text for it: ensures the sampler is running (leaving it running if it
/// already was), sleeps the window on the calling thread, and diffs the
/// cumulative snapshots around it. This is what `GET /v1/profile`
/// serves.
pub fn collect_profile(window: Duration) -> String {
    start_sampler();
    let before = profile_snapshot();
    std::thread::sleep(window);
    let after = profile_snapshot();
    after.folded_since(&before)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global slot table / enable flag.
    fn profile_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn obs_off_registers_nothing_and_publishes_nothing() {
        let _guard = profile_lock();
        crate::set_obs_enabled(false);
        let registration = register_thread(ThreadKind::Worker);
        assert!(!registration.is_registered());
        let frame = task_frame();
        // No slot, no publication: the sampler would see no active slot
        // from this thread.
        CURRENT.with(|cell| assert!(cell.borrow().is_none()));
        drop(frame);
        drop(registration);
        crate::set_obs_enabled(true);
    }

    #[test]
    fn frames_push_and_pop_through_the_guards() {
        let _guard = profile_lock();
        crate::set_obs_enabled(true);
        let registration = register_thread(ThreadKind::Session);
        assert!(registration.is_registered());
        {
            let _task = task_frame();
            let _timer = crate::PhaseTimer::start(Phase::RunGraphBuild);
            CURRENT.with(|cell| {
                let borrow = cell.borrow();
                let slot = borrow.as_ref().expect("registered");
                assert_eq!(slot.depth.load(Ordering::Relaxed), 2);
                assert_eq!(frame_name(slot.frames[0].load(Ordering::Relaxed)), "task");
                assert_eq!(
                    frame_name(slot.frames[1].load(Ordering::Relaxed)),
                    "run_graph_build"
                );
            });
        }
        CURRENT.with(|cell| {
            let borrow = cell.borrow();
            assert_eq!(borrow.as_ref().unwrap().depth.load(Ordering::Relaxed), 0);
        });
    }

    #[test]
    fn overdeep_stacks_stay_balanced() {
        let _guard = profile_lock();
        crate::set_obs_enabled(true);
        let _registration = register_thread(ThreadKind::Session);
        let frames: Vec<TaskFrame> = (0..PROFILE_MAX_DEPTH + 3).map(|_| task_frame()).collect();
        CURRENT.with(|cell| {
            let borrow = cell.borrow();
            let slot = borrow.as_ref().unwrap();
            assert_eq!(slot.depth.load(Ordering::Relaxed), PROFILE_MAX_DEPTH + 3);
        });
        drop(frames);
        CURRENT.with(|cell| {
            let borrow = cell.borrow();
            assert_eq!(borrow.as_ref().unwrap().depth.load(Ordering::Relaxed), 0);
        });
    }

    #[test]
    fn unregistering_frees_the_ordinal_for_reuse() {
        let _guard = profile_lock();
        crate::set_obs_enabled(true);
        let first = register_thread(ThreadKind::Http);
        let first_ordinal = first.slot.as_ref().unwrap().ordinal;
        drop(first);
        let second = register_thread(ThreadKind::Http);
        assert_eq!(
            second.slot.as_ref().unwrap().ordinal,
            first_ordinal,
            "a freed slot is reused before a new ordinal is minted"
        );
    }

    #[test]
    fn sampler_start_stop_are_idempotent() {
        let _guard = profile_lock();
        crate::set_obs_enabled(true);
        assert!(start_sampler());
        assert!(!start_sampler(), "second start is a no-op");
        assert!(sampler_running());
        assert!(stop_sampler());
        assert!(!stop_sampler(), "second stop is a no-op");
        assert!(!sampler_running());
    }

    #[test]
    fn sampler_folds_stacks_and_diffs_windows() {
        let _guard = profile_lock();
        crate::set_obs_enabled(true);
        let _registration = register_thread(ThreadKind::Session);
        let _task = task_frame();
        let _timer = crate::PhaseTimer::start(Phase::SccSearch);
        let before = profile_snapshot();
        // Drive ticks directly instead of racing a real sampler thread.
        for _ in 0..5 {
            sample_once(profile_data());
        }
        let after = profile_snapshot();
        assert_eq!(after.samples, before.samples + 5);
        let folded = after.folded_since(&before);
        let line = folded
            .lines()
            .find(|l| l.starts_with("session-") && l.contains("task;scc_search"))
            .expect("the published stack shows up in the folded text");
        let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(count, 5);
        // A second diff over an empty window is empty.
        assert!(after.folded_since(&after).is_empty());
    }
}
