//! The lifecycle event journal: a bounded ring buffer of structured
//! service events (`build`/`evict`/`demote`/`promote`/`abort`/
//! `admission_wait`) with sequence cursors for tail-following.
//!
//! Writers never contend globally: a [`Journal::publish`] claims a
//! sequence number with one atomic `fetch_add`, then writes its event
//! under that *slot's* mutex only — two writers block each other only
//! when the ring has wrapped all the way around between them. Readers
//! ([`Journal::read_from`]) pass the cursor a previous read returned and
//! get every event since, in sequence order, with an explicit
//! [`JournalRead::dropped`] count when they lagged far enough for the
//! ring to overwrite history — events are never silently skipped.
//!
//! A read only returns the *contiguous* run of events starting at its
//! cursor: a slot whose write is still in flight (sequence claimed,
//! event not yet stored) ends the run, and the next read picks it up.
//! That is what makes cursors loss-free under concurrent writers — a
//! reader never steps its cursor over an event it has not seen.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Capacity of the process-global journal ([`global_journal`]).
pub const JOURNAL_CAP: usize = 1024;

/// What happened (the `kind` field of the event schema).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// An artifact was compiled (a cache miss with no on-disk copy).
    Build,
    /// An artifact was evicted from memory and discarded.
    Evict,
    /// An artifact was evicted from memory and written to the store.
    Demote,
    /// An on-disk artifact was loaded back instead of rebuilding.
    Promote,
    /// A query aborted (budget, deadline, cancellation, or panic).
    Abort,
    /// A query waited in budget admission before starting.
    AdmissionWait,
}

impl EventKind {
    /// Every kind, in declaration order.
    pub const ALL: [EventKind; 6] = [
        EventKind::Build,
        EventKind::Evict,
        EventKind::Demote,
        EventKind::Promote,
        EventKind::Abort,
        EventKind::AdmissionWait,
    ];

    /// The stable snake_case name used on the wire.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Build => "build",
            EventKind::Evict => "evict",
            EventKind::Demote => "demote",
            EventKind::Promote => "promote",
            EventKind::Abort => "abort",
            EventKind::AdmissionWait => "admission_wait",
        }
    }

    /// Parses a [`EventKind::name`] back.
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One journal entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JournalEvent {
    /// What happened.
    pub kind: EventKind,
    /// What it happened to (an artifact key like
    /// `run_graph/TL2/3x2`, or an instance size for admission events).
    pub key: String,
    /// The request id of the batch that caused it (empty when no
    /// request context exists, e.g. warm start).
    pub request_id: String,
    /// Size in bytes where meaningful (artifact heap estimate or file
    /// size), else 0.
    pub bytes: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub at_unix_ms: u64,
}

impl JournalEvent {
    /// An event stamped with the current wall clock.
    pub fn now(kind: EventKind, key: impl Into<String>, request_id: impl Into<String>, bytes: u64) -> Self {
        let at_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        JournalEvent {
            kind,
            key: key.into(),
            request_id: request_id.into(),
            bytes,
            at_unix_ms,
        }
    }
}

/// What a cursor read returned.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JournalRead {
    /// Pass this as the next read's cursor to continue where this one
    /// stopped.
    pub next_cursor: u64,
    /// Events the ring overwrote before this reader got to them (0 for
    /// a reader keeping up).
    pub dropped: u64,
    /// The contiguous events since the cursor, each with its sequence
    /// number, in sequence order.
    pub events: Vec<(u64, JournalEvent)>,
}

/// A bounded ring-buffer journal (see the module docs for the
/// concurrency design).
pub struct Journal {
    head: AtomicU64,
    slots: Vec<Mutex<Option<(u64, JournalEvent)>>>,
}

impl Journal {
    /// An empty journal retaining the last `capacity` events
    /// (`capacity` is clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Journal {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The next sequence number to be assigned ( = total events ever
    /// published once all in-flight writes land).
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Appends an event and returns its sequence number.
    pub fn publish(&self, event: JournalEvent) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard =
            self.slots[slot].lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        *guard = Some((seq, event));
        seq
    }

    /// Reads every retained event with sequence `>= cursor`, stopping at
    /// the first gap (an overwritten or in-flight slot). A fresh tail
    /// starts with `cursor = 0`; to only follow *new* events, start with
    /// `cursor =` [`Journal::head`].
    pub fn read_from(&self, cursor: u64) -> JournalRead {
        let head = self.head();
        let capacity = self.slots.len() as u64;
        let oldest = head.saturating_sub(capacity);
        let start = cursor.max(oldest);
        let dropped = start - cursor.min(start);
        let mut events = Vec::new();
        let mut next = start;
        while next < head {
            let slot = (next % capacity) as usize;
            let stored = self.slots[slot]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .clone();
            match stored {
                // Only the exact expected sequence continues the run: a
                // stale value means the writer that claimed `next` has
                // not stored yet, a newer one means we lost the race
                // with a wraparound — either way the reader stops and
                // resumes here next time.
                Some((seq, event)) if seq == next => {
                    events.push((seq, event));
                    next += 1;
                }
                _ => break,
            }
        }
        JournalRead {
            next_cursor: next,
            dropped,
            events,
        }
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.capacity())
            .field("head", &self.head())
            .finish()
    }
}

/// The process-global journal the service publishes into and
/// `GET /v1/events` reads from.
pub fn global_journal() -> &'static Journal {
    static GLOBAL: OnceLock<Journal> = OnceLock::new();
    GLOBAL.get_or_init(|| Journal::with_capacity(JOURNAL_CAP))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: EventKind, key: &str) -> JournalEvent {
        JournalEvent {
            kind,
            key: key.to_owned(),
            request_id: String::new(),
            bytes: 0,
            at_unix_ms: 0,
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EventKind::from_name("nope"), None);
    }

    #[test]
    fn cursor_reads_are_monotone_and_duplicate_free() {
        let journal = Journal::with_capacity(16);
        for i in 0..5 {
            journal.publish(event(EventKind::Build, &format!("k{i}")));
        }
        let first = journal.read_from(0);
        assert_eq!(first.dropped, 0);
        assert_eq!(first.events.len(), 5);
        assert_eq!(first.next_cursor, 5);
        let seqs: Vec<u64> = first.events.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        // Tail-follow: nothing new yet, then exactly the new events.
        assert!(journal.read_from(first.next_cursor).events.is_empty());
        journal.publish(event(EventKind::Evict, "k5"));
        let second = journal.read_from(first.next_cursor);
        assert_eq!(second.events.len(), 1);
        assert_eq!(second.events[0].0, 5);
        assert_eq!(second.next_cursor, 6);
        assert_eq!(second.dropped, 0);
    }

    #[test]
    fn wraparound_retains_the_newest_capacity_events() {
        let journal = Journal::with_capacity(4);
        for i in 0..10 {
            journal.publish(event(EventKind::Demote, &format!("k{i}")));
        }
        let read = journal.read_from(0);
        // Sequences 0..6 were overwritten; 6..10 retained.
        assert_eq!(read.dropped, 6);
        let seqs: Vec<u64> = read.events.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(read.events[0].1.key, "k6");
        assert_eq!(read.next_cursor, 10);
    }

    #[test]
    fn lagging_reader_reports_dropped_but_never_duplicates() {
        let journal = Journal::with_capacity(4);
        for i in 0..3 {
            journal.publish(event(EventKind::Build, &format!("k{i}")));
        }
        let read = journal.read_from(0);
        assert_eq!(read.next_cursor, 3);
        // The reader stalls while 6 more events wrap the ring.
        for i in 3..9 {
            journal.publish(event(EventKind::Build, &format!("k{i}")));
        }
        let late = journal.read_from(read.next_cursor);
        // Oldest retained is 9 - 4 = 5: sequences 3 and 4 were lost.
        assert_eq!(late.dropped, 2);
        let seqs: Vec<u64> = late.events.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![5, 6, 7, 8]);
    }

    #[test]
    fn concurrent_writers_lose_no_events() {
        let journal = std::sync::Arc::new(Journal::with_capacity(4096));
        let writers = 8;
        let per_writer = 200;
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let journal = std::sync::Arc::clone(&journal);
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        journal.publish(event(EventKind::Promote, &format!("w{w}-{i}")));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let read = journal.read_from(0);
        assert_eq!(read.dropped, 0);
        assert_eq!(read.events.len(), writers * per_writer);
        // Every writer's events are present and each writer's own
        // events appear in its publish order.
        for w in 0..writers {
            let mine: Vec<&str> = read
                .events
                .iter()
                .map(|(_, e)| e.key.as_str())
                .filter(|k| k.starts_with(&format!("w{w}-")))
                .collect();
            let expected: Vec<String> = (0..per_writer).map(|i| format!("w{w}-{i}")).collect();
            assert_eq!(mine, expected.iter().map(String::as_str).collect::<Vec<_>>());
        }
    }

    #[test]
    fn incremental_tailing_under_concurrent_writers_sees_every_event_once() {
        let journal = std::sync::Arc::new(Journal::with_capacity(4096));
        let writer = {
            let journal = std::sync::Arc::clone(&journal);
            std::thread::spawn(move || {
                for i in 0..500 {
                    journal.publish(event(EventKind::Build, &format!("k{i}")));
                }
            })
        };
        let mut cursor = 0;
        let mut seen = Vec::new();
        loop {
            let read = journal.read_from(cursor);
            assert_eq!(read.dropped, 0, "a keeping-up reader never drops");
            for (seq, _) in &read.events {
                seen.push(*seq);
            }
            cursor = read.next_cursor;
            if writer.is_finished() && journal.read_from(cursor).events.is_empty() {
                break;
            }
        }
        writer.join().unwrap();
        // Drain anything published after the last loop read.
        let tail = journal.read_from(cursor);
        for (seq, _) in &tail.events {
            seen.push(*seq);
        }
        assert_eq!(seen, (0..500).collect::<Vec<u64>>());
    }
}
