//! The metrics registry: atomic counters, gauges, and fixed-bucket log2
//! histograms, registered by name + label set under a cardinality cap
//! and rendered in the Prometheus text exposition format.
//!
//! Registration (name lookup under a mutex) is the cold path, done once
//! per site; the returned handles are `Arc`-shared atomics, so recording
//! is lock-free — a relaxed `fetch_add` for counters and histograms, a
//! relaxed `store` for gauges. A handle can also be *detached*
//! ([`Counter::detached`] etc.): it records into private atomics that no
//! registry exports, which is what the infallible [`crate::global`]
//! convenience constructors fall back to when the cardinality cap
//! rejects a new series — the hot path never has to handle a `Result`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: bucket `i` counts observations `v` with
/// `v <= 2^i` (the first bucket also takes `v = 0`), cumulative bounds
/// `1, 2, 4, …, 2^(HISTOGRAM_BUCKETS-1)`. With 40 buckets the top
/// finite bound is `2^39` — ≈ 9.1 minutes for nanosecond observations —
/// and larger values **saturate into the top bucket** (the count and
/// sum stay exact; only the bucket placement clamps).
pub const HISTOGRAM_BUCKETS: usize = 40;

/// The bucket an observation lands in: the smallest `i` with
/// `value <= 2^i`, clamped to the top bucket.
pub(crate) fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    let index = (64 - (value - 1).leading_zeros()) as usize;
    index.min(HISTOGRAM_BUCKETS - 1)
}

/// How a metric's numeric value is rendered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Unit {
    /// Values are plain numbers (counts, bytes, states).
    None,
    /// Values are recorded in nanoseconds and rendered in **seconds**
    /// (the Prometheus base unit): sample values and histogram bucket
    /// bounds are divided by 1e9 at exposition time.
    Nanos,
}

impl Unit {
    fn render(self, value: u64) -> String {
        match self {
            Unit::None => value.to_string(),
            Unit::Nanos => format_f64(value as f64 / 1e9),
        }
    }
}

/// Formats a float the way Prometheus expects (shortest round-trip;
/// integral values still get a decimal-less form, which the text format
/// accepts).
pub(crate) fn format_f64(value: f64) -> String {
    if value.is_infinite() {
        if value > 0.0 { "+Inf".to_owned() } else { "-Inf".to_owned() }
    } else {
        format!("{value}")
    }
}

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A handle not exported by any registry (records into a private
    /// cell); the cardinality-cap fallback.
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An integer gauge (set to the current value of something).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A handle not exported by any registry.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Sets the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta` (saturating at zero only in aggregate use; the
    /// raw subtraction wraps like the underlying atomic).
    pub fn sub(&self, delta: u64) {
        self.0.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A float gauge (ratios); stores the `f64` bit pattern atomically.
#[derive(Clone, Debug)]
pub struct GaugeF(Arc<AtomicU64>);

impl GaugeF {
    /// A handle not exported by any registry.
    pub fn detached() -> Self {
        GaugeF(Arc::new(AtomicU64::new(0)))
    }

    /// Sets the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log2 histogram (see [`HISTOGRAM_BUCKETS`] for the
/// bucket layout and top-bucket saturation).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("snapshot", &self.snapshot()).finish()
    }
}

impl Histogram {
    /// A handle not exported by any registry.
    pub fn detached() -> Self {
        Histogram(Arc::new(HistogramCore::new()))
    }

    /// Records one observation: three relaxed atomic adds.
    pub fn observe(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the current state (individual fields
    /// are read relaxed; concurrent observers may make `count` lag or
    /// lead the bucket total by in-flight observations).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`] (or the accumulated state of
/// a [`LocalHistogram`] shard).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (exact even for saturated
    /// observations).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Accumulates `other` into `self` (shard merging).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) of the observed
    /// values, in the histogram's raw unit (nanoseconds for
    /// [`Unit::Nanos`] histograms — divide by 1e9 for seconds).
    ///
    /// The rank is located in the cumulative bucket counts and the
    /// value interpolated linearly inside the covering bucket's span
    /// (`(2^(i-1), 2^i]`, or `[0, 1]` for the first bucket), so the
    /// estimate is exact at bucket bounds and off by at most one
    /// bucket's width — a factor of 2 — within one, which is the
    /// resolution a log2 histogram has. Returns 0 for an empty
    /// histogram; the top bucket's saturation clamps the estimate to
    /// the top finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += n;
            if cumulative >= rank {
                let lower = if i == 0 { 0.0 } else { (1u64 << (i - 1)) as f64 };
                let upper = (1u64 << i) as f64;
                let into = (rank - before) as f64 / n as f64;
                return lower + (upper - lower) * into;
            }
        }
        (1u64 << (self.buckets.len().saturating_sub(1))) as f64
    }
}

/// A plain (non-atomic, single-owner) histogram shard: observe locally
/// with no atomics at all, then [`LocalHistogram::flush_into`] a shared
/// [`Histogram`] once per batch. Shard merges are exact: the merged
/// snapshot equals what single-threaded observation of the same values
/// would have produced (pinned by the registry proptests).
#[derive(Clone, Debug)]
pub struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// An empty shard.
    pub fn new() -> Self {
        LocalHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation (no atomics). The sum wraps on overflow,
    /// matching the shared histogram's atomic `fetch_add` semantics.
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    /// This shard's accumulated state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.to_vec(),
            count: self.count,
            sum: self.sum,
        }
    }

    /// Adds this shard's state to a shared histogram and empties the
    /// shard.
    pub fn flush_into(&mut self, target: &Histogram) {
        for (bucket, &n) in target.0.buckets.iter().zip(&self.buckets) {
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        target.0.count.fetch_add(self.count, Ordering::Relaxed);
        target.0.sum.fetch_add(self.sum, Ordering::Relaxed);
        *self = LocalHistogram::new();
    }
}

/// Why a registration was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegistryError {
    /// Registering this series would exceed the registry's series cap.
    CardinalityCapExceeded,
    /// The name is already registered as a different metric kind (or a
    /// different unit).
    KindMismatch,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::CardinalityCapExceeded => write!(f, "metric cardinality cap exceeded"),
            RegistryError::KindMismatch => {
                write!(f, "metric name already registered with a different kind or unit")
            }
        }
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    GaugeF(GaugeF),
    Histogram(Histogram, Unit),
}

impl Handle {
    fn kind_tag(&self) -> (&'static str, Unit) {
        match self {
            Handle::Counter(_) => ("counter", Unit::None),
            Handle::Gauge(_) => ("gauge", Unit::None),
            Handle::GaugeF(_) => ("gauge", Unit::None),
            Handle::Histogram(_, unit) => ("histogram", *unit),
        }
    }
}

struct Series {
    labels: Vec<(String, String)>,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    kind: &'static str,
    unit: Unit,
    series: Vec<Series>,
}

/// Default series cap of a registry: generous for the workspace's fixed
/// instrumentation (a few dozen series) while bounding what a buggy
/// label explosion could allocate or expose.
pub const DEFAULT_SERIES_CAP: usize = 256;

/// A set of registered metrics. Most code uses the process-global
/// registry via [`crate::global`]; tests construct private ones.
pub struct Registry {
    families: Mutex<Vec<Family>>,
    cap: usize,
    /// Registrations refused by the cardinality cap (each refused call
    /// fell back to a detached handle and its data is invisible) —
    /// rendered unconditionally as `tm_obs_dropped_series_total` so the
    /// loss itself is never silent.
    dropped: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with the default series cap.
    pub fn new() -> Self {
        Self::with_cap(DEFAULT_SERIES_CAP)
    }

    /// An empty registry with an explicit series cap.
    pub fn with_cap(cap: usize) -> Self {
        Registry {
            families: Mutex::new(Vec::new()),
            cap,
            dropped: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Family>> {
        self.families.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn get_or_register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Result<Handle, RegistryError> {
        let probe = make();
        let (kind, unit) = probe.kind_tag();
        let mut families = self.lock();
        let total: usize = families.iter().map(|f| f.series.len()).sum();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                if family.kind != kind || family.unit != unit {
                    return Err(RegistryError::KindMismatch);
                }
                family
            }
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    unit,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            return Ok(series.handle.clone());
        }
        if total >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(RegistryError::CardinalityCapExceeded);
        }
        family.series.push(Series {
            labels,
            handle: probe.clone(),
        });
        Ok(probe)
    }

    /// Gets or registers a counter series.
    pub fn counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<Counter, RegistryError> {
        match self.get_or_register(name, help, labels, || Handle::Counter(Counter::detached()))? {
            Handle::Counter(c) => Ok(c),
            _ => Err(RegistryError::KindMismatch),
        }
    }

    /// Gets or registers an integer gauge series.
    pub fn gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<Gauge, RegistryError> {
        match self.get_or_register(name, help, labels, || Handle::Gauge(Gauge::detached()))? {
            Handle::Gauge(g) => Ok(g),
            _ => Err(RegistryError::KindMismatch),
        }
    }

    /// Gets or registers a float gauge series.
    pub fn gauge_f(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Result<GaugeF, RegistryError> {
        match self.get_or_register(name, help, labels, || Handle::GaugeF(GaugeF::detached()))? {
            Handle::GaugeF(g) => Ok(g),
            _ => Err(RegistryError::KindMismatch),
        }
    }

    /// Gets or registers a histogram series with the given unit.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        unit: Unit,
    ) -> Result<Histogram, RegistryError> {
        match self.get_or_register(name, help, labels, || {
            Handle::Histogram(Histogram::detached(), unit)
        })? {
            Handle::Histogram(h, _) => Ok(h),
            _ => Err(RegistryError::KindMismatch),
        }
    }

    /// Total registered series (one histogram = one series here).
    pub fn series_count(&self) -> usize {
        self.lock().iter().map(|f| f.series.len()).sum()
    }

    /// Registrations the cardinality cap refused so far (each fell back
    /// to an invisible detached handle).
    pub fn dropped_series(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (`# HELP` / `# TYPE` comments, one sample line per series;
    /// histograms as cumulative `_bucket{le=…}` plus `_sum`/`_count`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.lock();
        for family in families.iter() {
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind));
            for series in &family.series {
                render_series(&mut out, &family.name, series, family.unit);
            }
        }
        // Rendered outside the family table so it cannot itself be a
        // victim of the cap it reports on.
        out.push_str(
            "# HELP tm_obs_dropped_series_total Metric registrations refused by the cardinality cap (recording fell back to detached handles)\n",
        );
        out.push_str("# TYPE tm_obs_dropped_series_total counter\n");
        out.push_str(&format!(
            "tm_obs_dropped_series_total {}\n",
            self.dropped_series()
        ));
        out
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_series(out: &mut String, name: &str, series: &Series, unit: Unit) {
    match &series.handle {
        Handle::Counter(c) => {
            out.push_str(&format!(
                "{name}{} {}\n",
                label_block(&series.labels, None),
                c.get()
            ));
        }
        Handle::Gauge(g) => {
            out.push_str(&format!(
                "{name}{} {}\n",
                label_block(&series.labels, None),
                g.get()
            ));
        }
        Handle::GaugeF(g) => {
            out.push_str(&format!(
                "{name}{} {}\n",
                label_block(&series.labels, None),
                format_f64(g.get())
            ));
        }
        Handle::Histogram(h, _) => {
            let snapshot = h.snapshot();
            let mut cumulative = 0u64;
            for (i, count) in snapshot.buckets.iter().enumerate() {
                cumulative += count;
                // Suppress interior all-zero prefixes? No: Prometheus
                // expects the full cumulative series; emit every bound.
                let bound = match unit {
                    Unit::None => format_f64((1u64 << i) as f64),
                    Unit::Nanos => format_f64((1u64 << i) as f64 / 1e9),
                };
                out.push_str(&format!(
                    "{name}_bucket{} {cumulative}\n",
                    label_block(&series.labels, Some(("le", &bound))),
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{} {}\n",
                label_block(&series.labels, Some(("le", "+Inf"))),
                snapshot.count
            ));
            out.push_str(&format!(
                "{name}_sum{} {}\n",
                label_block(&series.labels, None),
                unit.render(snapshot.sum)
            ));
            out.push_str(&format!(
                "{name}_count{} {}\n",
                label_block(&series.labels, None),
                snapshot.count
            ));
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry every instrumentation site records into
/// and `/metrics` renders from.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Gets or registers a counter in the global registry, falling back to a
/// detached handle if the registration is refused — recording stays
/// infallible at every call site.
pub fn global_counter(name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
    global().counter(name, help, labels).unwrap_or_else(|_| Counter::detached())
}

/// Gets or registers an integer gauge in the global registry (detached
/// fallback).
pub fn global_gauge(name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
    global().gauge(name, help, labels).unwrap_or_else(|_| Gauge::detached())
}

/// Gets or registers a float gauge in the global registry (detached
/// fallback).
pub fn global_gauge_f(name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeF {
    global().gauge_f(name, help, labels).unwrap_or_else(|_| GaugeF::detached())
}

/// Gets or registers a histogram in the global registry (detached
/// fallback).
pub fn global_histogram(name: &str, help: &str, labels: &[(&str, &str)], unit: Unit) -> Histogram {
    global()
        .histogram(name, help, labels, unit)
        .unwrap_or_else(|_| Histogram::detached())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // v <= 2^i goes in bucket i: exact powers stay put, the next
        // value up moves one bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let bound = 1u64 << i;
            assert_eq!(bucket_index(bound), i, "2^{i} must land on its own bound");
            assert_eq!(bucket_index(bound + 1), i + 1, "2^{i}+1 must spill over");
        }
    }

    #[test]
    fn top_bucket_saturates_and_sum_stays_exact() {
        let h = Histogram::detached();
        let top_bound = 1u64 << (HISTOGRAM_BUCKETS - 1);
        h.observe(top_bound);
        h.observe(top_bound + 1);
        h.observe(u64::MAX / 2);
        let snapshot = h.snapshot();
        assert_eq!(snapshot.buckets[HISTOGRAM_BUCKETS - 1], 3);
        assert_eq!(snapshot.count, 3);
        assert_eq!(snapshot.sum, top_bound + top_bound + 1 + u64::MAX / 2);
        // Cumulative consistency: the top finite bound covers everything.
        let cumulative: u64 = snapshot.buckets.iter().sum();
        assert_eq!(cumulative, snapshot.count);
    }

    #[test]
    fn cardinality_cap_rejects_new_series_but_returns_existing() {
        let registry = Registry::with_cap(2);
        let a = registry.counter("tm_x_total", "x", &[("k", "a")]).unwrap();
        let _b = registry.counter("tm_x_total", "x", &[("k", "b")]).unwrap();
        assert_eq!(
            registry.counter("tm_x_total", "x", &[("k", "c")]).unwrap_err(),
            RegistryError::CardinalityCapExceeded
        );
        // Existing series are still retrievable at the cap, and the
        // handle aliases the original.
        let a2 = registry.counter("tm_x_total", "x", &[("k", "a")]).unwrap();
        a.inc();
        assert_eq!(a2.get(), 1);
        assert_eq!(registry.series_count(), 2);
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let registry = Registry::new();
        registry.counter("tm_thing", "t", &[]).unwrap();
        assert_eq!(
            registry.gauge("tm_thing", "t", &[]).unwrap_err(),
            RegistryError::KindMismatch
        );
        registry.histogram("tm_h", "h", &[], Unit::Nanos).unwrap();
        assert_eq!(
            registry.histogram("tm_h", "h", &[], Unit::None).unwrap_err(),
            RegistryError::KindMismatch
        );
    }

    #[test]
    fn local_shards_merge_to_the_single_threaded_answer() {
        let values: Vec<u64> = (0..1000).map(|i| (i * i * 31) % 100_000).collect();
        // Single-threaded reference.
        let mut reference = LocalHistogram::new();
        for &v in &values {
            reference.observe(v);
        }
        // Four shards, interleaved assignment, merged.
        let mut shards = vec![LocalHistogram::new(); 4];
        for (i, &v) in values.iter().enumerate() {
            shards[i % 4].observe(v);
        }
        let mut merged = HistogramSnapshot::default();
        for shard in &shards {
            merged.merge(&shard.snapshot());
        }
        assert_eq!(merged, reference.snapshot());
        // Flushing the shards into a shared histogram agrees too.
        let shared = Histogram::detached();
        for shard in &mut shards {
            shard.flush_into(&shared);
        }
        assert_eq!(shared.snapshot(), reference.snapshot());
        assert_eq!(shards[0].snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn dropped_series_are_counted_and_rendered() {
        let registry = Registry::with_cap(1);
        registry.counter("tm_a_total", "a", &[]).unwrap();
        assert_eq!(registry.dropped_series(), 0);
        assert!(registry.counter("tm_b_total", "b", &[]).is_err());
        assert!(registry.gauge("tm_c", "c", &[]).is_err());
        assert_eq!(registry.dropped_series(), 2);
        // Re-resolving an existing series at the cap is not a drop.
        registry.counter("tm_a_total", "a", &[]).unwrap();
        assert_eq!(registry.dropped_series(), 2);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE tm_obs_dropped_series_total counter"));
        assert!(text.contains("tm_obs_dropped_series_total 2"));
        // The exposition with the synthetic family still parses.
        let exposition = crate::text::parse_prometheus(&text).expect("renders well formed");
        assert!(exposition.has_series("tm_obs_dropped_series_total"));
    }

    #[test]
    fn quantile_estimator_is_pinned_against_known_samples() {
        // 8 observations of 1 (bucket 0: [0, 1]) and 2 of 3 (bucket 2:
        // (2, 4]); count = 10.
        let h = Histogram::detached();
        for _ in 0..8 {
            h.observe(1);
        }
        h.observe(3);
        h.observe(3);
        let s = h.snapshot();
        // p50: rank 5 of 8 in bucket 0 → 0 + (5/8)·(1-0) = 0.625.
        assert!((s.quantile(0.5) - 0.625).abs() < 1e-9);
        // p80: rank 8 closes bucket 0 exactly → its upper bound, 1.
        assert!((s.quantile(0.8) - 1.0).abs() < 1e-9);
        // p90: rank 9 is the 1st of 2 in bucket 2 → 2 + (1/2)·(4-2) = 3.
        assert!((s.quantile(0.9) - 3.0).abs() < 1e-9);
        // p99 and p100: rank 10 closes bucket 2 → 4.
        assert!((s.quantile(0.99) - 4.0).abs() < 1e-9);
        assert!((s.quantile(1.0) - 4.0).abs() < 1e-9);
        // Degenerate inputs.
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
        let one = Histogram::detached();
        one.observe(0);
        assert!(one.snapshot().quantile(0.5) <= 1.0);
        // Out-of-range q clamps instead of panicking.
        assert!((s.quantile(-1.0) - s.quantile(0.0)).abs() < 1e-9);
        assert!((s.quantile(2.0) - s.quantile(1.0)).abs() < 1e-9);
    }

    #[test]
    fn render_emits_cumulative_buckets_and_labels() {
        let registry = Registry::new();
        let c = registry.counter("tm_q_total", "queries", &[("result", "ok")]).unwrap();
        c.add(3);
        let h = registry.histogram("tm_lat_seconds", "latency", &[], Unit::Nanos).unwrap();
        h.observe(1_000_000_000); // exactly 2^30 < 1s < 2^31 ns? (2^30 ≈ 1.07e9) — 1e9 <= 2^30
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE tm_q_total counter"));
        assert!(text.contains("tm_q_total{result=\"ok\"} 3"));
        assert!(text.contains("# TYPE tm_lat_seconds histogram"));
        assert!(text.contains("tm_lat_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("tm_lat_seconds_count 1"));
        assert!(text.contains("tm_lat_seconds_sum 1"));
        // The checker in `text` accepts our own exposition.
        let exposition = crate::text::parse_prometheus(&text).expect("self-render parses");
        assert!(exposition.has_series("tm_q_total"));
        assert!(exposition.has_series("tm_lat_seconds"));
    }
}
