//! # tm-obs — observability for the tm-modelcheck workspace
//!
//! A std-only (zero external dependencies, in the spirit of the
//! `crates/shims` policy) observability layer shared by every other
//! crate:
//!
//! * [`registry`] — a process-global **metrics registry**: lock-free
//!   atomic [`Counter`]s, [`Gauge`]s, and fixed-bucket log2
//!   [`Histogram`]s, registered by static name + label set under a
//!   cardinality cap, rendered in the Prometheus text exposition format;
//! * [`trace`] — **phase spans**: a lightweight [`PhaseTimer`] RAII API
//!   that records engine phases ([`Phase`]) both into the global phase
//!   histograms and — when a per-query recorder is installed — into a
//!   bounded per-query [`TraceRecord`];
//! * [`text`] — a tiny Prometheus **text-format parser/checker** used by
//!   `tm-query --metrics` and the CI smoke to assert that `/metrics`
//!   output is well formed and the required series exist;
//! * [`log`] — **structured JSON log lines** to stderr, gated by
//!   `TM_LOG=json|off`, plus the `TM_SLOW_QUERY_MS` slow-query
//!   threshold;
//! * [`profile`] — the **cooperative sampling profiler**: registered
//!   threads publish their current phase stack into per-thread atomic
//!   slots; an opt-in ~97 Hz sampler folds them into
//!   flamegraph-compatible folded stacks, per-thread utilization, and
//!   the `tm_parallelism` busy-worker histogram;
//! * [`journal`] — the **lifecycle event journal**: a bounded
//!   ring buffer of structured build/evict/demote/promote/abort/
//!   admission-wait events with loss-free sequence cursors for
//!   tail-following (`GET /v1/events`).
//!
//! ## Cost model
//!
//! Instrumentation is passive: it never changes verdicts, words, or
//! lassos (pinned by the metrics-on ≡ metrics-off conformance tests).
//! When disabled (`TM_OBS=off` or [`set_obs_enabled`]`(false)`) the hot
//! path cost is one relaxed atomic load per site — no clock reads, no
//! allocation. When enabled, a phase span costs two `Instant::now`
//! reads plus a handful of relaxed atomic adds; spans are placed at
//! per-level / per-artifact granularity, never per-state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod log;
pub mod profile;
pub mod registry;
pub mod text;
pub mod trace;

pub use journal::{
    global_journal, EventKind, Journal, JournalEvent, JournalRead, JOURNAL_CAP,
};
pub use log::{
    format_log_line, log_json, log_mode, set_log_mode, set_slow_query_threshold,
    slow_query_threshold, LogMode, LogValue,
};
pub use registry::{
    global, global_counter, global_gauge, global_gauge_f, global_histogram, Counter, Gauge,
    GaugeF, Histogram, HistogramSnapshot, LocalHistogram, Registry, RegistryError, Unit,
    DEFAULT_SERIES_CAP, HISTOGRAM_BUCKETS,
};
pub use profile::{
    collect_profile, profile_snapshot, register_thread, sampler_running, start_sampler,
    stop_sampler, task_frame, ProfileSnapshot, TaskFrame, ThreadKind, ThreadRegistration,
    PROFILE_MAX_DEPTH, SAMPLE_PERIOD_MICROS,
};
pub use text::{parse_prometheus, Exposition, Sample};
pub use trace::{
    ensure_recorder, phase_totals, record_phase, recorder_active, with_recorder, Phase,
    PhaseNanos, PhaseTimer, TraceEvent, TraceRecord, TRACE_EVENT_CAP,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable disabling all instrumentation when set to `off`
/// (or `0`): `TM_OBS=off`.
pub const OBS_ENV: &str = "TM_OBS";

// 0 = not yet read from the environment, 1 = enabled, 2 = disabled.
static OBS_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether instrumentation is enabled (the default; `TM_OBS=off`
/// disables it). The first call reads the environment; afterwards this
/// is a single relaxed atomic load — the entire disabled-path cost of a
/// [`PhaseTimer`].
pub fn obs_enabled() -> bool {
    match OBS_STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let off = matches!(std::env::var(OBS_ENV).as_deref(), Ok("off") | Ok("0"));
            OBS_STATE.store(if off { 2 } else { 1 }, Ordering::Relaxed);
            !off
        }
    }
}

/// Overrides the enable flag (tests and the on/off overhead bench).
pub fn set_obs_enabled(enabled: bool) {
    OBS_STATE.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}
