//! Structured JSON log lines to stderr, gated by `TM_LOG=json|off`
//! (default off), plus the `TM_SLOW_QUERY_MS` slow-query threshold.
//!
//! Each line is a single flat JSON object written with one `write_all`
//! on a locked stderr handle, so concurrent serving threads never
//! interleave bytes. A `ts_ms` Unix-epoch-millisecond timestamp and the
//! `event` discriminator come first; callers append their own fields
//! (request id, query, duration, outcome).

use std::io::Write;
use std::sync::atomic::{AtomicI64, AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Environment variable selecting the log mode: `TM_LOG=json` turns
/// structured logging on, anything else (or unset) keeps it off.
pub const LOG_ENV: &str = "TM_LOG";

/// Environment variable holding the slow-query threshold in
/// milliseconds; unset or `0` disables the slow-query log.
pub const SLOW_QUERY_ENV: &str = "TM_SLOW_QUERY_MS";

/// Whether structured log lines are emitted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LogMode {
    /// No log lines.
    Off,
    /// One JSON object per line on stderr.
    Json,
}

// 0 = unread, 1 = off, 2 = json.
static LOG_STATE: AtomicU8 = AtomicU8::new(0);

/// The active log mode (first call reads `TM_LOG`; afterwards one
/// relaxed atomic load).
pub fn log_mode() -> LogMode {
    match LOG_STATE.load(Ordering::Relaxed) {
        1 => LogMode::Off,
        2 => LogMode::Json,
        _ => {
            let mode = match std::env::var(LOG_ENV).as_deref() {
                Ok("json") => LogMode::Json,
                _ => LogMode::Off,
            };
            set_log_mode(mode);
            mode
        }
    }
}

/// Overrides the log mode (tests).
pub fn set_log_mode(mode: LogMode) {
    LOG_STATE.store(
        match mode {
            LogMode::Off => 1,
            LogMode::Json => 2,
        },
        Ordering::Relaxed,
    );
}

// -1 = unread, 0 = disabled, >0 = threshold in ms.
static SLOW_QUERY_MS: AtomicI64 = AtomicI64::new(-1);

/// The `TM_SLOW_QUERY_MS` threshold: queries slower than this get a
/// `slow_query` log line (emitted even with `TM_LOG` off). `None` when
/// unset, unparsable, or `0`.
pub fn slow_query_threshold() -> Option<std::time::Duration> {
    let cached = SLOW_QUERY_MS.load(Ordering::Relaxed);
    let ms = if cached >= 0 {
        cached
    } else {
        let parsed = std::env::var(SLOW_QUERY_ENV)
            .ok()
            .and_then(|v| v.parse::<i64>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(0);
        SLOW_QUERY_MS.store(parsed, Ordering::Relaxed);
        parsed
    };
    (ms > 0).then(|| std::time::Duration::from_millis(ms as u64))
}

/// Overrides the slow-query threshold (tests); `None` disables.
pub fn set_slow_query_threshold(threshold: Option<std::time::Duration>) {
    SLOW_QUERY_MS.store(
        threshold.map_or(0, |d| d.as_millis().min(i64::MAX as u128) as i64),
        Ordering::Relaxed,
    );
}

/// One field value of a log line.
#[derive(Clone, Copy, Debug)]
pub enum LogValue<'a> {
    /// A JSON string (escaped on write).
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats one log line (without emitting it); exposed so tests can
/// assert the exact bytes.
pub fn format_log_line(event: &str, fields: &[(&str, LogValue<'_>)]) -> String {
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis().min(u64::MAX as u128) as u64);
    let mut line = String::with_capacity(128);
    line.push_str("{\"ts_ms\":");
    line.push_str(&ts_ms.to_string());
    line.push_str(",\"event\":");
    push_json_string(&mut line, event);
    for (key, value) in fields {
        line.push(',');
        push_json_string(&mut line, key);
        line.push(':');
        match value {
            LogValue::Str(s) => push_json_string(&mut line, s),
            LogValue::U64(v) => line.push_str(&v.to_string()),
            LogValue::I64(v) => line.push_str(&v.to_string()),
            LogValue::F64(v) => line.push_str(&crate::registry::format_f64(*v)),
            LogValue::Bool(v) => line.push_str(if *v { "true" } else { "false" }),
        }
    }
    line.push_str("}\n");
    line
}

/// Emits one structured log line to stderr if `TM_LOG=json`; a no-op
/// otherwise.
pub fn log_json(event: &str, fields: &[(&str, LogValue<'_>)]) {
    if log_mode() != LogMode::Json {
        return;
    }
    let line = format_log_line(event, fields);
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_all(line.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_lines_are_flat_json_with_escapes() {
        let line = format_log_line(
            "query_done",
            &[
                ("request_id", LogValue::Str("req-1")),
                ("query", LogValue::Str("TL2:ss:2:2")),
                ("quote", LogValue::Str("a\"b\\c\nd")),
                ("dur_ms", LogValue::U64(12)),
                ("holds", LogValue::Bool(true)),
                ("ratio", LogValue::F64(0.5)),
                ("delta", LogValue::I64(-3)),
            ],
        );
        assert!(line.starts_with("{\"ts_ms\":"));
        assert!(line.ends_with("}\n"));
        assert!(line.contains("\"event\":\"query_done\""));
        assert!(line.contains("\"request_id\":\"req-1\""));
        assert!(line.contains("\"quote\":\"a\\\"b\\\\c\\nd\""));
        assert!(line.contains("\"dur_ms\":12"));
        assert!(line.contains("\"holds\":true"));
        assert!(line.contains("\"ratio\":0.5"));
        assert!(line.contains("\"delta\":-3"));
        assert_eq!(line.matches('\n').count(), 1, "one line per record");
    }

    #[test]
    fn slow_query_threshold_parses_and_disables() {
        set_slow_query_threshold(Some(std::time::Duration::from_millis(250)));
        assert_eq!(slow_query_threshold(), Some(std::time::Duration::from_millis(250)));
        set_slow_query_threshold(None);
        assert_eq!(slow_query_threshold(), None);
    }
}
