//! Property tests for the histogram core: sharded observation — local
//! shards merged, or concurrent atomic observation — must be
//! indistinguishable from single-threaded observation of the same
//! values.

use proptest::collection::vec;
use proptest::prelude::*;
use tm_obs::{Histogram, HistogramSnapshot, LocalHistogram};

proptest! {
    #[test]
    fn merged_shards_equal_single_threaded_counts(input in (vec(0u64..2_000_000_000, 0..400), 1usize..8)) {
        let (values, shard_count) = input;
        let mut reference = LocalHistogram::new();
        for &v in &values {
            reference.observe(v);
        }
        let mut shards = vec![LocalHistogram::new(); shard_count];
        for (i, &v) in values.iter().enumerate() {
            shards[i % shard_count].observe(v);
        }
        let mut merged = HistogramSnapshot::default();
        for shard in &shards {
            merged.merge(&shard.snapshot());
        }
        prop_assert_eq!(&merged, &reference.snapshot());
        // Flushing into a shared atomic histogram gives the same answer.
        let shared = Histogram::detached();
        for shard in &mut shards {
            shard.flush_into(&shared);
        }
        prop_assert_eq!(&shared.snapshot(), &reference.snapshot());
    }

    #[test]
    fn concurrent_observation_equals_sequential(values in vec(0u64..u64::MAX, 0..256)) {
        let mut reference = LocalHistogram::new();
        for &v in &values {
            reference.observe(v);
        }
        let shared = Histogram::detached();
        std::thread::scope(|scope| {
            for chunk in values.chunks(64.max(values.len() / 4 + 1)) {
                let shared = &shared;
                scope.spawn(move || {
                    for &v in chunk {
                        shared.observe(v);
                    }
                });
            }
        });
        prop_assert_eq!(&shared.snapshot(), &reference.snapshot());
    }
}
