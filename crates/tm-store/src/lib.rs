//! # tm-store — persistent content-addressed artifact store
//!
//! Compiled verification artifacts — TM run graphs
//! ([`tm_automata::CompiledRunGraph`]), compiled automata
//! ([`tm_automata::CompiledNfa`] / [`tm_automata::CompiledDfa`]), and
//! interned lazy-specification rows — are expensive to build and
//! entirely deterministic: the same engine at the same version,
//! given the same TM, contention manager, property, and instance size
//! `(n, k)`, always builds bit-identical CSR arrays. This crate
//! persists them so a restarted `tm-serve` answers its warm roster
//! with **zero rebuilds**, and so the in-memory budget can *demote*
//! cold artifacts to disk instead of discarding them.
//!
//! Layers, bottom up:
//!
//! * [`sha256`] — a std-only SHA-256 (the workspace builds offline;
//!   see the shims policy in the workspace manifest);
//! * [`StoreKey`] — the content address: SHA-256 over a canonical
//!   length-prefixed encoding of *(kind, TM name, property, mode, n,
//!   k)* plus the format and engine versions, so any incompatible
//!   change silently retires old files;
//! * the `.tmart` container (`format`) — magic, versions, a
//!   checksummed section table, per-section checksums; any single-bit
//!   corruption or truncation anywhere in a file is detected;
//! * the codecs (`codec`) — fixed-width little-endian encodings of
//!   the domain types ([`Artifact`] and friends), with every id
//!   range-checked and every decoded structure re-validated through
//!   the `from_parts` constructors in `tm-automata`;
//! * [`ArtifactStore`] — the directory: atomic temp-file + rename
//!   writes, mmap (or buffered) reads, quarantine of corrupt files,
//!   an LRU byte/file cap, and counters for the service metrics.
//!
//! Trust model: nothing read from disk is believed until the
//! container checksums pass, the embedded key re-digests to the
//! content address, and the structural validators accept the decoded
//! arrays. A file failing any of those is renamed to
//! `*.quarantined` and the caller rebuilds — a corrupt store can cost
//! time, never correctness.
//!
//! Fault injection: `TM_FAULT=store:<nth>` arms the `store` site,
//! which fires inside save (before the atomic rename — a crash
//! mid-write) and load (a poisoned read). See [`tm_automata::fault`].

// `deny` (not `forbid`) so the mmap module can opt in locally,
// mirroring the worker-pool convention in `tm-automata`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod format;
mod key;
mod mmap;
pub mod sha256;
mod store;

pub use codec::{Artifact, LazySpecArtifact, Reader, RunGraphArtifact};
pub use format::{FormatError, SectionWriter, Sections, MAGIC};
pub use key::{StoreKey, StoreKind, ENGINE_VERSION, FORMAT_VERSION};
pub use mmap::{read_file, FileBytes};
pub use store::{ArtifactStore, StoreConfig, StoreEntry, StoreError, StoreStats};

// Re-exported for integration tests and the service layer, which
// encode/decode images without going through a directory.
pub use codec::{decode_artifact, encode_artifact};
