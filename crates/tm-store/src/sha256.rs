//! A minimal SHA-256 (FIPS 180-4), in the shims spirit: offline,
//! std-only, the subset this workspace needs. Used for the
//! content-address digest of store keys and the per-section integrity
//! checksums of the artifact format. Not a performance-tuned
//! implementation — artifact files are hashed once per save/load, far
//! from any hot path.

/// First 32 bits of the fractional parts of the cube roots of the first
/// 64 primes (the SHA-256 round constants).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// The SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        compress(&mut state, block);
    }
    // Padding: 0x80, zeros, then the bit length as a big-endian u64.
    let rest = blocks.remainder();
    let mut tail = [0u8; 128];
    tail[..rest.len()].copy_from_slice(rest);
    tail[rest.len()] = 0x80;
    let tail_len = if rest.len() < 56 { 64 } else { 128 };
    let bit_len = (data.len() as u64).wrapping_mul(8);
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    for block in tail[..tail_len].chunks_exact(64) {
        compress(&mut state, block);
    }
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(state) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// The first 8 digest bytes as a `u64` — the truncated checksum stored
/// per section and over the header of the artifact format.
pub fn checksum64(data: &[u8]) -> u64 {
    u64::from_le_bytes(sha256(data)[..8].try_into().expect("8 bytes"))
}

/// Lowercase hex of a digest (store file names).
pub fn to_hex(digest: &[u8]) -> String {
    let mut out = String::with_capacity(digest.len() * 2);
    for byte in digest {
        use std::fmt::Write;
        write!(out, "{byte:02x}").expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / RFC 6234 test vectors.
    #[test]
    fn known_vectors() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One block of exactly 64 bytes exercises the two-block padding
        // path (length no longer fits the first padded block).
        assert_eq!(
            to_hex(&sha256(&[b'a'; 64])),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn checksum_is_digest_prefix() {
        let digest = sha256(b"abc");
        assert_eq!(
            checksum64(b"abc"),
            u64::from_le_bytes(digest[..8].try_into().unwrap())
        );
    }
}
