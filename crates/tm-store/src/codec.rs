//! Binary codecs for the artifact payload sections.
//!
//! Everything is little-endian and fixed-width. Domain values are
//! encoded structurally (no `Debug`/string round-trips): a
//! [`RunLabel`] is 7 bytes, a [`Statement`] 3 bytes, a [`DetState`]
//! 64 bytes. Decoders never trust lengths or ids — array lengths are
//! bounds-checked against the remaining payload *before* allocation,
//! and every id is range-checked before the panicking constructors
//! ([`VarId::new`] / [`ThreadId::new`]) run. Structural validity of
//! the decoded CSR data is then enforced by the `from_parts`
//! constructors in `tm-automata`, so a file that passes the checksum
//! layer but carries nonsense still comes back as a clean
//! [`FormatError`], never a panic or an inconsistent artifact.

use tm_algorithms::{Action, ExtCommand, RunLabel};
use tm_automata::{
    CompiledDfa, CompiledNfa, CompiledRunGraph, DfaParts, NfaParts, RunGraphParts,
};
use tm_lang::{Command, Statement, StatementKind, ThreadId, VarId};
use tm_spec::{DetPhase, DetState, DetThread};

use crate::format::{FormatError, SectionWriter, Sections};
use crate::key::{StoreKey, StoreKind};

/// Maximum id value representable in the workspace's `IdSet` universe;
/// decoders reject anything at or above it before calling the
/// panicking `VarId::new` / `ThreadId::new`.
const MAX_IDS: u8 = 16;

// ---------------------------------------------------------------------------
// Primitive reader

/// A bounds-checked little-endian cursor over a payload slice.
pub struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes }
    }

    /// Consumes `len` raw bytes.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8], FormatError> {
        if len > self.bytes.len() {
            return Err("payload truncated");
        }
        let (head, tail) = self.bytes.split_at(len);
        self.bytes = tail;
        Ok(head)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.bytes(1)?[0])
    }

    /// Consumes a `u16` LE.
    pub fn u16(&mut self) -> Result<u16, FormatError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Consumes a `u32` LE.
    pub fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Consumes a `u64` LE.
    pub fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Demands the payload be fully consumed.
    pub fn finish(&self) -> Result<(), FormatError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err("trailing bytes in section payload")
        }
    }

    /// A length prefix for elements of `elem_size` bytes, verified to
    /// fit the remaining payload before any allocation happens.
    fn checked_len(&mut self, elem_size: usize) -> Result<usize, FormatError> {
        let count = self.u32()? as usize;
        if count
            .checked_mul(elem_size)
            .is_none_or(|total| total > self.bytes.len())
        {
            return Err("array length exceeds payload");
        }
        Ok(count)
    }
}

// ---------------------------------------------------------------------------
// Arrays

fn encode_u32s(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + values.len() * 4);
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_u32s(payload: &[u8]) -> Result<Vec<u32>, FormatError> {
    let mut reader = Reader::new(payload);
    let count = reader.checked_len(4)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(reader.u32()?);
    }
    reader.finish()?;
    Ok(out)
}

fn encode_u16s(values: &[u16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + values.len() * 2);
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_u16s(payload: &[u8]) -> Result<Vec<u16>, FormatError> {
    let mut reader = Reader::new(payload);
    let count = reader.checked_len(2)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(reader.u16()?);
    }
    reader.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Domain values

fn var_u8(var: VarId) -> u8 {
    var.index() as u8
}

fn decode_var(byte: u8) -> Result<VarId, FormatError> {
    if byte >= MAX_IDS {
        return Err("variable id out of range");
    }
    Ok(VarId::new(byte as usize))
}

fn decode_thread(byte: u8) -> Result<ThreadId, FormatError> {
    if byte >= MAX_IDS {
        return Err("thread id out of range");
    }
    Ok(ThreadId::new(byte as usize))
}

fn command_bytes(command: Command) -> (u8, u8) {
    match command {
        Command::Read(v) => (0, var_u8(v)),
        Command::Write(v) => (1, var_u8(v)),
        Command::Commit => (2, 0),
    }
}

fn decode_command(tag: u8, var: u8) -> Result<Command, FormatError> {
    match tag {
        0 => Ok(Command::Read(decode_var(var)?)),
        1 => Ok(Command::Write(decode_var(var)?)),
        2 if var == 0 => Ok(Command::Commit),
        _ => Err("bad command encoding"),
    }
}

fn ext_command_bytes(ext: ExtCommand) -> (u8, u8, u8) {
    match ext {
        ExtCommand::Base(c) => {
            let (tag, var) = command_bytes(c);
            (0, tag, var)
        }
        ExtCommand::RLock(v) => (1, var_u8(v), 0),
        ExtCommand::WLock(v) => (2, var_u8(v), 0),
        ExtCommand::Own(v) => (3, var_u8(v), 0),
        ExtCommand::Validate => (4, 0, 0),
        ExtCommand::Lock(v) => (5, var_u8(v), 0),
        ExtCommand::RValidate => (6, 0, 0),
        ExtCommand::ChkLock => (7, 0, 0),
    }
}

fn decode_ext_command(tag: u8, b0: u8, b1: u8) -> Result<ExtCommand, FormatError> {
    match (tag, b0, b1) {
        (0, tag, var) => Ok(ExtCommand::Base(decode_command(tag, var)?)),
        (1, v, 0) => Ok(ExtCommand::RLock(decode_var(v)?)),
        (2, v, 0) => Ok(ExtCommand::WLock(decode_var(v)?)),
        (3, v, 0) => Ok(ExtCommand::Own(decode_var(v)?)),
        (4, 0, 0) => Ok(ExtCommand::Validate),
        (5, v, 0) => Ok(ExtCommand::Lock(decode_var(v)?)),
        (6, 0, 0) => Ok(ExtCommand::RValidate),
        (7, 0, 0) => Ok(ExtCommand::ChkLock),
        _ => Err("bad extended-command encoding"),
    }
}

/// `RunLabel` → 7 bytes:
/// `[thread, cmd tag, cmd var, action tag, ext tag, ext b0, ext b1]`.
fn encode_run_label(out: &mut Vec<u8>, label: RunLabel) {
    let (cmd_tag, cmd_var) = command_bytes(label.command);
    let (action_tag, ext) = match label.action {
        Action::Internal(d) => (0u8, ext_command_bytes(d)),
        Action::Complete(d) => (1, ext_command_bytes(d)),
        Action::Abort => (2, (0, 0, 0)),
    };
    out.extend_from_slice(&[
        var_u8_thread(label.thread),
        cmd_tag,
        cmd_var,
        action_tag,
        ext.0,
        ext.1,
        ext.2,
    ]);
}

fn var_u8_thread(thread: ThreadId) -> u8 {
    thread.index() as u8
}

fn decode_run_label(reader: &mut Reader) -> Result<RunLabel, FormatError> {
    let raw = reader.bytes(7)?;
    let thread = decode_thread(raw[0])?;
    let command = decode_command(raw[1], raw[2])?;
    let action = match raw[3] {
        0 => Action::Internal(decode_ext_command(raw[4], raw[5], raw[6])?),
        1 => Action::Complete(decode_ext_command(raw[4], raw[5], raw[6])?),
        2 if raw[4] == 0 && raw[5] == 0 && raw[6] == 0 => Action::Abort,
        _ => return Err("bad action encoding"),
    };
    Ok(RunLabel {
        thread,
        command,
        action,
    })
}

fn encode_run_labels(labels: &[RunLabel]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + labels.len() * 7);
    out.extend_from_slice(&(labels.len() as u32).to_le_bytes());
    for &label in labels {
        encode_run_label(&mut out, label);
    }
    out
}

fn decode_run_labels(payload: &[u8]) -> Result<Vec<RunLabel>, FormatError> {
    let mut reader = Reader::new(payload);
    let count = reader.checked_len(7)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_run_label(&mut reader)?);
    }
    reader.finish()?;
    Ok(out)
}

/// `Statement` → 3 bytes: `[kind tag, var, thread]`.
fn encode_statement(out: &mut Vec<u8>, statement: Statement) {
    let (tag, var) = match statement.kind {
        StatementKind::Read(v) => (0u8, var_u8(v)),
        StatementKind::Write(v) => (1, var_u8(v)),
        StatementKind::Commit => (2, 0),
        StatementKind::Abort => (3, 0),
    };
    out.extend_from_slice(&[tag, var, var_u8_thread(statement.thread)]);
}

fn decode_statement(reader: &mut Reader) -> Result<Statement, FormatError> {
    let raw = reader.bytes(3)?;
    let kind = match (raw[0], raw[1]) {
        (0, v) => StatementKind::Read(decode_var(v)?),
        (1, v) => StatementKind::Write(decode_var(v)?),
        (2, 0) => StatementKind::Commit,
        (3, 0) => StatementKind::Abort,
        _ => return Err("bad statement encoding"),
    };
    Ok(Statement::new(kind, decode_thread(raw[2])?))
}

fn encode_statements(statements: &[Statement]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + statements.len() * 3);
    out.extend_from_slice(&(statements.len() as u32).to_le_bytes());
    for &s in statements {
        encode_statement(&mut out, s);
    }
    out
}

fn decode_statements(payload: &[u8]) -> Result<Vec<Statement>, FormatError> {
    let mut reader = Reader::new(payload);
    let count = reader.checked_len(3)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_statement(&mut reader)?);
    }
    reader.finish()?;
    Ok(out)
}

/// `DetThread` → 16 bytes:
/// `[phase, valid, rs u16, ws u16, prs u16, pws u16, wp u16, sp u16, 0, 0]`
/// (sets serialized through `IdSet::bits`). A `DetState` is its four
/// thread records back to back, 64 bytes.
fn encode_det_state(out: &mut Vec<u8>, state: &DetState) {
    for thread in &state.0 {
        out.push(match thread.phase {
            DetPhase::Finished => 0,
            DetPhase::Started => 1,
            DetPhase::Pending => 2,
        });
        out.push(thread.valid as u8);
        for bits in [
            thread.rs.bits(),
            thread.ws.bits(),
            thread.prs.bits(),
            thread.pws.bits(),
            thread.wp.bits(),
            thread.sp.bits(),
        ] {
            out.extend_from_slice(&bits.to_le_bytes());
        }
        out.extend_from_slice(&[0, 0]);
    }
}

fn decode_det_state(reader: &mut Reader) -> Result<DetState, FormatError> {
    let mut state = DetState::default();
    for thread in &mut state.0 {
        let phase = match reader.u8()? {
            0 => DetPhase::Finished,
            1 => DetPhase::Started,
            2 => DetPhase::Pending,
            _ => return Err("bad thread phase"),
        };
        let valid = match reader.u8()? {
            0 => false,
            1 => true,
            _ => return Err("bad validity flag"),
        };
        *thread = DetThread {
            phase,
            valid,
            rs: tm_lang::VarSet::from_bits(reader.u16()?),
            ws: tm_lang::VarSet::from_bits(reader.u16()?),
            prs: tm_lang::VarSet::from_bits(reader.u16()?),
            pws: tm_lang::VarSet::from_bits(reader.u16()?),
            wp: tm_lang::ThreadSet::from_bits(reader.u16()?),
            sp: tm_lang::ThreadSet::from_bits(reader.u16()?),
        };
        if reader.bytes(2)? != [0, 0] {
            return Err("nonzero thread-record padding");
        }
    }
    Ok(state)
}

fn encode_det_states(states: &[DetState]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + states.len() * 64);
    out.extend_from_slice(&(states.len() as u32).to_le_bytes());
    for state in states {
        encode_det_state(&mut out, state);
    }
    out
}

fn decode_det_states(payload: &[u8]) -> Result<Vec<DetState>, FormatError> {
    let mut reader = Reader::new(payload);
    let count = reader.checked_len(64)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_det_state(&mut reader)?);
    }
    reader.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Artifacts

/// Section tags. `KEY`/`META` are shared across kinds; tags ≥ 3 are
/// kind-specific.
const SEC_KEY: u32 = 1;
const SEC_META: u32 = 2;

const SEC_RG_LABELS: u32 = 3;
const SEC_RG_ROW_START: u32 = 4;
const SEC_RG_EDGE_FROM: u32 = 5;
const SEC_RG_EDGE_TARGET: u32 = 6;
const SEC_RG_EDGE_LABEL: u32 = 7;
const SEC_RG_EDGE_MASK: u32 = 8;

const SEC_SPEC_STATES: u32 = 3;
const SEC_SPEC_PRESENT: u32 = 4;
const SEC_SPEC_ROWS: u32 = 5;

const SEC_NFA_HEAD: u32 = 3;
const SEC_NFA_INITIAL: u32 = 4;
const SEC_NFA_LETTER_OFFSETS: u32 = 5;
const SEC_NFA_LETTER_TARGETS: u32 = 6;
const SEC_NFA_EPS_OFFSETS: u32 = 7;
const SEC_NFA_EPS_TARGETS: u32 = 8;
const SEC_NFA_EDGE_OFFSETS: u32 = 9;
const SEC_NFA_EDGE_LETTERS: u32 = 10;
const SEC_NFA_EDGE_TARGETS: u32 = 11;

const SEC_DFA_HEAD: u32 = 3;
const SEC_DFA_LETTERS: u32 = 4;
const SEC_DFA_NEXT: u32 = 5;

/// A stored run graph: the compiled CSR graph plus the build metadata
/// the service reports (`states_explored`, build wall time).
#[derive(Debug)]
pub struct RunGraphArtifact {
    /// The compiled graph.
    pub graph: CompiledRunGraph<RunLabel>,
    /// States explored when the graph was originally built.
    pub states: usize,
    /// Original build wall time, nanoseconds.
    pub build_ns: u64,
}

/// Stored interned rows of a lazily stepped deterministic
/// specification. The spec *source* is not stored — the importer
/// reconstructs it from the key and validates these rows against it via
/// `SpecCache::from_parts`.
#[derive(Debug)]
pub struct LazySpecArtifact {
    /// Interned specification states, in id order.
    pub states: Vec<DetState>,
    /// Computed successor rows (`None` where never stepped).
    pub rows: Vec<Option<Box<[u32]>>>,
    /// Original build wall time, nanoseconds.
    pub build_ns: u64,
}

/// A decoded artifact of any kind.
#[derive(Debug)]
pub enum Artifact {
    /// A compiled run graph with build metadata.
    RunGraph(RunGraphArtifact),
    /// Interned lazy-specification rows with build metadata.
    LazySpec(LazySpecArtifact),
    /// A compiled NFA.
    Nfa(CompiledNfa),
    /// A compiled DFA over statements.
    Dfa(CompiledDfa<Statement>),
}

impl Artifact {
    /// The store kind this artifact serializes as.
    pub fn kind(&self) -> StoreKind {
        match self {
            Artifact::RunGraph(_) => StoreKind::RunGraph,
            Artifact::LazySpec(_) => StoreKind::LazySpec,
            Artifact::Nfa(_) => StoreKind::Nfa,
            Artifact::Dfa(_) => StoreKind::Dfa,
        }
    }
}

/// Serializes `artifact` under `key` into a complete `.tmart` file
/// image (header, checksums, payloads).
///
/// # Panics
///
/// If `key.kind` disagrees with the artifact's kind — the store's typed
/// save entry points make that unrepresentable.
pub fn encode_artifact(key: &StoreKey, artifact: &Artifact) -> Vec<u8> {
    assert_eq!(key.kind, artifact.kind(), "store key / artifact kind mismatch");
    let mut writer = SectionWriter::new();
    writer.section(SEC_KEY, key.encode());
    match artifact {
        Artifact::RunGraph(rg) => {
            let mut meta = Vec::with_capacity(16);
            meta.extend_from_slice(&(rg.states as u64).to_le_bytes());
            meta.extend_from_slice(&rg.build_ns.to_le_bytes());
            writer.section(SEC_META, meta);
            let parts = rg.graph.to_parts();
            writer.section(SEC_RG_LABELS, encode_run_labels(&parts.labels));
            writer.section(SEC_RG_ROW_START, encode_u32s(&parts.row_start));
            writer.section(SEC_RG_EDGE_FROM, encode_u32s(&parts.edge_from));
            writer.section(SEC_RG_EDGE_TARGET, encode_u32s(&parts.edge_target));
            writer.section(SEC_RG_EDGE_LABEL, encode_u32s(&parts.edge_label));
            writer.section(SEC_RG_EDGE_MASK, encode_u16s(&parts.edge_mask));
        }
        Artifact::LazySpec(spec) => {
            writer.section(SEC_META, spec.build_ns.to_le_bytes().to_vec());
            writer.section(SEC_SPEC_STATES, encode_det_states(&spec.states));
            let mut present = Vec::with_capacity(4 + spec.rows.len().div_ceil(8));
            present.extend_from_slice(&(spec.rows.len() as u32).to_le_bytes());
            present.resize(4 + spec.rows.len().div_ceil(8), 0);
            for (i, row) in spec.rows.iter().enumerate() {
                if row.is_some() {
                    present[4 + i / 8] |= 1 << (i % 8);
                }
            }
            writer.section(SEC_SPEC_PRESENT, present);
            // Rows are uniform-width; record the width once, then the
            // present rows back to back in index order.
            let width = spec
                .rows
                .iter()
                .flatten()
                .map(|row| row.len())
                .next()
                .unwrap_or(0);
            let mut rows =
                Vec::with_capacity(4 + spec.rows.iter().flatten().count() * width * 4);
            rows.extend_from_slice(&(width as u32).to_le_bytes());
            for row in spec.rows.iter().flatten() {
                debug_assert_eq!(row.len(), width, "spec rows must be uniform-width");
                for &entry in row.iter() {
                    rows.extend_from_slice(&entry.to_le_bytes());
                }
            }
            writer.section(SEC_SPEC_ROWS, rows);
        }
        Artifact::Nfa(nfa) => {
            let parts = nfa.to_parts();
            let mut head = Vec::with_capacity(8);
            head.extend_from_slice(&parts.num_states.to_le_bytes());
            head.extend_from_slice(&parts.num_letters.to_le_bytes());
            writer.section(SEC_NFA_HEAD, head);
            writer.section(SEC_NFA_INITIAL, encode_u32s(&parts.initial));
            writer.section(SEC_NFA_LETTER_OFFSETS, encode_u32s(&parts.letter_offsets));
            writer.section(SEC_NFA_LETTER_TARGETS, encode_u32s(&parts.letter_targets));
            writer.section(SEC_NFA_EPS_OFFSETS, encode_u32s(&parts.eps_offsets));
            writer.section(SEC_NFA_EPS_TARGETS, encode_u32s(&parts.eps_targets));
            writer.section(SEC_NFA_EDGE_OFFSETS, encode_u32s(&parts.edge_offsets));
            writer.section(SEC_NFA_EDGE_LETTERS, encode_u32s(&parts.edge_letters));
            writer.section(SEC_NFA_EDGE_TARGETS, encode_u32s(&parts.edge_targets));
        }
        Artifact::Dfa(dfa) => {
            let parts = dfa.to_parts();
            let mut head = Vec::with_capacity(8);
            head.extend_from_slice(&parts.num_states.to_le_bytes());
            head.extend_from_slice(&parts.initial.to_le_bytes());
            writer.section(SEC_DFA_HEAD, head);
            writer.section(SEC_DFA_LETTERS, encode_statements(&parts.letters));
            writer.section(SEC_DFA_NEXT, encode_u32s(&parts.next));
        }
    }
    writer.finish(key.kind, key.digest())
}

/// Parses, verifies, and decodes a `.tmart` file image. Checks the
/// container checksums, then that the embedded key re-digests to the
/// embedded content address (so a renamed or tampered-key file cannot
/// impersonate another artifact), then rebuilds the artifact through
/// the validating `from_parts` constructors.
pub fn decode_artifact(bytes: &[u8]) -> Result<(StoreKey, Artifact), FormatError> {
    let sections = Sections::parse(bytes)?;
    let key = StoreKey::decode(sections.get(SEC_KEY)?)?;
    if key.kind != sections.kind {
        return Err("key kind disagrees with header kind");
    }
    if key.digest() != sections.digest {
        return Err("embedded key does not match content address");
    }
    let artifact = match sections.kind {
        StoreKind::RunGraph => {
            let mut meta = Reader::new(sections.get(SEC_META)?);
            let states = usize::try_from(meta.u64()?).map_err(|_| "states overflow")?;
            let build_ns = meta.u64()?;
            meta.finish()?;
            let parts = RunGraphParts {
                labels: decode_run_labels(sections.get(SEC_RG_LABELS)?)?,
                row_start: decode_u32s(sections.get(SEC_RG_ROW_START)?)?,
                edge_from: decode_u32s(sections.get(SEC_RG_EDGE_FROM)?)?,
                edge_target: decode_u32s(sections.get(SEC_RG_EDGE_TARGET)?)?,
                edge_label: decode_u32s(sections.get(SEC_RG_EDGE_LABEL)?)?,
                edge_mask: decode_u16s(sections.get(SEC_RG_EDGE_MASK)?)?,
            };
            Artifact::RunGraph(RunGraphArtifact {
                graph: CompiledRunGraph::from_parts(parts)?,
                states,
                build_ns,
            })
        }
        StoreKind::LazySpec => {
            let mut meta = Reader::new(sections.get(SEC_META)?);
            let build_ns = meta.u64()?;
            meta.finish()?;
            let states = decode_det_states(sections.get(SEC_SPEC_STATES)?)?;
            let mut present = Reader::new(sections.get(SEC_SPEC_PRESENT)?);
            let count = present.u32()? as usize;
            if count != states.len() {
                return Err("row bitmap length disagrees with state count");
            }
            let bitmap = present.bytes(count.div_ceil(8))?;
            present.finish()?;
            if !count.is_multiple_of(8) && bitmap[count / 8] >> (count % 8) != 0 {
                return Err("nonzero bits past the end of the row bitmap");
            }
            let mut rows_reader = Reader::new(sections.get(SEC_SPEC_ROWS)?);
            let width = rows_reader.u32()? as usize;
            let mut rows = Vec::with_capacity(count);
            for i in 0..count {
                if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                    let mut row = Vec::with_capacity(width);
                    for _ in 0..width {
                        row.push(rows_reader.u32()?);
                    }
                    rows.push(Some(row.into_boxed_slice()));
                } else {
                    rows.push(None);
                }
            }
            rows_reader.finish()?;
            Artifact::LazySpec(LazySpecArtifact {
                states,
                rows,
                build_ns,
            })
        }
        StoreKind::Nfa => {
            let mut head = Reader::new(sections.get(SEC_NFA_HEAD)?);
            let num_states = head.u32()?;
            let num_letters = head.u32()?;
            head.finish()?;
            let parts = NfaParts {
                num_states,
                num_letters,
                initial: decode_u32s(sections.get(SEC_NFA_INITIAL)?)?,
                letter_offsets: decode_u32s(sections.get(SEC_NFA_LETTER_OFFSETS)?)?,
                letter_targets: decode_u32s(sections.get(SEC_NFA_LETTER_TARGETS)?)?,
                eps_offsets: decode_u32s(sections.get(SEC_NFA_EPS_OFFSETS)?)?,
                eps_targets: decode_u32s(sections.get(SEC_NFA_EPS_TARGETS)?)?,
                edge_offsets: decode_u32s(sections.get(SEC_NFA_EDGE_OFFSETS)?)?,
                edge_letters: decode_u32s(sections.get(SEC_NFA_EDGE_LETTERS)?)?,
                edge_targets: decode_u32s(sections.get(SEC_NFA_EDGE_TARGETS)?)?,
            };
            Artifact::Nfa(CompiledNfa::from_parts(parts)?)
        }
        StoreKind::Dfa => {
            let mut head = Reader::new(sections.get(SEC_DFA_HEAD)?);
            let num_states = head.u32()?;
            let initial = head.u32()?;
            head.finish()?;
            let parts = DfaParts {
                letters: decode_statements(sections.get(SEC_DFA_LETTERS)?)?,
                num_states,
                initial,
                next: decode_u32s(sections.get(SEC_DFA_NEXT)?)?,
            };
            Artifact::Dfa(CompiledDfa::from_parts(parts)?)
        }
    };
    Ok((key, artifact))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_lang::{ThreadSet, VarSet};

    fn labels() -> Vec<RunLabel> {
        let v0 = VarId::new(0);
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        vec![
            RunLabel {
                thread: t0,
                command: Command::Read(v0),
                action: Action::Complete(ExtCommand::Base(Command::Read(v0))),
            },
            RunLabel {
                thread: t1,
                command: Command::Write(v0),
                action: Action::Internal(ExtCommand::Own(v0)),
            },
            RunLabel {
                thread: t1,
                command: Command::Commit,
                action: Action::Abort,
            },
            RunLabel {
                thread: t0,
                command: Command::Commit,
                action: Action::Internal(ExtCommand::ChkLock),
            },
        ]
    }

    #[test]
    fn run_labels_round_trip() {
        let original = labels();
        let encoded = encode_run_labels(&original);
        assert_eq!(decode_run_labels(&encoded).unwrap(), original);
    }

    #[test]
    fn statements_round_trip() {
        let original = vec![
            Statement::read(0, 1),
            Statement::write(2, 0),
            Statement::commit(3),
            Statement::abort(2),
        ];
        let encoded = encode_statements(&original);
        assert_eq!(decode_statements(&encoded).unwrap(), original);
    }

    #[test]
    fn det_states_round_trip() {
        let mut state = DetState::default();
        state.0[0].phase = DetPhase::Started;
        state.0[0].rs = VarSet::from_bits(0b101);
        state.0[0].wp = ThreadSet::from_bits(0b0110);
        state.0[2].phase = DetPhase::Pending;
        state.0[2].valid = false;
        state.0[2].ws = VarSet::from_bits(0xFFFF);
        let original = vec![DetState::default(), state];
        let encoded = encode_det_states(&original);
        assert_eq!(decode_det_states(&encoded).unwrap(), original);
    }

    #[test]
    fn out_of_range_ids_are_rejected_not_panicked() {
        // thread byte 16 in a run label
        let mut encoded = encode_run_labels(&labels());
        encoded[4] = 16;
        assert!(decode_run_labels(&encoded).is_err());
        // oversized array length prefix must not allocate or panic
        let bogus = 0xFFFF_FFFFu32.to_le_bytes().to_vec();
        assert_eq!(decode_u32s(&bogus).unwrap_err(), "array length exceeds payload");
    }
}
