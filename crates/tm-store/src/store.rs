//! The on-disk artifact store.
//!
//! One directory, one file per artifact, named by the content-address
//! digest of its key (`<hex64>.tmart`). Writes are atomic — encode to
//! `<digest>.tmp` in the same directory, sync, rename — so a crash at
//! any instant leaves either the old file, the new file, or a stale
//! `.tmp` that the next [`ArtifactStore::open`] sweeps away; never a
//! half-written addressable artifact. Reads verify the full container
//! integrity (and that the embedded key matches the requested digest)
//! before anything is trusted; a file that fails is *quarantined* —
//! renamed to `<name>.quarantined` so it stops being addressable but
//! survives for post-mortem — and reported as corrupt so the caller
//! rebuilds from scratch.
//!
//! The store keeps its own LRU ledger (seeded from file mtimes at
//! open, tracked by access order afterwards) and enforces an optional
//! byte and file cap by deleting the least-recently-used artifacts
//! after each save. Hits, misses, corruptions, saves, and evictions
//! are counted for the service metrics.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tm_automata::fault::fault_point;
use tm_obs::{Phase, PhaseTimer};

use crate::codec::{decode_artifact, encode_artifact, Artifact};
use crate::key::StoreKey;

/// Extension of addressable artifact files.
const EXT: &str = "tmart";

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file existed but failed integrity verification or decoding;
    /// it has been quarantined.
    Corrupt(&'static str),
    /// An injected fault fired (`TM_FAULT=store:<nth>`).
    Fault,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(why) => write!(f, "corrupt artifact (quarantined): {why}"),
            StoreError::Fault => write!(f, "injected store fault"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Configuration for [`ArtifactStore::open`].
#[derive(Clone, Debug, Default)]
pub struct StoreConfig {
    /// The store directory; created if absent.
    pub dir: PathBuf,
    /// Byte cap over all addressable files (`None` = unbounded).
    pub cap_bytes: Option<u64>,
    /// File-count cap (`None` = unbounded).
    pub cap_files: Option<usize>,
}

/// A point-in-time snapshot of the store counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loads that returned a verified artifact.
    pub hits: u64,
    /// Loads that found no file for the key.
    pub misses: u64,
    /// Files that failed verification and were quarantined.
    pub corrupt: u64,
    /// Artifacts written (idempotent re-saves of an existing digest are
    /// not counted).
    pub saves: u64,
    /// Files deleted by the byte/file cap.
    pub evicted: u64,
    /// Current addressable bytes on disk (per the ledger).
    pub bytes: u64,
    /// Current addressable file count.
    pub files: u64,
}

struct Entry {
    bytes: u64,
    last_used: u64,
}

/// One row of the LRU-ordered store listing
/// ([`ArtifactStore::entries`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreEntry {
    /// The addressable file name (`<hex64>.tmart`).
    pub file: String,
    /// Size in bytes per the ledger.
    pub bytes: u64,
    /// Seconds since the file was last written (0 if the file vanished
    /// under a concurrent eviction).
    pub age_secs: u64,
    /// The ledger's LRU clock value at the last access — larger = more
    /// recently used; comparable only within one listing.
    pub last_used: u64,
}

struct Ledger {
    entries: HashMap<String, Entry>,
    /// Monotonic access clock for LRU ordering.
    tick: u64,
}

impl Ledger {
    fn touch(&mut self, name: &str) {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(name) {
            entry.last_used = self.tick;
        }
    }

    fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }
}

/// The persistent content-addressed artifact store. All operations are
/// safe to call from multiple threads; the ledger is internally locked
/// and file writes are atomic.
pub struct ArtifactStore {
    dir: PathBuf,
    cap_bytes: Option<u64>,
    cap_files: Option<usize>,
    ledger: Mutex<Ledger>,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    saves: AtomicU64,
    evicted: AtomicU64,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store at `config.dir`. Scans the
    /// directory: stale `.tmp` files from interrupted writes are
    /// deleted, addressable `.tmart` files seed the LRU ledger in
    /// modification-time order (oldest = least recently used).
    pub fn open(config: StoreConfig) -> Result<ArtifactStore, StoreError> {
        std::fs::create_dir_all(&config.dir)?;
        let mut found: Vec<(String, u64, std::time::SystemTime)> = Vec::new();
        for entry in std::fs::read_dir(&config.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                // Leftover from a write interrupted before its rename.
                let _ = std::fs::remove_file(entry.path());
                continue;
            }
            if !name.ends_with(&format!(".{EXT}")) {
                continue;
            }
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            found.push((name.to_owned(), meta.len(), mtime));
        }
        found.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut ledger = Ledger {
            entries: HashMap::new(),
            tick: 0,
        };
        for (name, bytes, _) in found {
            ledger.tick += 1;
            let last_used = ledger.tick;
            ledger.entries.insert(name, Entry { bytes, last_used });
        }
        Ok(ArtifactStore {
            dir: config.dir,
            cap_bytes: config.cap_bytes,
            cap_files: config.cap_files,
            ledger: Mutex::new(ledger),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            saves: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Saves `artifact` under `key`. Content-addressed and idempotent:
    /// if the digest is already present, the entry is only touched in
    /// the LRU. The write is atomic (temp file + rename) and runs the
    /// `store` fault point *before* the rename, so an injected fault
    /// models a crash mid-write: the addressable store is unchanged and
    /// only a `.tmp` remains.
    pub fn save(&self, key: &StoreKey, artifact: &Artifact) -> Result<(), StoreError> {
        let name = key.file_name();
        {
            let mut ledger = self.lock_ledger();
            if ledger.entries.contains_key(&name) {
                ledger.touch(&name);
                return Ok(());
            }
        }
        let mut timer = PhaseTimer::start(Phase::StoreSave);
        let image = encode_artifact(key, artifact);
        timer.set_value(image.len() as u64);
        let final_path = self.dir.join(&name);
        let tmp_path = self.dir.join(format!("{name}.tmp"));
        let write_result = (|| -> Result<(), StoreError> {
            std::fs::write(&tmp_path, &image)?;
            // A crash between here and the rename must leave the store
            // unchanged — that is exactly what the fault point models.
            fault_point("store").map_err(|_| StoreError::Fault)?;
            std::fs::rename(&tmp_path, &final_path)?;
            Ok(())
        })();
        if write_result.is_err() {
            let _ = std::fs::remove_file(&tmp_path);
            return write_result;
        }
        self.saves.fetch_add(1, Ordering::Relaxed);
        let over_cap = {
            let mut ledger = self.lock_ledger();
            ledger.tick += 1;
            let last_used = ledger.tick;
            ledger.entries.insert(
                name,
                Entry {
                    bytes: image.len() as u64,
                    last_used,
                },
            );
            self.collect_over_cap(&mut ledger)
        };
        self.delete_evicted(over_cap);
        Ok(())
    }

    /// Loads the artifact stored under `key`. `Ok(None)` when no file
    /// exists for the digest; `Err(Corrupt)` (after quarantining the
    /// file) when one exists but fails verification; `Err(Fault)` when
    /// the injected `store` fault fires (a poisoned read — the caller
    /// treats it like a miss and rebuilds).
    pub fn load(&self, key: &StoreKey) -> Result<Option<Artifact>, StoreError> {
        let name = key.file_name();
        let path = self.dir.join(&name);
        if !path.exists() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        fault_point("store").map_err(|_| StoreError::Fault)?;
        let mut timer = PhaseTimer::start(Phase::StoreLoad);
        let bytes = match crate::mmap::read_file(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // Raced with an eviction: a plain miss.
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        };
        timer.set_value(bytes.len() as u64);
        match decode_artifact(&bytes).and_then(|(stored_key, artifact)| {
            if stored_key.digest() == key.digest() {
                Ok(artifact)
            } else {
                Err("file content addresses a different key")
            }
        }) {
            Ok(artifact) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.lock_ledger().touch(&name);
                Ok(Some(artifact))
            }
            Err(why) => {
                drop(bytes);
                self.quarantine(&name);
                Err(StoreError::Corrupt(why))
            }
        }
    }

    /// The addressable files currently on disk, least recently used
    /// first (warm-start iterates this and promotes what it can).
    pub fn files(&self) -> Vec<PathBuf> {
        let ledger = self.lock_ledger();
        let mut names: Vec<(&String, u64)> = ledger
            .entries
            .iter()
            .map(|(name, entry)| (name, entry.last_used))
            .collect();
        names.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
        names
            .into_iter()
            .map(|(name, _)| self.dir.join(name))
            .collect()
    }

    /// An LRU-ordered listing of the addressable files (least recently
    /// used first, like [`ArtifactStore::files`]) with their ledger
    /// sizes and on-disk ages — what `GET /v1/store` serves. The age is
    /// read from the file mtime at call time; a file deleted by a
    /// concurrent eviction reports an age of 0 rather than failing the
    /// listing.
    pub fn entries(&self) -> Vec<StoreEntry> {
        let listed: Vec<(String, u64, u64)> = {
            let ledger = self.lock_ledger();
            let mut rows: Vec<(&String, &Entry)> = ledger.entries.iter().collect();
            rows.sort_by(|a, b| a.1.last_used.cmp(&b.1.last_used).then_with(|| a.0.cmp(b.0)));
            rows.into_iter()
                .map(|(name, entry)| (name.clone(), entry.bytes, entry.last_used))
                .collect()
        };
        listed
            .into_iter()
            .map(|(name, bytes, last_used)| {
                let age_secs = std::fs::metadata(self.dir.join(&name))
                    .and_then(|meta| meta.modified())
                    .ok()
                    .and_then(|mtime| mtime.elapsed().ok())
                    .map(|age| age.as_secs())
                    .unwrap_or(0);
                StoreEntry {
                    file: name,
                    bytes,
                    age_secs,
                    last_used,
                }
            })
            .collect()
    }

    /// Loads and verifies an arbitrary store file (warm-start path,
    /// where the key is not known up front — it is read out of the
    /// file and re-verified against the content address). Quarantines
    /// on corruption exactly like [`ArtifactStore::load`].
    pub fn load_path(&self, path: &Path) -> Result<(StoreKey, Artifact), StoreError> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or(StoreError::Corrupt("unrepresentable file name"))?
            .to_owned();
        fault_point("store").map_err(|_| StoreError::Fault)?;
        let mut timer = PhaseTimer::start(Phase::StoreLoad);
        let bytes = crate::mmap::read_file(path)?;
        timer.set_value(bytes.len() as u64);
        match decode_artifact(&bytes).and_then(|(key, artifact)| {
            if key.file_name() == name {
                Ok((key, artifact))
            } else {
                Err("file name does not match content address")
            }
        }) {
            Ok(result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.lock_ledger().touch(&name);
                Ok(result)
            }
            Err(why) => {
                drop(bytes);
                self.quarantine(&name);
                Err(StoreError::Corrupt(why))
            }
        }
    }

    /// Point-in-time counters plus the current ledger totals.
    pub fn stats(&self) -> StoreStats {
        let (bytes, files) = {
            let ledger = self.lock_ledger();
            (ledger.total_bytes(), ledger.entries.len() as u64)
        };
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            saves: self.saves.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            bytes,
            files,
        }
    }

    fn lock_ledger(&self) -> std::sync::MutexGuard<'_, Ledger> {
        self.ledger
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Renames a failed file out of the addressable namespace and drops
    /// it from the ledger.
    fn quarantine(&self, name: &str) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        let from = self.dir.join(name);
        let to = self.dir.join(format!("{name}.quarantined"));
        if std::fs::rename(&from, &to).is_err() {
            // Rename failed (permissions, races): delete rather than
            // risk re-reading the bad file forever.
            let _ = std::fs::remove_file(&from);
        }
        self.lock_ledger().entries.remove(name);
    }

    /// Removes least-recently-used ledger entries until the caps hold;
    /// returns the file names to delete (done outside the lock).
    fn collect_over_cap(&self, ledger: &mut Ledger) -> Vec<String> {
        let mut victims = Vec::new();
        loop {
            let over_bytes = self
                .cap_bytes
                .is_some_and(|cap| ledger.total_bytes() > cap);
            let over_files = self
                .cap_files
                .is_some_and(|cap| ledger.entries.len() > cap);
            if !over_bytes && !over_files {
                break;
            }
            let Some(name) = ledger
                .entries
                .iter()
                .min_by_key(|(name, entry)| (entry.last_used, (*name).clone()))
                .map(|(name, _)| name.clone())
            else {
                break;
            };
            ledger.entries.remove(&name);
            victims.push(name);
        }
        victims
    }

    fn delete_evicted(&self, names: Vec<String>) {
        for name in names {
            let _ = std::fs::remove_file(self.dir.join(&name));
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }
}
