//! Content-address keys.
//!
//! Every artifact in the store is addressed by the SHA-256 digest of a
//! canonical, length-prefixed encoding of *what was built*: the artifact
//! kind, the TM name (with its contention-manager suffix, `"dstm"` or
//! `"dstm+aggressive"`), the property and spec mode for specification
//! artifacts, and the `(threads, vars)` instance size — plus the store
//! format version and the engine version, so a format change or an
//! engine change silently invalidates every old file (they simply stop
//! being addressed; the store's LRU reclaims them).
//!
//! The digest is also embedded in the file itself and re-verified on
//! load, so a renamed or cross-copied file can never impersonate a
//! different key.

use crate::sha256::{sha256, to_hex};

/// Bumped whenever the on-disk byte format changes incompatibly.
pub const FORMAT_VERSION: u32 = 1;

/// Bumped whenever compiled-artifact *semantics* change — anything that
/// could make a previously stored artifact differ from what the current
/// engine would build (exploration order, CSR layout conventions,
/// specification encoding).
pub const ENGINE_VERSION: u32 = 1;

/// What kind of artifact a key addresses. The discriminants are part of
/// the on-disk format.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StoreKind {
    /// A compiled TM run graph (`CompiledRunGraph<RunLabel>`) plus its
    /// build metadata.
    RunGraph,
    /// The interned rows of a lazily stepped deterministic specification
    /// (`SpecCache` contents).
    LazySpec,
    /// A compiled NFA over statements.
    Nfa,
    /// A compiled DFA over statements.
    Dfa,
}

impl StoreKind {
    /// The on-disk tag.
    pub fn as_tag(self) -> u32 {
        match self {
            StoreKind::RunGraph => 1,
            StoreKind::LazySpec => 2,
            StoreKind::Nfa => 3,
            StoreKind::Dfa => 4,
        }
    }

    /// Inverse of [`StoreKind::as_tag`].
    pub fn from_tag(tag: u32) -> Option<StoreKind> {
        match tag {
            1 => Some(StoreKind::RunGraph),
            2 => Some(StoreKind::LazySpec),
            3 => Some(StoreKind::Nfa),
            4 => Some(StoreKind::Dfa),
            _ => None,
        }
    }

    /// Short human-readable name (logs, stats).
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::RunGraph => "run_graph",
            StoreKind::LazySpec => "lazy_spec",
            StoreKind::Nfa => "nfa",
            StoreKind::Dfa => "dfa",
        }
    }
}

/// The full identity of a stored artifact. Fields that don't apply to a
/// kind are empty strings (e.g. `tm` for specification artifacts,
/// `property`/`mode` for run graphs); the kind tag keeps the encodings
/// disjoint regardless.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StoreKey {
    /// Artifact kind.
    pub kind: StoreKind,
    /// TM name with contention-manager suffix (`"TL2"`,
    /// `"dstm+aggressive"`, …); empty for specification artifacts.
    pub tm: String,
    /// Safety-property short name (`"ss"` / `"op"`); empty for run
    /// graphs.
    pub property: String,
    /// Specification mode (`"lazy"` for interned-row caches); empty for
    /// run graphs.
    pub mode: String,
    /// Number of threads `n`.
    pub threads: u32,
    /// Number of shared variables `k`.
    pub vars: u32,
}

impl StoreKey {
    /// Key for a compiled run graph of `tm` at instance size `(n, k)`.
    pub fn run_graph(tm: &str, threads: usize, vars: usize) -> StoreKey {
        StoreKey {
            kind: StoreKind::RunGraph,
            tm: tm.to_owned(),
            property: String::new(),
            mode: String::new(),
            threads: threads as u32,
            vars: vars as u32,
        }
    }

    /// Key for the interned rows of a lazily stepped specification.
    pub fn lazy_spec(property: &str, threads: usize, vars: usize) -> StoreKey {
        StoreKey {
            kind: StoreKind::LazySpec,
            tm: String::new(),
            property: property.to_owned(),
            mode: "lazy".to_owned(),
            threads: threads as u32,
            vars: vars as u32,
        }
    }

    /// Canonical byte encoding of the key itself (no versions). Each
    /// string is length-prefixed, so distinct field values can never
    /// collide by concatenation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.tm.len() + self.property.len());
        out.extend_from_slice(&self.kind.as_tag().to_le_bytes());
        out.extend_from_slice(&self.threads.to_le_bytes());
        out.extend_from_slice(&self.vars.to_le_bytes());
        for field in [&self.tm, &self.property, &self.mode] {
            out.extend_from_slice(&(field.len() as u32).to_le_bytes());
            out.extend_from_slice(field.as_bytes());
        }
        out
    }

    /// Parses the canonical encoding back into a key.
    pub fn decode(bytes: &[u8]) -> Result<StoreKey, &'static str> {
        let mut reader = crate::codec::Reader::new(bytes);
        let kind =
            StoreKind::from_tag(reader.u32()?).ok_or("store key: unknown artifact kind tag")?;
        let threads = reader.u32()?;
        let vars = reader.u32()?;
        let mut strings = [const { String::new() }; 3];
        for slot in &mut strings {
            let len = reader.u32()? as usize;
            let raw = reader.bytes(len)?;
            *slot = std::str::from_utf8(raw)
                .map_err(|_| "store key: non-UTF-8 string field")?
                .to_owned();
        }
        if !reader.is_empty() {
            return Err("store key: trailing bytes");
        }
        let [tm, property, mode] = strings;
        Ok(StoreKey {
            kind,
            tm,
            property,
            mode,
            threads,
            vars,
        })
    }

    /// The content-address digest: SHA-256 over a domain-separation tag,
    /// the format and engine versions, and the canonical key encoding.
    pub fn digest(&self) -> [u8; 32] {
        let mut input = Vec::with_capacity(64);
        input.extend_from_slice(b"tm-store");
        input.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        input.extend_from_slice(&ENGINE_VERSION.to_le_bytes());
        input.extend_from_slice(&self.encode());
        sha256(&input)
    }

    /// The file name under the store directory: 64 hex digits plus the
    /// `.tmart` extension.
    pub fn file_name(&self) -> String {
        let mut name = to_hex(&self.digest());
        name.push_str(".tmart");
        name
    }

    /// Human-readable description (logs, error messages).
    pub fn describe(&self) -> String {
        match self.kind {
            StoreKind::RunGraph => {
                format!("run_graph {}:{}:{}", self.tm, self.threads, self.vars)
            }
            StoreKind::LazySpec => format!(
                "lazy_spec {}:{}:{}",
                self.property, self.threads, self.vars
            ),
            StoreKind::Nfa => format!("nfa {}:{}:{}", self.tm, self.threads, self.vars),
            StoreKind::Dfa => format!("dfa {}:{}:{}", self.tm, self.threads, self.vars),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_encoding_round_trips() {
        let keys = [
            StoreKey::run_graph("dstm+aggressive", 2, 2),
            StoreKey::run_graph("TL2", 3, 1),
            StoreKey::lazy_spec("ss", 2, 2),
            StoreKey::lazy_spec("op", 1, 1),
        ];
        for key in &keys {
            assert_eq!(&StoreKey::decode(&key.encode()).unwrap(), key);
        }
    }

    #[test]
    fn distinct_keys_distinct_digests() {
        let keys = [
            StoreKey::run_graph("dstm", 2, 2),
            StoreKey::run_graph("dstm", 2, 1),
            StoreKey::run_graph("dstm", 1, 2),
            StoreKey::run_graph("dstm+aggressive", 2, 2),
            StoreKey::lazy_spec("ss", 2, 2),
            StoreKey::lazy_spec("op", 2, 2),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a.digest(), b.digest(), "{a:?} vs {b:?}");
            }
        }
    }

    /// Pins the digest function byte-for-byte: if this changes, every
    /// existing store file silently stops being addressed, which must be
    /// a deliberate FORMAT_VERSION / ENGINE_VERSION bump, not an
    /// accident.
    #[test]
    fn digest_is_byte_stable() {
        let key = StoreKey::run_graph("TL2", 2, 2);
        // Hard-coded pin computed at FORMAT_VERSION=1 / ENGINE_VERSION=1.
        assert_eq!(
            key.file_name(),
            "2389e55b68e99704f246816228810a6cc5cfae8ac69114dcf13bf25b0a1b0306.tmart"
        );
        // Field separation: moving a character between fields changes
        // the digest (length prefixes prevent concatenation collisions).
        let mut a = StoreKey::lazy_spec("s", 2, 2);
        a.mode = "slazy".to_owned();
        let b = StoreKey::lazy_spec("ss", 2, 2);
        assert_ne!(a.digest(), b.digest());
    }
}
