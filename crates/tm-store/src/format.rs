//! The `.tmart` container format.
//!
//! A stable little-endian layout, one artifact per file:
//!
//! ```text
//! magic            b"TMARTSTO"                           8 bytes
//! format_version   u32 LE                                4 bytes
//! engine_version   u32 LE                                4 bytes
//! kind             u32 LE (StoreKind tag)                4 bytes
//! section_count    u32 LE                                4 bytes
//! digest           key content-address                  32 bytes
//! section table    per section:
//!                    tag       u32 LE
//!                    len       u64 LE
//!                    checksum  u64 LE  (sha256(payload)[..8])
//! header_checksum  u64 LE over all preceding bytes       8 bytes
//! payloads         section payloads, concatenated in
//!                  table order, no padding
//! ```
//!
//! Integrity: each payload is covered by its section checksum; the
//! fixed header and the section table (including every section
//! checksum) are covered by the header checksum; the parser also
//! demands the file length match the table exactly. A flip of any
//! single bit anywhere in the file therefore fails verification —
//! payload bits break a section checksum, header/table bits break the
//! header checksum, and checksum bits themselves stop matching.
//! Corruption is reported as [`FormatError`]; the store quarantines
//! the file and the caller rebuilds.

use crate::key::{StoreKind, ENGINE_VERSION, FORMAT_VERSION};
use crate::sha256::checksum64;

/// File magic: "TM ARTifact STOre".
pub const MAGIC: [u8; 8] = *b"TMARTSTO";

/// Why a file failed to parse. The messages are stable enough to log
/// and assert on in tests.
pub type FormatError = &'static str;

/// Builds a `.tmart` image section by section.
pub struct SectionWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl Default for SectionWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl SectionWriter {
    /// An empty writer.
    pub fn new() -> SectionWriter {
        SectionWriter {
            sections: Vec::new(),
        }
    }

    /// Appends a section. Tags must be unique within a file; the order
    /// of calls is the on-disk order.
    pub fn section(&mut self, tag: u32, payload: Vec<u8>) {
        debug_assert!(
            self.sections.iter().all(|(t, _)| *t != tag),
            "duplicate section tag {tag}"
        );
        self.sections.push((tag, payload));
    }

    /// Serializes the container: header, checksummed section table,
    /// payloads.
    pub fn finish(self, kind: StoreKind, digest: [u8; 32]) -> Vec<u8> {
        let table_len = self.sections.len() * (4 + 8 + 8);
        let header_len = MAGIC.len() + 4 + 4 + 4 + 4 + 32 + table_len;
        let payload_len: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(header_len + 8 + payload_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&ENGINE_VERSION.to_le_bytes());
        out.extend_from_slice(&kind.as_tag().to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&digest);
        for (tag, payload) in &self.sections {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&checksum64(payload).to_le_bytes());
        }
        out.extend_from_slice(&checksum64(&out).to_le_bytes());
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }
}

/// A parsed, integrity-verified `.tmart` image borrowing the file
/// bytes.
#[derive(Debug)]
pub struct Sections<'a> {
    /// The artifact kind declared by the header.
    pub kind: StoreKind,
    /// The content-address digest embedded in the header.
    pub digest: [u8; 32],
    entries: Vec<(u32, &'a [u8])>,
}

impl<'a> Sections<'a> {
    /// Parses and fully verifies a container image: magic, versions,
    /// header checksum, exact total length, and every section checksum.
    pub fn parse(bytes: &'a [u8]) -> Result<Sections<'a>, FormatError> {
        let fixed = MAGIC.len() + 4 + 4 + 4 + 4 + 32;
        if bytes.len() < fixed {
            return Err("file shorter than the fixed header");
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err("bad magic");
        }
        let word =
            |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        if word(8) != FORMAT_VERSION {
            return Err("format version mismatch");
        }
        if word(12) != ENGINE_VERSION {
            return Err("engine version mismatch");
        }
        let kind = StoreKind::from_tag(word(16)).ok_or("unknown artifact kind tag")?;
        let section_count = word(20) as usize;
        let mut digest = [0u8; 32];
        digest.copy_from_slice(&bytes[24..56]);
        let table_len = section_count
            .checked_mul(4 + 8 + 8)
            .ok_or("section table overflow")?;
        let header_len = fixed
            .checked_add(table_len)
            .ok_or("section table overflow")?;
        if bytes.len() < header_len + 8 {
            return Err("file truncated inside the section table");
        }
        let stored_header_sum = u64::from_le_bytes(
            bytes[header_len..header_len + 8]
                .try_into()
                .expect("8 bytes"),
        );
        if checksum64(&bytes[..header_len]) != stored_header_sum {
            return Err("header checksum mismatch");
        }
        // The header is now trusted; walk the table and carve payloads.
        let mut entries = Vec::with_capacity(section_count);
        let mut offset = header_len + 8;
        for i in 0..section_count {
            let at = fixed + i * (4 + 8 + 8);
            let tag = word(at);
            let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
            let sum = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().expect("8 bytes"));
            let len = usize::try_from(len).map_err(|_| "section length overflow")?;
            let end = offset.checked_add(len).ok_or("section length overflow")?;
            if end > bytes.len() {
                return Err("file truncated inside a section payload");
            }
            let payload = &bytes[offset..end];
            if checksum64(payload) != sum {
                return Err("section checksum mismatch");
            }
            if entries.iter().any(|(t, _)| *t == tag) {
                return Err("duplicate section tag");
            }
            entries.push((tag, payload));
            offset = end;
        }
        if offset != bytes.len() {
            return Err("trailing bytes after the last section");
        }
        Ok(Sections {
            kind,
            digest,
            entries,
        })
    }

    /// The payload of the section tagged `tag`.
    pub fn get(&self, tag: u32) -> Result<&'a [u8], FormatError> {
        self.entries
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
            .ok_or("missing required section")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut writer = SectionWriter::new();
        writer.section(1, b"first payload".to_vec());
        writer.section(2, vec![]);
        writer.section(7, vec![0xAB; 100]);
        writer.finish(StoreKind::RunGraph, [0x5A; 32])
    }

    #[test]
    fn round_trip() {
        let image = sample();
        let sections = Sections::parse(&image).unwrap();
        assert_eq!(sections.kind, StoreKind::RunGraph);
        assert_eq!(sections.digest, [0x5A; 32]);
        assert_eq!(sections.get(1).unwrap(), b"first payload");
        assert_eq!(sections.get(2).unwrap(), b"");
        assert_eq!(sections.get(7).unwrap(), &[0xAB; 100][..]);
        assert!(sections.get(3).is_err());
    }

    /// Every single-bit flip anywhere in the image must be rejected —
    /// this is the integrity contract the store's quarantine path relies
    /// on.
    #[test]
    fn every_single_bit_flip_is_detected() {
        let image = sample();
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut corrupt = image.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Sections::parse(&corrupt).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let image = sample();
        for len in 0..image.len() {
            assert!(
                Sections::parse(&image[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut image = sample();
        image.push(0);
        assert_eq!(
            Sections::parse(&image).unwrap_err(),
            "trailing bytes after the last section"
        );
    }
}
