//! Read-only file mapping with a buffered-read fallback.
//!
//! On 64-bit Unix the store reads artifact files through `mmap(2)` —
//! warm-start of a large registry then touches pages lazily while the
//! integrity pass streams over them once. Everywhere else (and whenever
//! the map fails, e.g. on an empty file or an exotic filesystem) it
//! falls back to [`std::fs::read`]. Callers only ever see a byte
//! slice; which path produced it is an implementation detail, and the
//! checksum verification downstream is identical for both.
//!
//! The raw `mmap`/`munmap` prototypes are declared here directly: the
//! workspace builds offline with no registry access, so the usual
//! `libc` crate is out of reach by policy (see the shims note in the
//! workspace manifest).
#![allow(unsafe_code)]

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// The bytes of a file: memory-mapped when possible, owned otherwise.
/// Dereferences to `[u8]`; unmaps (if mapped) on drop.
pub enum FileBytes {
    /// A live read-only mapping.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(map::Mapping),
    /// Bytes read through the buffered fallback.
    Owned(Vec<u8>),
}

impl Deref for FileBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            FileBytes::Mapped(mapping) => mapping,
            FileBytes::Owned(bytes) => bytes,
        }
    }
}

impl FileBytes {
    /// `true` if these bytes come from a live mapping (statistics /
    /// tests only).
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            FileBytes::Mapped(_) => true,
            FileBytes::Owned(_) => false,
        }
    }
}

/// Reads `path` fully, preferring a read-only mapping.
pub fn read_file(path: &Path) -> io::Result<FileBytes> {
    #[cfg(all(unix, target_pointer_width = "64"))]
    {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        // Empty files can't be mapped; and a file larger than the
        // address-space practical limit shouldn't be trusted anyway.
        if len > 0 {
            if let Ok(len) = usize::try_from(len) {
                if let Some(mapping) = map::map_readonly(&file, len) {
                    return Ok(FileBytes::Mapped(mapping));
                }
            }
        }
        drop(file);
    }
    Ok(FileBytes::Owned(std::fs::read(path)?))
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod map {
    use std::fs::File;
    use std::ops::Deref;
    use std::os::unix::io::AsRawFd;

    // Values shared by every Unix the workspace targets (Linux, macOS,
    // BSDs) for the subset used here.
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    const MAP_FAILED: isize = -1;

    extern "C" {
        fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    /// A live read-only private mapping; unmapped on drop.
    pub struct Mapping {
        addr: *mut u8,
        len: usize,
    }

    // The mapping is read-only and owned: sharing references across
    // threads is no different from sharing a `&[u8]`.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Deref for Mapping {
        type Target = [u8];

        fn deref(&self) -> &[u8] {
            // SAFETY: `addr` is a live mapping of exactly `len`
            // readable bytes, unmapped only in `Drop`.
            unsafe { std::slice::from_raw_parts(self.addr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `addr`/`len` come from a successful `mmap` and
            // are unmapped exactly once.
            unsafe {
                munmap(self.addr, self.len);
            }
        }
    }

    /// Maps `len` bytes of `file` read-only, `None` on any failure (the
    /// caller falls back to a buffered read).
    pub fn map_readonly(file: &File, len: usize) -> Option<Mapping> {
        // SAFETY: a fresh private read-only mapping of a file we hold
        // open; all arguments are well-formed, and failure is reported
        // through MAP_FAILED which we check.
        let addr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if addr as isize == MAP_FAILED || addr.is_null() {
            return None;
        }
        Some(Mapping { addr, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_whole_files() {
        let dir = std::env::temp_dir().join("tm-store-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("probe-{}.bin", std::process::id()));
        let payload: Vec<u8> = (0u32..10_000).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &payload).unwrap();
        let bytes = read_file(&path).unwrap();
        assert_eq!(&*bytes, &payload[..]);
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(bytes.is_mapped());
        drop(bytes);

        std::fs::write(&path, b"").unwrap();
        let empty = read_file(&path).unwrap();
        assert!(empty.is_empty());
        assert!(!empty.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }
}
