//! Behavioral tests for [`ArtifactStore`]: atomic saves, verified
//! loads, quarantine of corrupt files, warm re-open, and the LRU
//! byte/file cap.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use tm_algorithms::{Action, ExtCommand, RunLabel};
use tm_automata::{CompiledRunGraph, RunGraphParts};
use tm_lang::{Command, ThreadId, VarId};
use tm_store::{Artifact, ArtifactStore, RunGraphArtifact, StoreConfig, StoreError, StoreKey};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "tm-store-test-{tag}-{}-{seq}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny but nontrivial run graph: two states, two labels, edges both
/// ways.
fn sample_graph(flavor: u32) -> CompiledRunGraph<RunLabel> {
    let v0 = VarId::new(0);
    let t0 = ThreadId::new(0);
    let labels = vec![
        RunLabel {
            thread: t0,
            command: Command::Read(v0),
            action: Action::Complete(ExtCommand::Base(Command::Read(v0))),
        },
        RunLabel {
            thread: t0,
            command: Command::Commit,
            action: Action::Abort,
        },
    ];
    CompiledRunGraph::from_parts(RunGraphParts {
        labels,
        row_start: vec![0, 2, 3],
        edge_from: vec![0, 0, 1],
        edge_target: vec![1, 0, flavor % 2],
        edge_label: vec![0, 1, 0],
        edge_mask: vec![1, 2, 1],
    })
    .expect("sample CSR is valid")
}

fn sample_artifact(flavor: u32) -> Artifact {
    Artifact::RunGraph(RunGraphArtifact {
        graph: sample_graph(flavor),
        states: 2,
        build_ns: 42,
    })
}

#[test]
fn save_load_round_trip_and_idempotent_resave() {
    let dir = scratch_dir("roundtrip");
    let store = ArtifactStore::open(StoreConfig {
        dir: dir.clone(),
        ..StoreConfig::default()
    })
    .unwrap();
    let key = StoreKey::run_graph("dstm", 2, 2);

    assert!(store.load(&key).unwrap().is_none(), "empty store must miss");
    store.save(&key, &sample_artifact(0)).unwrap();
    store.save(&key, &sample_artifact(0)).unwrap();
    let stats = store.stats();
    assert_eq!(stats.saves, 1, "content-addressed re-save must be a no-op");
    assert_eq!(stats.files, 1);
    assert!(stats.bytes > 0);

    let Some(Artifact::RunGraph(loaded)) = store.load(&key).unwrap() else {
        panic!("expected a run-graph hit");
    };
    assert_eq!(loaded.graph.to_parts(), sample_graph(0).to_parts());
    assert_eq!(loaded.states, 2);
    assert_eq!(loaded.build_ns, 42);
    let stats = store.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_warm_starts_from_disk() {
    let dir = scratch_dir("reopen");
    let key_a = StoreKey::run_graph("dstm", 2, 2);
    let key_b = StoreKey::lazy_spec("op", 2, 2);
    {
        let store = ArtifactStore::open(StoreConfig {
            dir: dir.clone(),
            ..StoreConfig::default()
        })
        .unwrap();
        store.save(&key_a, &sample_artifact(0)).unwrap();
        store
            .save(
                &key_b,
                &Artifact::LazySpec(tm_store::LazySpecArtifact {
                    states: vec![tm_spec::DetState::default()],
                    rows: vec![None],
                    build_ns: 7,
                }),
            )
            .unwrap();
        // A stale temp file from a "crashed" writer.
        std::fs::write(dir.join("deadbeef.tmart.tmp"), b"partial").unwrap();
    }
    let store = ArtifactStore::open(StoreConfig {
        dir: dir.clone(),
        ..StoreConfig::default()
    })
    .unwrap();
    assert_eq!(store.stats().files, 2, "both artifacts must be readdressable");
    assert!(
        !dir.join("deadbeef.tmart.tmp").exists(),
        "stale temp files must be swept at open"
    );
    let files = store.files();
    assert_eq!(files.len(), 2);
    let mut kinds = Vec::new();
    for path in files {
        let (key, _artifact) = store.load_path(&path).unwrap();
        kinds.push(key.kind);
    }
    kinds.sort_by_key(|k| k.as_tag());
    assert_eq!(
        kinds,
        vec![tm_store::StoreKind::RunGraph, tm_store::StoreKind::LazySpec]
    );
    assert!(store.load(&key_a).unwrap().is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_files_are_quarantined_and_become_misses() {
    let dir = scratch_dir("quarantine");
    let store = ArtifactStore::open(StoreConfig {
        dir: dir.clone(),
        ..StoreConfig::default()
    })
    .unwrap();
    let key = StoreKey::run_graph("TL2", 2, 2);
    store.save(&key, &sample_artifact(0)).unwrap();

    // Flip one payload byte on disk.
    let path = dir.join(key.file_name());
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    match store.load(&key) {
        Err(StoreError::Corrupt(_)) => {}
        other => panic!("expected corrupt, got {other:?}"),
    }
    assert!(!path.exists(), "corrupt file must leave the namespace");
    assert!(
        dir.join(format!("{}.quarantined", key.file_name())).exists(),
        "corrupt file must be kept for post-mortem"
    );
    let stats = store.stats();
    assert_eq!(stats.corrupt, 1);
    assert_eq!(stats.files, 0);

    // The key now misses cleanly, and a rebuild can be saved again.
    assert!(store.load(&key).unwrap().is_none());
    store.save(&key, &sample_artifact(0)).unwrap();
    assert!(store.load(&key).unwrap().is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn renamed_files_cannot_impersonate_another_key() {
    let dir = scratch_dir("rename");
    let store = ArtifactStore::open(StoreConfig {
        dir: dir.clone(),
        ..StoreConfig::default()
    })
    .unwrap();
    let key = StoreKey::run_graph("dstm", 2, 2);
    let other = StoreKey::run_graph("dstm", 2, 1);
    store.save(&key, &sample_artifact(0)).unwrap();
    std::fs::rename(dir.join(key.file_name()), dir.join(other.file_name())).unwrap();
    match store.load(&other) {
        Err(StoreError::Corrupt(why)) => {
            assert!(why.contains("different key"), "unexpected reason: {why}")
        }
        other => panic!("expected corrupt, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn byte_cap_evicts_least_recently_used() {
    let dir = scratch_dir("lru");
    // Size one artifact, then cap the store at two of them.
    let probe = {
        let store = ArtifactStore::open(StoreConfig {
            dir: dir.clone(),
            ..StoreConfig::default()
        })
        .unwrap();
        store
            .save(&StoreKey::run_graph("probe", 2, 2), &sample_artifact(0))
            .unwrap();
        store.stats().bytes
    };
    std::fs::remove_dir_all(&dir).unwrap();

    let store = ArtifactStore::open(StoreConfig {
        dir: dir.clone(),
        cap_bytes: Some(probe * 2 + probe / 2),
        cap_files: None,
    })
    .unwrap();
    let keys: Vec<StoreKey> = ["a", "b", "c"]
        .iter()
        .map(|tm| StoreKey::run_graph(tm, 2, 2))
        .collect();
    store.save(&keys[0], &sample_artifact(0)).unwrap();
    store.save(&keys[1], &sample_artifact(0)).unwrap();
    // Touch `a` so `b` is the LRU victim when `c` lands.
    assert!(store.load(&keys[0]).unwrap().is_some());
    store.save(&keys[2], &sample_artifact(0)).unwrap();

    let stats = store.stats();
    assert_eq!(stats.evicted, 1);
    assert_eq!(stats.files, 2);
    assert!(store.load(&keys[0]).unwrap().is_some(), "a was recently used");
    assert!(store.load(&keys[1]).unwrap().is_none(), "b must be evicted");
    assert!(store.load(&keys[2]).unwrap().is_some(), "c was just saved");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn file_cap_holds_too() {
    let dir = scratch_dir("filecap");
    let store = ArtifactStore::open(StoreConfig {
        dir: dir.clone(),
        cap_bytes: None,
        cap_files: Some(1),
    })
    .unwrap();
    store
        .save(&StoreKey::run_graph("a", 2, 2), &sample_artifact(0))
        .unwrap();
    store
        .save(&StoreKey::run_graph("b", 2, 2), &sample_artifact(1))
        .unwrap();
    let stats = store.stats();
    assert_eq!((stats.files, stats.evicted), (1, 1));
    assert!(store.load(&StoreKey::run_graph("a", 2, 2)).unwrap().is_none());
    assert!(store.load(&StoreKey::run_graph("b", 2, 2)).unwrap().is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}
