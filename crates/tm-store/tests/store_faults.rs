//! Fault injection at the `store` site (`TM_FAULT=store:<nth>`): a
//! fault during save models a crash before the atomic rename — the
//! addressable store is unchanged and only a temp file remains; a
//! fault during load models a poisoned read — the caller treats it as
//! a miss and rebuilds. Kept in its own test binary (process) because
//! the fault plan is process-global.

use tm_algorithms::{Action, ExtCommand, RunLabel};
use tm_automata::fault::{clear_fault, install_fault, FaultPlan};
use tm_automata::{CompiledRunGraph, RunGraphParts};
use tm_lang::{Command, ThreadId, VarId};
use tm_store::{Artifact, ArtifactStore, RunGraphArtifact, StoreConfig, StoreError, StoreKey};

fn sample_artifact() -> Artifact {
    let v0 = VarId::new(0);
    let t0 = ThreadId::new(0);
    let labels = vec![RunLabel {
        thread: t0,
        command: Command::Read(v0),
        action: Action::Complete(ExtCommand::Base(Command::Read(v0))),
    }];
    Artifact::RunGraph(RunGraphArtifact {
        graph: CompiledRunGraph::from_parts(RunGraphParts {
            labels,
            row_start: vec![0, 1],
            edge_from: vec![0],
            edge_target: vec![0],
            edge_label: vec![0],
            edge_mask: vec![1],
        })
        .unwrap(),
        states: 1,
        build_ns: 1,
    })
}

fn store_plan(nth: u64) -> FaultPlan {
    FaultPlan {
        site: "store".into(),
        nth,
        delay_ms: 0,
        panic: false,
    }
}

/// One test function: the fault plan is process-global state, so the
/// scenarios run sequentially here rather than racing across threads.
#[test]
fn store_faults_crash_saves_and_poison_loads() {
    let dir = std::env::temp_dir().join(format!("tm-store-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(StoreConfig {
        dir: dir.clone(),
        ..StoreConfig::default()
    })
    .unwrap();
    let key = StoreKey::run_graph("dstm", 2, 2);

    // --- Mid-write crash: the fault fires after the temp file is
    // written but before the rename.
    install_fault(store_plan(1));
    match store.save(&key, &sample_artifact()) {
        Err(StoreError::Fault) => {}
        other => panic!("expected injected fault, got {other:?}"),
    }
    clear_fault();
    assert!(
        !dir.join(key.file_name()).exists(),
        "a crashed save must not publish an addressable file"
    );
    assert_eq!(store.stats().saves, 0);
    assert_eq!(store.stats().files, 0);
    // The store recovers transparently: the retry succeeds.
    store.save(&key, &sample_artifact()).unwrap();
    assert!(store.load(&key).unwrap().is_some());

    // --- Poisoned load: the fault fires before the file is read; the
    // file stays intact (NOT quarantined — nothing proved it corrupt).
    install_fault(store_plan(1));
    match store.load(&key) {
        Err(StoreError::Fault) => {}
        other => panic!("expected injected fault, got {other:?}"),
    }
    clear_fault();
    assert!(dir.join(key.file_name()).exists());
    assert_eq!(store.stats().corrupt, 0);
    assert!(
        store.load(&key).unwrap().is_some(),
        "the artifact must survive a poisoned read untouched"
    );

    // --- A fresh open after the crash sweeps the leftover temp file.
    install_fault(store_plan(1));
    let key2 = StoreKey::run_graph("TL2", 2, 2);
    assert!(store.save(&key2, &sample_artifact()).is_err());
    clear_fault();
    let tmp = dir.join(format!("{}.tmp", key2.file_name()));
    assert!(!tmp.exists(), "failed save cleans its temp file in-process");
    // Simulate the harder case: a crash that never ran cleanup.
    std::fs::write(&tmp, b"partial").unwrap();
    drop(store);
    let reopened = ArtifactStore::open(StoreConfig {
        dir: dir.clone(),
        ..StoreConfig::default()
    })
    .unwrap();
    assert!(!tmp.exists(), "open must sweep stale temp files");
    assert_eq!(reopened.stats().files, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
