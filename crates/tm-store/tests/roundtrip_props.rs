//! Property tests for the artifact codecs: serialize → deserialize is
//! the identity on randomly generated compiled artifacts, digests are
//! byte-stable, and every single-bit corruption of an encoded file is
//! detected and rejected.

use proptest::collection::vec;
use proptest::prelude::*;
use tm_algorithms::{Action, ExtCommand, RunLabel};
use tm_automata::{
    Alphabet, CompiledRunGraph, Dfa, Nfa, RunGraphParts, NO_STATE,
};
use tm_lang::{Command, Statement, ThreadId, ThreadSet, VarId, VarSet};
use tm_spec::{spec_alphabet, DetPhase, DetState};
use tm_store::{
    decode_artifact, encode_artifact, Artifact, LazySpecArtifact, RunGraphArtifact, StoreKey,
    StoreKind,
};

/// A fixed universe of distinct run labels to draw edge labels from.
fn label_universe() -> Vec<RunLabel> {
    let v0 = VarId::new(0);
    let v1 = VarId::new(1);
    let t0 = ThreadId::new(0);
    let t1 = ThreadId::new(1);
    vec![
        RunLabel {
            thread: t0,
            command: Command::Read(v0),
            action: Action::Complete(ExtCommand::Base(Command::Read(v0))),
        },
        RunLabel {
            thread: t0,
            command: Command::Write(v1),
            action: Action::Internal(ExtCommand::Own(v1)),
        },
        RunLabel {
            thread: t0,
            command: Command::Commit,
            action: Action::Complete(ExtCommand::Base(Command::Commit)),
        },
        RunLabel {
            thread: t1,
            command: Command::Read(v1),
            action: Action::Internal(ExtCommand::RLock(v1)),
        },
        RunLabel {
            thread: t1,
            command: Command::Commit,
            action: Action::Internal(ExtCommand::Validate),
        },
        RunLabel {
            thread: t1,
            command: Command::Write(v0),
            action: Action::Abort,
        },
        RunLabel {
            thread: t1,
            command: Command::Commit,
            action: Action::Internal(ExtCommand::ChkLock),
        },
        RunLabel {
            thread: t0,
            command: Command::Read(v1),
            action: Action::Internal(ExtCommand::RValidate),
        },
    ]
}

fn nfa_key() -> StoreKey {
    StoreKey {
        kind: StoreKind::Nfa,
        tm: "prop".into(),
        property: String::new(),
        mode: String::new(),
        threads: 2,
        vars: 2,
    }
}

fn dfa_key() -> StoreKey {
    StoreKey {
        kind: StoreKind::Dfa,
        ..nfa_key()
    }
}

/// Builds a random run-graph CSR over the label universe; masks are
/// uniform per label as `CompiledRunGraph::from_parts` demands.
fn random_run_graph(
    num_states: usize,
    edge_picks: &[(u32, u32)],
    masks: &[u16],
) -> CompiledRunGraph<RunLabel> {
    let labels = label_universe();
    let mut row_start = vec![0u32];
    let mut edge_from = Vec::new();
    let mut edge_target = Vec::new();
    let mut edge_label = Vec::new();
    let mut edge_mask = Vec::new();
    let per_state = (edge_picks.len() / num_states).max(1);
    for (i, &(target, label)) in edge_picks.iter().enumerate() {
        let from = (i / per_state).min(num_states - 1);
        while row_start.len() <= from {
            row_start.push(edge_from.len() as u32);
        }
        edge_from.push(from as u32);
        edge_target.push(target % num_states as u32);
        let label = label as usize % labels.len();
        edge_label.push(label as u32);
        edge_mask.push(masks[label]);
    }
    while row_start.len() <= num_states {
        row_start.push(edge_from.len() as u32);
    }
    CompiledRunGraph::from_parts(RunGraphParts {
        labels,
        row_start,
        edge_from,
        edge_target,
        edge_label,
        edge_mask,
    })
    .expect("generated CSR must be valid")
}

proptest! {
    #[test]
    fn nfa_round_trips(input in (1usize..9, vec((0u32..9, 0u32..16, 0u32..9), 0..40))) {
        let (num_states, edges) = input;
        let letters = spec_alphabet(2, 2);
        let mut nfa = Nfa::new();
        let states: Vec<_> = (0..num_states).map(|_| nfa.add_state()).collect();
        nfa.set_initial(states[0]);
        for &(from, letter, to) in &edges {
            let from = states[from as usize % num_states];
            let to = states[to as usize % num_states];
            // Every 4th pick is an ε-edge so both CSR families are hit.
            let label = if letter % 4 == 0 {
                None
            } else {
                Some(letters[letter as usize % letters.len()])
            };
            nfa.add_transition(from, label, to);
        }
        let mut alphabet = Alphabet::from_letters(&letters);
        let compiled = nfa.compile(&mut alphabet);
        let image = encode_artifact(&nfa_key(), &Artifact::Nfa(compiled.clone()));
        let (key, decoded) = decode_artifact(&image).expect("fresh image must decode");
        prop_assert_eq!(key, nfa_key());
        let Artifact::Nfa(decoded) = decoded else { panic!("wrong artifact kind") };
        prop_assert_eq!(decoded.to_parts(), compiled.to_parts());
    }

    #[test]
    fn dfa_round_trips(input in (1usize..9, vec((0u32..9, 0u32..16, 0u32..9), 0..40))) {
        let (num_states, edges) = input;
        let letters = spec_alphabet(2, 2);
        let mut dfa = Dfa::new(letters.clone());
        let states: Vec<_> = (0..num_states).map(|_| dfa.add_state()).collect();
        dfa.set_initial(states[0]);
        for &(from, letter, to) in &edges {
            let from = states[from as usize % num_states];
            let to = states[to as usize % num_states];
            dfa.set_transition(from, &letters[letter as usize % letters.len()], to);
        }
        let compiled = dfa.compile();
        let image = encode_artifact(&dfa_key(), &Artifact::Dfa(compiled.clone()));
        let (key, decoded) = decode_artifact(&image).expect("fresh image must decode");
        prop_assert_eq!(key, dfa_key());
        let Artifact::Dfa(decoded) = decoded else { panic!("wrong artifact kind") };
        prop_assert_eq!(decoded.to_parts(), compiled.to_parts());
    }

    #[test]
    fn run_graph_round_trips(
        input in (
            (1usize..10, vec((0u32..64, 0u32..64), 0..36)),
            vec(0u16..u16::MAX, 8..9),
            (0u64..u64::MAX, 0u64..1 << 40),
        )
    ) {
        let ((num_states, edge_picks), masks, (_seed, build_ns)) = input;
        let graph = random_run_graph(num_states, &edge_picks, &masks);
        let key = StoreKey::run_graph("prop+tm", 2, 2);
        let artifact = Artifact::RunGraph(RunGraphArtifact {
            graph: graph.clone(),
            states: num_states,
            build_ns,
        });
        let image = encode_artifact(&key, &artifact);
        let (decoded_key, decoded) = decode_artifact(&image).expect("fresh image must decode");
        prop_assert_eq!(decoded_key, key);
        let Artifact::RunGraph(decoded) = decoded else { panic!("wrong artifact kind") };
        prop_assert_eq!(decoded.graph.to_parts(), graph.to_parts());
        prop_assert_eq!(decoded.states, num_states);
        prop_assert_eq!(decoded.build_ns, build_ns);
    }

    #[test]
    fn lazy_spec_round_trips(
        input in (
            (1usize..12, 1usize..6),
            vec((0u32..3, 0u16..u16::MAX, 0u16..16), 1..12),
            vec(0u32..1000, 0..60),
        )
    ) {
        let ((num_states, width), thread_picks, row_entries) = input;
        // Random deterministic-spec states.
        let mut states = Vec::with_capacity(num_states);
        for i in 0..num_states {
            let mut state = DetState::default();
            for (t, &(phase, var_bits, thread_bits)) in
                thread_picks.iter().cycle().skip(i).take(4).enumerate()
            {
                state.0[t].phase = match phase {
                    0 => DetPhase::Finished,
                    1 => DetPhase::Started,
                    _ => DetPhase::Pending,
                };
                state.0[t].valid = var_bits % 2 == 0;
                state.0[t].rs = VarSet::from_bits(var_bits);
                state.0[t].ws = VarSet::from_bits(var_bits.rotate_left(3));
                state.0[t].prs = VarSet::from_bits(var_bits.rotate_left(7));
                state.0[t].pws = VarSet::from_bits(var_bits.rotate_left(11));
                state.0[t].wp = ThreadSet::from_bits(thread_bits & 0xF);
                state.0[t].sp = ThreadSet::from_bits(thread_bits.rotate_left(2) & 0xF);
            }
            states.push(state);
        }
        // Random present/absent successor rows of uniform width.
        let mut rows: Vec<Option<Box<[u32]>>> = Vec::with_capacity(num_states);
        let mut cursor = row_entries.iter().cycle();
        for i in 0..num_states {
            if i % 3 == 2 {
                rows.push(None);
            } else {
                let row: Vec<u32> = (0..width)
                    .map(|_| {
                        let v = *cursor.next().unwrap_or(&0);
                        if v % 5 == 0 { NO_STATE } else { v % num_states as u32 }
                    })
                    .collect();
                rows.push(Some(row.into_boxed_slice()));
            }
        }
        let key = StoreKey::lazy_spec("op", 2, 2);
        let artifact = Artifact::LazySpec(LazySpecArtifact {
            states: states.clone(),
            rows: rows.clone(),
            build_ns: 12_345,
        });
        let image = encode_artifact(&key, &artifact);
        let (decoded_key, decoded) = decode_artifact(&image).expect("fresh image must decode");
        prop_assert_eq!(decoded_key, key);
        let Artifact::LazySpec(decoded) = decoded else { panic!("wrong artifact kind") };
        prop_assert_eq!(decoded.states, states);
        prop_assert_eq!(decoded.rows, rows);
        prop_assert_eq!(decoded.build_ns, 12_345);
    }

    /// Encoding is deterministic (same artifact → bit-identical file,
    /// the property the content-addressed dedup relies on), and every
    /// single-bit flip of the file is rejected by the loader.
    #[test]
    fn encoding_is_stable_and_corruption_is_always_detected(
        input in ((1usize..5, vec((0u32..64, 0u32..64), 0..10)), vec(0u16..u16::MAX, 8..9))
    ) {
        let ((num_states, edge_picks), masks) = input;
        let graph = random_run_graph(num_states, &edge_picks, &masks);
        let key = StoreKey::run_graph("prop+tm", 2, 2);
        let artifact = Artifact::RunGraph(RunGraphArtifact {
            graph,
            states: num_states,
            build_ns: 7,
        });
        let image = encode_artifact(&key, &artifact);
        prop_assert_eq!(&encode_artifact(&key, &artifact), &image);
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut corrupt = image.clone();
                corrupt[byte] ^= 1 << bit;
                prop_assert!(
                    decode_artifact(&corrupt).is_err(),
                    "flip of byte {} bit {} went undetected",
                    byte,
                    bit
                );
            }
        }
    }
}
