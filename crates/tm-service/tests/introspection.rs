//! Introspection acceptance: the sampling profiler must be
//! conformance-neutral (verdicts with the sampler running are
//! bit-identical to verdicts without it, at pool sizes {1, 4}), the
//! lifecycle journal must record real service events with request ids,
//! and the live endpoints — `/v1/sessions`, `/v1/store`, `/v1/events`,
//! `/v1/profile`, and the quantile-bearing `/v1/stats` — must serve
//! real data over HTTP.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use tm_obs::EventKind;
use tm_service::{
    http_request, http_request_with_id, serve, table2_batch, table3_batch, Json, QuerySpec,
    Service, ServiceConfig,
};

/// Serializes tests that toggle process-global observability state (the
/// `TM_OBS` flag, the sampler) and restores the defaults on drop.
struct ObsFlag {
    _guard: MutexGuard<'static, ()>,
}

impl ObsFlag {
    fn hold() -> Self {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        tm_obs::set_obs_enabled(true);
        ObsFlag { _guard: guard }
    }
}

impl Drop for ObsFlag {
    fn drop(&mut self) {
        tm_obs::stop_sampler();
        tm_obs::set_obs_enabled(true);
    }
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "tm-service-introspection-{tag}-{}-{seq}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn paper_batch() -> Vec<QuerySpec> {
    let mut batch = table3_batch();
    batch.extend(table2_batch());
    batch
}

fn config(pool_size: usize) -> ServiceConfig {
    ServiceConfig {
        pool_size,
        ..ServiceConfig::default()
    }
}

#[test]
fn sampling_profiler_is_conformance_neutral() {
    let _flag = ObsFlag::hold();
    let batch = paper_batch();
    for pool_size in [1, 4] {
        let without_sampler = Service::new(config(pool_size)).submit(&batch);
        tm_obs::start_sampler();
        let with_sampler = Service::new(config(pool_size)).submit(&batch);
        tm_obs::stop_sampler();
        // Fresh service on each side, so even the caching flags must
        // agree; the sampler only reads the per-thread slots.
        assert_eq!(with_sampler, without_sampler, "pool={pool_size}");
    }
}

#[test]
fn service_lifecycle_lands_in_the_journal() {
    let _flag = ObsFlag::hold();
    let cursor = tm_obs::global_journal().head();
    let service = Service::new(config(1));
    service.submit(&table3_batch());
    let read = tm_obs::global_journal().read_from(cursor);
    let builds: Vec<_> = read
        .events
        .iter()
        .filter(|(_, e)| e.kind == EventKind::Build)
        .collect();
    assert!(
        builds.len() >= 4,
        "table 3 builds 4 run graphs, journal saw {} builds",
        builds.len()
    );
    for (_, event) in &builds {
        assert!(event.key.contains("run-graph"), "key {:?}", event.key);
        assert!(event.bytes > 0, "a built run graph has a heap size");
        assert!(
            event.request_id.is_empty(),
            "in-process submits carry no request id"
        );
        assert!(event.at_unix_ms > 0);
    }
}

#[test]
fn journal_stays_empty_with_obs_off() {
    let _flag = ObsFlag::hold();
    tm_obs::set_obs_enabled(false);
    let cursor = tm_obs::global_journal().head();
    let service = Service::new(config(1));
    service.submit(&table3_batch()[..2]);
    let read = tm_obs::global_journal().read_from(cursor);
    tm_obs::set_obs_enabled(true);
    assert!(
        read.events.is_empty(),
        "TM_OBS=off publishes nothing, saw {:?}",
        read.events
    );
}

#[test]
fn introspection_endpoints_serve_over_http() {
    let _flag = ObsFlag::hold();
    let dir = scratch_dir("http");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let service = Arc::new(Service::new(ServiceConfig {
        store_dir: Some(dir.clone()),
        ..config(1)
    }));
    let server = std::thread::spawn(move || serve(listener, service));

    // Tail position before the batch, so the events read below sees
    // exactly this batch's lifecycle.
    let (status, body) = http_request(&addr, "GET", "/v1/events", None).expect("events");
    assert_eq!(status, 200);
    let cursor = Json::parse(&body)
        .expect("events body parses")
        .get("next_cursor")
        .and_then(Json::as_usize)
        .expect("next_cursor");

    let batch = tm_service::wire::encode_batch(&table3_batch()[..3]);
    let (status, _, _) =
        http_request_with_id(&addr, "POST", "/v1/batch", Some(&batch), Some("intro-42"))
            .expect("batch");
    assert_eq!(status, 200);

    // /v1/stats carries the latency quantile summary.
    let (status, body) = http_request(&addr, "GET", "/v1/stats", None).expect("stats");
    assert_eq!(status, 200);
    let stats = Json::parse(&body).expect("stats body parses");
    let latency = stats.get("latency").expect("latency member");
    assert!(latency.get("count").and_then(Json::as_usize).expect("count") >= 3);
    let quantile = |key: &str| latency.get(key).and_then(Json::as_f64).expect("quantile");
    assert!(quantile("p50_s") > 0.0);
    assert!(quantile("p50_s") <= quantile("p95_s"));
    assert!(quantile("p95_s") <= quantile("p99_s"));

    // /v1/sessions: one row for the (2,1) session with build work.
    let (status, body) = http_request(&addr, "GET", "/v1/sessions", None).expect("sessions");
    assert_eq!(status, 200);
    let sessions = Json::parse(&body).expect("sessions body parses");
    let rows = sessions.get("sessions").and_then(Json::as_arr).expect("rows");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get("threads").and_then(Json::as_usize), Some(2));
    assert_eq!(rows[0].get("vars").and_then(Json::as_usize), Some(1));
    assert!(rows[0].get("builds").and_then(Json::as_usize).expect("builds") > 0);
    assert!(rows[0].get("heap_bytes").and_then(Json::as_usize).expect("heap") > 0);
    assert!(rows[0].get("lock_waits").and_then(Json::as_usize).expect("locks") >= 3);

    // /v1/store: write-through persisted the built artifacts.
    let (status, body) = http_request(&addr, "GET", "/v1/store", None).expect("store");
    assert_eq!(status, 200);
    let store = Json::parse(&body).expect("store body parses");
    let count = store.get("count").and_then(Json::as_usize).expect("count");
    assert!(count > 0, "write-through leaves files: {body}");
    let files = store.get("files").and_then(Json::as_arr).expect("files");
    assert_eq!(files.len(), count);
    assert!(files[0].get("file").and_then(Json::as_str).unwrap().ends_with(".tmart"));

    // /v1/events from the pre-batch cursor: build events stamped with
    // the batch's request id.
    let path = format!("/v1/events?cursor={cursor}");
    let (status, body) = http_request(&addr, "GET", &path, None).expect("events");
    assert_eq!(status, 200);
    let events = Json::parse(&body).expect("events body parses");
    assert_eq!(events.get("dropped").and_then(Json::as_usize), Some(0));
    let rows = events.get("events").and_then(Json::as_arr).expect("events");
    let build_with_id = rows.iter().any(|e| {
        e.get("kind").and_then(Json::as_str) == Some("build")
            && e.get("request_id").and_then(Json::as_str) == Some("intro-42")
    });
    assert!(build_with_id, "a build event carries the request id: {body}");

    // /v1/profile: the sampler runs for the window and folds at least
    // the registered connection thread (idle while this handler
    // sleeps).
    let (status, profile) =
        http_request(&addr, "GET", "/v1/profile?seconds=1", None).expect("profile");
    assert_eq!(status, 200);
    assert!(
        profile.lines().any(|l| {
            l.rsplit_once(' ').is_some_and(|(stack, count)| {
                !stack.is_empty() && count.parse::<u64>().is_ok()
            })
        }),
        "folded stacks are '<stack> <count>' lines: {profile:?}"
    );

    let (status, _) = http_request(&addr, "POST", "/v1/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    server.join().expect("server thread").expect("serve result");
    tm_obs::stop_sampler();
    let _ = std::fs::remove_dir_all(&dir);
}
