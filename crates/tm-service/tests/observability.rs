//! Observability acceptance: instrumentation must be conformance-neutral
//! (verdicts with metrics disabled are bit-identical to verdicts with
//! metrics enabled, at pool sizes {1, 4}), traces must attach exactly
//! when requested (and never under `TM_OBS=off`), the busy clock must
//! stay within its documented envelope under concurrent batches, and the
//! `/metrics` + `X-Request-Id` HTTP surfaces must round-trip.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use tm_service::wire::{decode_results, encode_batch_request_traced};
use tm_service::{
    http_request, serve, table2_batch, table3_batch, QuerySpec, Service, ServiceConfig,
};

/// Serializes tests that read or toggle the process-global `TM_OBS`
/// flag, and restores `enabled` on drop.
struct ObsFlag {
    _guard: MutexGuard<'static, ()>,
}

impl ObsFlag {
    fn hold() -> Self {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        tm_obs::set_obs_enabled(true);
        ObsFlag { _guard: guard }
    }
}

impl Drop for ObsFlag {
    fn drop(&mut self) {
        tm_obs::set_obs_enabled(true);
    }
}

fn paper_batch() -> Vec<QuerySpec> {
    let mut batch = table3_batch();
    batch.extend(table2_batch());
    batch
}

fn config(pool_size: usize) -> ServiceConfig {
    ServiceConfig {
        pool_size,
        ..ServiceConfig::default()
    }
}

#[test]
fn metrics_off_is_conformance_neutral() {
    let _flag = ObsFlag::hold();
    let batch = paper_batch();
    for pool_size in [1, 4] {
        tm_obs::set_obs_enabled(true);
        let with_obs = Service::new(config(pool_size)).submit(&batch);
        tm_obs::set_obs_enabled(false);
        let without_obs = Service::new(config(pool_size)).submit(&batch);
        tm_obs::set_obs_enabled(true);
        // Fresh service on each side, so even the caching flags must
        // agree; `submit` leaves `trace` as `None` on both sides.
        assert_eq!(with_obs, without_obs, "pool={pool_size}");
    }
}

#[test]
fn traces_attach_exactly_when_requested() {
    let _flag = ObsFlag::hold();
    let batch = table3_batch();
    let service = Service::new(config(1));

    let untraced = service.submit_traced(&batch, None, false);
    assert!(untraced.iter().all(|r| r.trace.is_none()));

    let traced = service.submit_traced(&batch, None, true);
    for result in &traced {
        let trace = result.trace.as_ref().unwrap_or_else(|| {
            panic!("{}: trace requested but absent", result.spec)
        });
        assert!(
            trace.total_ns() > 0,
            "{}: a real liveness query spends time in some phase",
            result.spec
        );
        assert!(
            !trace.events.is_empty(),
            "{}: trace:true captures individual spans",
            result.spec
        );
    }

    // `TM_OBS=off` gates tracing: results come back untraced, verdicts
    // unchanged.
    tm_obs::set_obs_enabled(false);
    let gated = service.submit_traced(&batch, None, true);
    tm_obs::set_obs_enabled(true);
    assert!(gated.iter().all(|r| r.trace.is_none()));
    let verdicts = |rs: &[tm_service::QueryResult]| -> Vec<(String, bool)> {
        rs.iter().map(|r| (r.name.clone(), r.holds)).collect()
    };
    assert_eq!(verdicts(&gated), verdicts(&traced));
}

#[test]
fn busy_clock_stays_inside_its_envelope() {
    let _flag = ObsFlag::hold();
    let service = Arc::new(Service::new(config(1)));
    // Two concurrent batches over the same sessions: each batch's wall
    // time includes waiting on the other's session locks, so the summed
    // work clock must exceed the unioned utilization clock.
    let batch = table3_batch();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let service = Arc::clone(&service);
            let batch = batch.clone();
            scope.spawn(move || service.submit(&batch));
        }
    });
    let stats = service.stats();
    assert!(stats.batch_ns > 0);
    assert!(stats.busy_wall_ns > 0);
    assert!(
        stats.busy_wall_ns <= stats.uptime_ns,
        "union of busy intervals cannot exceed uptime: {stats:?}"
    );
    assert!(
        stats.batch_ns > stats.busy_wall_ns,
        "overlapping batches sum past wall time: {stats:?}"
    );
}

#[test]
fn http_metrics_and_request_id_round_trip() {
    let _flag = ObsFlag::hold();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let service = Arc::new(Service::new(config(1)));
    let server = std::thread::spawn(move || serve(listener, service));

    // A traced batch with an explicit request id: the response must echo
    // the id verbatim and carry a trace per result.
    let body = encode_batch_request_traced(&table3_batch()[..2], None, true);
    let request = format!(
        "POST /v1/batch HTTP/1.1\r\nHost: {addr}\r\nX-Request-Id: obs-test-7\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(
        response.contains("X-Request-Id: obs-test-7"),
        "response echoes the request id: {response}"
    );
    let payload = response.split("\r\n\r\n").nth(1).expect("body");
    let (results, _) = decode_results(payload).expect("response decodes");
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| r.trace.is_some()));

    // The scrape surface: parses as Prometheus text (histogram
    // invariants included) and carries the serving series.
    let (status, exposition) = http_request(&addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    let parsed = tm_obs::text::parse_prometheus(&exposition)
        .unwrap_or_else(|e| panic!("bad exposition: {e}\n{exposition}"));
    for name in [
        "tm_queries_total",
        "tm_query_seconds",
        "tm_cache_hits_total",
        "tm_artifact_builds_total",
        "tm_serve_busy_ratio",
        "tm_tracked_bytes",
        "tm_peak_tracked_bytes",
        "tm_phase_seconds",
        "tm_http_requests_total",
    ] {
        assert!(parsed.has_series(name), "missing {name}:\n{exposition}");
    }
    // The busy-ratio gauge is refreshed at scrape time and stays a
    // fraction of uptime.
    let ratio = parsed.series("tm_serve_busy_ratio")[0].value;
    assert!((0.0..=1.0).contains(&ratio), "busy ratio {ratio}");

    let (status, _) = http_request(&addr, "POST", "/v1/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    server.join().expect("server thread").expect("serve result");
}
