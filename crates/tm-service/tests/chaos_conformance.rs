//! Chaos conformance: inject one deterministic fault at every
//! registered site, retry the batch on the *same* service, and assert
//! the eventual answers are bit-identical to a fault-free run — the
//! fault layer must be invisible once retries succeed, and a failed
//! build must not leak budget or poison artifact caches.
//!
//! Faults are process-global, so everything runs inside one `#[test]`
//! (the default test harness runs sibling tests concurrently).

use tm_automata::fault::{clear_fault, install_fault, FaultPlan};
use tm_service::{QueryOutcome, QueryResult, QuerySpec, Service, ServiceConfig};

fn mixed_batch() -> Vec<QuerySpec> {
    [
        "dstm+aggressive:of:2:1",
        "dstm+aggressive:lf:2:1",
        "sequential:op:2:2",
        "dstm:op:2:2",
        "2PL:ss:2:2",
        "TL2:of:2:1",
    ]
    .iter()
    .map(|q| QuerySpec::parse(q).unwrap())
    .collect()
}

fn config(pool_size: usize) -> ServiceConfig {
    ServiceConfig {
        mem_budget: Some(16 << 20),
        pool_size,
        ..ServiceConfig::default()
    }
}

/// One stable line per result — the bit-identity the chaos runs compare.
fn fingerprint(results: &[QueryResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| {
            let outcome = match &r.outcome {
                QueryOutcome::Verified => "verified".to_owned(),
                QueryOutcome::SafetyViolation { word } => format!("cex {word}"),
                QueryOutcome::LivenessViolation { notation, .. } => format!("lasso {notation}"),
                QueryOutcome::Aborted { reason } => format!("aborted {reason}"),
            };
            format!("{}:{} {} states={} {outcome}", r.spec, r.name, r.holds, r.states)
        })
        .collect()
}

#[test]
fn injected_faults_retry_to_bit_identical_answers() {
    let batch = mixed_batch();
    for pool in [1, 4] {
        clear_fault();
        let baseline_service = Service::new(config(pool));
        let baseline = fingerprint(&baseline_service.submit(&batch));

        for site in ["build", "evict", "dispatch"] {
            let service = Service::new(config(pool));
            install_fault(FaultPlan {
                site: site.to_owned(),
                nth: 1,
                delay_ms: 0,
                panic: false,
            });
            let first = service.submit(&batch);
            clear_fault();
            let aborted = first
                .iter()
                .filter(|r| matches!(r.outcome, QueryOutcome::Aborted { .. }))
                .count();
            // "dispatch" only exists on the parallel path — at pool 1 the
            // fault never fires and the first run is already clean.
            if site == "dispatch" && pool == 1 {
                assert_eq!(aborted, 0, "pool=1 has no dispatch site");
            } else {
                assert_eq!(aborted, 1, "site {site} pool {pool}: one query aborts");
            }
            // Non-aborted queries from the faulted run already match the
            // baseline bit for bit.
            let first_print = fingerprint(&first);
            for (line, base) in first_print.iter().zip(&baseline) {
                if !line.contains("aborted") {
                    assert_eq!(line, base, "site {site} pool {pool}: clean query differs");
                }
            }
            // The retry on the same service converges to the baseline.
            let retried = fingerprint(&service.submit(&batch));
            assert_eq!(retried, baseline, "site {site} pool {pool}: retry differs");
            // The ledger stayed consistent: tracked bytes within budget
            // and no phantom reservation left behind by the failed build.
            let stats = service.stats();
            assert!(
                stats.peak_tracked_bytes <= 16 << 20,
                "site {site} pool {pool}: budget overrun"
            );
            assert_eq!(
                stats.aborted_queries,
                aborted as u64,
                "site {site} pool {pool}: abort counter"
            );
        }
    }
    clear_fault();
}

#[test]
fn a_batch_deadline_sheds_the_tail_and_recovers() {
    let batch = mixed_batch();
    let service = Service::new(ServiceConfig {
        pool_size: 1,
        ..ServiceConfig::default()
    });
    // A zero-millisecond deadline is already expired: every query sheds.
    let shed = service.submit_with_deadline(&batch, Some(0));
    assert_eq!(shed.len(), batch.len());
    for result in &shed {
        assert!(
            matches!(result.outcome, QueryOutcome::Aborted { .. }),
            "{}: expected shed",
            result.spec
        );
        assert!(!result.holds);
    }
    // The same service answers the batch normally without a deadline.
    let clean = service.submit(&batch);
    assert!(clean.iter().all(|r| !matches!(r.outcome, QueryOutcome::Aborted { .. })));
    let stats = service.stats();
    assert_eq!(stats.aborted_queries, batch.len() as u64);
    assert_eq!(stats.queries, 2 * batch.len() as u64);
}
