//! Storage-tier conformance: the persistent artifact store must be
//! *invisible* in every answer — a warm-started service returns
//! bit-identical verdicts to a cold one with zero artifact (re)builds,
//! a budget that demotes and promotes instead of discarding and
//! rebuilding changes nothing but the counters, and a corrupt store
//! file is quarantined and transparently rebuilt.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use tm_service::{
    table2_batch, table3_batch, QueryOutcome, QueryResult, QuerySpec, Service, ServiceConfig,
};
use tm_store::StoreKey;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "tm-service-store-{tag}-{}-{seq}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The full paper roster: Table 3 liveness at (2,1) plus Table 2 safety
/// at (2,2) — 22 queries over 6 artifacts in 2 sessions.
fn paper_batch() -> Vec<QuerySpec> {
    let mut batch = table3_batch();
    batch.extend(table2_batch());
    batch
}

fn store_config(pool_size: usize, dir: &PathBuf, mem_budget: Option<usize>) -> ServiceConfig {
    ServiceConfig {
        mem_budget,
        pool_size,
        store_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    }
}

/// One stable line per result — verdict, states, and witness, but *not*
/// the cached/rebuilt flags, which legitimately differ between a cold
/// and a warm service.
fn fingerprint(results: &[QueryResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| {
            let outcome = match &r.outcome {
                QueryOutcome::Verified => "verified".to_owned(),
                QueryOutcome::SafetyViolation { word } => format!("cex {word}"),
                QueryOutcome::LivenessViolation { notation, .. } => format!("lasso {notation}"),
                QueryOutcome::Aborted { reason } => format!("aborted {reason}"),
            };
            format!("{}:{} {} states={} {outcome}", r.spec, r.name, r.holds, r.states)
        })
        .collect()
}

#[test]
fn warm_restart_answers_roster_with_zero_rebuilds() {
    let batch = paper_batch();
    for pool_size in [1, 4] {
        let dir = scratch_dir(&format!("warm-{pool_size}"));

        // Cold service: populates the store by write-through.
        let cold = Service::try_new(store_config(pool_size, &dir, None)).unwrap();
        let reference = fingerprint(&cold.submit(&batch));
        let cold_stats = cold.stats();
        assert_eq!(cold_stats.artifact_builds, 6, "pool={pool_size}");
        assert_eq!(
            cold_stats.store_saves, 6,
            "every built artifact is written through: {cold_stats:?}"
        );
        assert_eq!(cold_stats.store_files, 6);
        drop(cold);

        // "Restarted daemon": a fresh service over the same directory
        // answers the whole roster without building anything.
        let warm = Service::try_new(store_config(pool_size, &dir, None)).unwrap();
        let warm_results = warm.submit(&batch);
        assert_eq!(fingerprint(&warm_results), reference, "pool={pool_size}");
        let stats = warm.stats();
        assert_eq!(
            stats.artifact_builds, 0,
            "warm start must answer with zero builds: {stats:?}"
        );
        assert_eq!(stats.artifact_rebuilds, 0, "pool={pool_size}");
        assert_eq!(stats.cache_hits, batch.len() as u64, "pool={pool_size}");
        assert!(
            stats.store_hits >= 6,
            "warm boot loads every stored artifact: {stats:?}"
        );
        assert_eq!(stats.store_corrupt, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn tight_budget_demotes_and_promotes_instead_of_rebuilding() {
    let batch = paper_batch();
    // Ground truth and artifact sizes from an unbounded, storeless
    // service.
    let unbounded = Service::new(ServiceConfig {
        pool_size: 1,
        ..ServiceConfig::default()
    });
    let reference = fingerprint(&unbounded.submit(&batch));
    let ledger = unbounded.ledger();
    let total: usize = ledger.iter().map(|(_, bytes)| bytes).sum();
    let largest: usize = ledger.iter().map(|(_, bytes)| *bytes).max().unwrap();
    let budget = largest + (total - largest) / 4;
    assert!(budget < total, "budget must force evictions");

    let dir = scratch_dir("demote");
    let service = Service::try_new(store_config(1, &dir, Some(budget))).unwrap();
    let first = service.submit(&batch);
    assert_eq!(fingerprint(&first), reference);
    let stats = service.stats();
    assert!(stats.evictions > 0, "a tight budget must evict: {stats:?}");
    assert_eq!(
        stats.store_demotes, stats.evictions,
        "with a store every eviction is a demotion: {stats:?}"
    );
    assert!(stats.peak_tracked_bytes <= budget);
    assert!(stats.tracked_bytes <= budget);
    // Demotion accounting: the ledger and the sessions agree, resident
    // bytes actually dropped under the budget, and no query leaked a
    // pin.
    assert_eq!(
        service.artifact_heap_bytes(),
        stats.tracked_bytes,
        "resident artifact bytes must match the ledger at quiescence"
    );
    assert_eq!(service.pinned_artifacts(), 0, "no pins survive a batch");

    // Re-submitting promotes the demoted artifacts back from disk —
    // bit-identical answers, zero rebuilds.
    let second = service.submit(&batch);
    assert_eq!(fingerprint(&second), reference);
    let stats = service.stats();
    assert!(
        stats.store_promotes > 0,
        "re-querying demoted artifacts must promote: {stats:?}"
    );
    assert_eq!(
        stats.artifact_rebuilds, 0,
        "promotes must replace rebuilds entirely: {stats:?}"
    );
    assert!(stats.peak_tracked_bytes <= budget);
    assert_eq!(service.artifact_heap_bytes(), stats.tracked_bytes);
    assert_eq!(service.pinned_artifacts(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_store_files_are_quarantined_and_rebuilt() {
    let batch: Vec<QuerySpec> = ["dstm+aggressive:of:2:1", "TL2:ss:2:2"]
        .iter()
        .map(|q| QuerySpec::parse(q).unwrap())
        .collect();
    let dir = scratch_dir("corrupt");
    let cold = Service::try_new(store_config(1, &dir, None)).unwrap();
    let reference = fingerprint(&cold.submit(&batch));
    assert_eq!(cold.stats().store_files, 2);
    drop(cold);

    // Flip one byte of the liveness run graph on disk.
    let victim = dir.join(StoreKey::run_graph("dstm+aggressive", 2, 1).file_name());
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&victim, &bytes).unwrap();

    // The restart quarantines the corrupt file at warm boot...
    let warm = Service::try_new(store_config(1, &dir, None)).unwrap();
    assert!(
        !victim.exists(),
        "the corrupt file must leave the addressable namespace at boot"
    );
    assert!(
        dir.join(format!(
            "{}.quarantined",
            StoreKey::run_graph("dstm+aggressive", 2, 1).file_name()
        ))
        .exists(),
        "the corrupt file is kept for post-mortem"
    );
    // ...answers correctly anyway (one rebuild), and the write-through
    // re-creates the quarantined key's file from the rebuilt artifact.
    let results = warm.submit(&batch);
    assert_eq!(fingerprint(&results), reference);
    let stats = warm.stats();
    assert!(
        stats.store_corrupt >= 1,
        "the corrupt file must be quarantined: {stats:?}"
    );
    assert_eq!(
        stats.artifact_builds, 1,
        "only the quarantined artifact is rebuilt: {stats:?}"
    );
    assert!(victim.exists(), "the rebuild is written through again");
    assert_eq!(stats.store_files, 2, "{stats:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}
