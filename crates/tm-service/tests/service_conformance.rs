//! Service conformance: every response — in-process and over the wire —
//! must be identical to a direct one-shot [`Verifier`] call (verdicts,
//! counterexample words, lassos), for the full Table 2 + Table 3 roster
//! at pool sizes {1, 4}; and the acceptance criterion of the memory
//! budget: a budget smaller than the sum of all compiled artifacts still
//! answers the full roster bit-identically, with peak tracked bytes
//! never exceeding the budget.

use std::net::TcpListener;
use std::sync::Arc;

use tm_checker::{Verifier, VerdictOutcome};
use tm_service::wire::{decode_results, encode_batch};
use tm_service::{
    http_request, run_query, serve, table2_batch, table3_batch, QueryOutcome, QueryResult,
    Service, ServiceConfig,
};

/// The full paper roster: Table 3 (liveness at (2,1)) interleaved with
/// Table 2 (safety at (2,2)) to give the scheduler something to untangle.
fn paper_batch() -> Vec<tm_service::QuerySpec> {
    let (t2, t3) = (table2_batch(), table3_batch());
    let mut batch = Vec::new();
    for i in 0..t3.len() {
        batch.push(t3[i].clone());
        if i < t2.len() {
            batch.push(t2[i].clone());
        }
    }
    batch
}

fn config(pool_size: usize, mem_budget: Option<usize>) -> ServiceConfig {
    ServiceConfig {
        mem_budget,
        pool_size,
        ..ServiceConfig::default()
    }
}

/// Asserts one service response against a fresh one-shot session: same
/// verdict, same explored states, and byte-identical counterexample word
/// or lasso.
fn assert_matches_one_shot(result: &QueryResult, pool_size: usize) {
    let spec = &result.spec;
    let mut verifier = Verifier::new(spec.threads, spec.vars).pool_size(pool_size);
    let direct = run_query(&mut verifier, spec);
    let context = format!("{spec} pool={pool_size}");
    assert_eq!(result.holds, direct.holds(), "{context}: verdict");
    assert_eq!(
        result.states, direct.stats.states_explored,
        "{context}: states"
    );
    match &direct.outcome {
        VerdictOutcome::Safety(v) => {
            assert_eq!(result.name, v.tm_name, "{context}: name");
            match (v.counterexample(), &result.outcome) {
                (None, QueryOutcome::Verified) => {}
                (Some(word), QueryOutcome::SafetyViolation { word: served }) => {
                    assert_eq!(served, &word.to_string(), "{context}: word");
                }
                other => panic!("{context}: outcome shape mismatch: {other:?}"),
            }
        }
        VerdictOutcome::Liveness(v) => {
            assert_eq!(result.name, v.tm_name, "{context}: name");
            match (v.counterexample(), &result.outcome) {
                (None, QueryOutcome::Verified) => {}
                (
                    Some(lasso),
                    QueryOutcome::LivenessViolation {
                        prefix,
                        cycle,
                        notation,
                    },
                ) => {
                    let strings =
                        |labels: &[tm_algorithms::RunLabel]| -> Vec<String> {
                            labels.iter().map(ToString::to_string).collect()
                        };
                    assert_eq!(prefix, &strings(&lasso.prefix), "{context}: prefix");
                    assert_eq!(cycle, &strings(&lasso.cycle), "{context}: cycle");
                    assert_eq!(notation, &lasso.cycle_notation(), "{context}: notation");
                }
                other => panic!("{context}: outcome shape mismatch: {other:?}"),
            }
        }
        VerdictOutcome::Reduction(_) => unreachable!("no reduction queries in the roster"),
        VerdictOutcome::Aborted(reason) => panic!("{context}: one-shot aborted: {reason}"),
    }
}

/// Strips the caching flags (which legitimately differ between service
/// instances with different histories) for cross-run comparison.
fn verdict_fields(results: &[QueryResult]) -> Vec<(String, bool, usize, QueryOutcome)> {
    results
        .iter()
        .map(|r| (r.name.clone(), r.holds, r.states, r.outcome.clone()))
        .collect()
}

#[test]
fn in_process_service_matches_one_shot_sessions() {
    let batch = paper_batch();
    for pool_size in [1, 4] {
        let service = Service::new(config(pool_size, None));
        let results = service.submit(&batch);
        assert_eq!(results.len(), batch.len());
        for (result, spec) in results.iter().zip(&batch) {
            assert_eq!(&result.spec, spec, "results come back in request order");
            assert_matches_one_shot(result, pool_size);
        }
        // The scheduler made each artifact's queries contiguous: 6
        // artifacts, 6 builds, everything else cache hits.
        let stats = service.stats();
        assert_eq!(stats.artifact_builds, 6, "pool={pool_size}");
        assert_eq!(stats.cache_hits, 16, "pool={pool_size}");
        assert_eq!(stats.artifact_rebuilds, 0, "pool={pool_size}");
    }
}

#[test]
fn tight_budget_stays_under_peak_and_answers_bit_identically() {
    let batch = paper_batch();
    // Ground truth and artifact sizes from an unbounded service.
    let unbounded = Service::new(config(1, None));
    let reference = unbounded.submit(&batch);
    let ledger = unbounded.ledger();
    let total: usize = ledger.iter().map(|(_, bytes)| bytes).sum();
    let largest: usize = ledger.iter().map(|(_, bytes)| *bytes).max().unwrap();
    assert!(ledger.len() >= 2 && largest < total);

    // A budget smaller than the sum of all compiled artifacts (so the
    // batch *cannot* be answered without evicting) but large enough for
    // any single artifact (the budget's documented requirement).
    let budget = largest + (total - largest) / 4;
    assert!(budget < total);
    let service = Service::new(config(1, Some(budget)));
    let first = service.submit(&batch);
    assert_eq!(verdict_fields(&first), verdict_fields(&reference));
    let stats = service.stats();
    assert!(stats.evictions > 0, "a tight budget must evict: {stats:?}");
    assert!(
        stats.peak_tracked_bytes <= budget,
        "peak {} exceeds budget {budget}",
        stats.peak_tracked_bytes
    );
    assert!(stats.tracked_bytes <= budget);

    // Re-submitting forces transparent rebuilds of evicted artifacts —
    // and stays bit-identical and under budget.
    let second = service.submit(&batch);
    assert_eq!(verdict_fields(&second), verdict_fields(&reference));
    let stats = service.stats();
    assert!(
        stats.artifact_rebuilds > 0,
        "re-querying evicted artifacts must rebuild: {stats:?}"
    );
    assert!(stats.peak_tracked_bytes <= budget);
    // Rebuilt results carry the flag on their first (re)building query.
    assert!(second.iter().any(|r| r.rebuilt));
}

#[test]
fn http_endpoint_matches_the_in_process_service() {
    let batch = paper_batch();
    for pool_size in [1, 4] {
        // In-process ground truth with the same (fresh) configuration.
        let expected = Service::new(config(pool_size, None)).submit(&batch);

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr").to_string();
        let service = Arc::new(Service::new(config(pool_size, None)));
        let server = std::thread::spawn(move || serve(listener, service));

        let (status, body) = http_request(&addr, "GET", "/healthz", None).expect("healthz");
        assert_eq!((status, body.as_str()), (200, "{\"ok\": true}"));

        let (status, body) =
            http_request(&addr, "POST", "/v1/batch", Some(&encode_batch(&batch)))
                .expect("batch request");
        assert_eq!(status, 200, "{body}");
        let (results, stats) = decode_results(&body).expect("response decodes");
        // Over the wire ≡ in process, caching flags included (same
        // batch, same fresh service state).
        assert_eq!(results, expected, "pool={pool_size}");
        assert_eq!(stats.queries, batch.len() as u64);
        assert_eq!(stats.pool_size, pool_size);

        // Protocol errors are reported, not fatal.
        let (status, _) = http_request(&addr, "POST", "/v1/batch", Some("{oops"))
            .expect("malformed request is answered");
        assert_eq!(status, 400);
        // An out-of-range instance size is a client error, not a panic
        // in the serving thread (the engines assert on threads > 8).
        let oversized =
            r#"{"queries": [{"tm": "2PL", "property": "of", "threads": 9, "vars": 1}]}"#;
        let (status, body) = http_request(&addr, "POST", "/v1/batch", Some(oversized))
            .expect("oversized query is answered");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("out of range"), "{body}");
        let (status, _) = http_request(&addr, "GET", "/nope", None).expect("404 route");
        assert_eq!(status, 404);
        let (status, body) = http_request(&addr, "GET", "/v1/stats", None).expect("stats");
        assert_eq!(status, 200);
        assert!(body.contains("\"queries\""));

        // Clean shutdown: serve() returns and reports every connection.
        let (status, _) = http_request(&addr, "POST", "/v1/shutdown", None).expect("shutdown");
        assert_eq!(status, 200);
        let served = server.join().expect("server thread").expect("serve result");
        assert_eq!(served, 7);
    }
}
