//! HTTP-level failure semantics: abort reasons map to status codes
//! (504 deadline, 422 state limit), overload and drain answer 429/503
//! with `Retry-After`, and oversized header sections answer 431 —
//! end-to-end through a real listener, never a hung or panicked server.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use tm_service::wire::{decode_results, encode_batch_request};
use tm_service::{
    http_request, http_request_full, serve, EngineError, QueryOutcome, QuerySpec, Service,
    ServiceConfig,
};

fn spawn_server(config: ServiceConfig) -> (String, std::thread::JoinHandle<std::io::Result<u64>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let service = Arc::new(Service::new(config));
    let server = std::thread::spawn(move || serve(listener, service));
    (addr, server)
}

fn shutdown(addr: &str, server: std::thread::JoinHandle<std::io::Result<u64>>) {
    let (status, _) = http_request(addr, "POST", "/v1/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    server.join().expect("server thread").expect("serve result");
}

#[test]
fn a_request_deadline_maps_to_504_with_retry_after() {
    let (addr, server) = spawn_server(ServiceConfig {
        pool_size: 1,
        ..ServiceConfig::default()
    });
    let batch = vec![QuerySpec::parse("dstm+aggressive:of:2:1").unwrap()];
    // deadline_ms = 0 is already expired: the whole batch sheds.
    let body = encode_batch_request(&batch, Some(0));
    let (status, body, retry_after) =
        http_request_full(&addr, "POST", "/v1/batch", Some(&body)).expect("batch");
    assert_eq!(status, 504, "{body}");
    assert!(retry_after.is_some(), "504 carries Retry-After");
    let (results, stats) = decode_results(&body).expect("aborted results still decode");
    assert_eq!(results.len(), 1);
    assert_eq!(
        results[0].abort_reason(),
        Some(EngineError::Deadline),
        "{body}"
    );
    assert_eq!(stats.aborted_queries, 1);
    // A deadline-free retry of the same batch succeeds.
    let body = encode_batch_request(&batch, None);
    let (status, body) = http_request(&addr, "POST", "/v1/batch", Some(&body)).expect("retry");
    assert_eq!(status, 200, "{body}");
    let (results, _) = decode_results(&body).expect("decode");
    assert!(matches!(results[0].outcome, QueryOutcome::Verified));
    shutdown(&addr, server);
}

#[test]
fn a_state_limit_maps_to_422_without_retry_after() {
    let (addr, server) = spawn_server(ServiceConfig {
        pool_size: 1,
        max_states: 10,
        ..ServiceConfig::default()
    });
    let batch = vec![QuerySpec::parse("dstm:op:2:2").unwrap()];
    let body = encode_batch_request(&batch, None);
    let (status, body, retry_after) =
        http_request_full(&addr, "POST", "/v1/batch", Some(&body)).expect("batch");
    assert_eq!(status, 422, "{body}");
    assert_eq!(retry_after, None, "422 is not retryable");
    let (results, _) = decode_results(&body).expect("decode");
    assert_eq!(results[0].abort_reason(), Some(EngineError::StateLimit(10)));
    shutdown(&addr, server);
}

/// Sends raw bytes, half-closes the write side (so the server consumes
/// everything we sent and closes without a RST), and returns the raw
/// response.
fn raw_request(addr: &str, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    response
}

#[test]
fn oversized_header_sections_answer_431() {
    let (addr, server) = spawn_server(ServiceConfig {
        pool_size: 1,
        ..ServiceConfig::default()
    });
    // Too many headers: the 101st line trips the count cap, so every
    // sent byte is consumed before the server answers and closes.
    let mut request = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..101 {
        request.push_str(&format!("X-Padding-{i}: x\r\n"));
    }
    let response = raw_request(&addr, &request);
    assert!(response.starts_with("HTTP/1.1 431"), "{response}");

    // Too many header bytes: 33 lines of 1 KiB trip the 32 KiB byte cap
    // exactly on the last line sent.
    let mut request = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..33 {
        let prefix = format!("X-{i:03}: ");
        request.push_str(&format!("{prefix}{}\r\n", "y".repeat(1024 - prefix.len() - 2)));
    }
    let response = raw_request(&addr, &request);
    assert!(response.starts_with("HTTP/1.1 431"), "{response}");

    // A normal request on a fresh connection still works.
    let (status, _) = http_request(&addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);
    shutdown(&addr, server);
}

#[test]
fn overload_sheds_with_429_and_drain_with_503() {
    // max_inflight = 0 would disable shedding; 1 makes the second
    // concurrent batch observable. A slow query keeps the first batch
    // inside the service long enough to collide deterministically: we
    // use a liveness query at (2,2), the roster's slowest.
    let (addr, server) = spawn_server(ServiceConfig {
        pool_size: 1,
        max_inflight: 1,
        ..ServiceConfig::default()
    });
    let slow = encode_batch_request(
        &[
            QuerySpec::parse("dstm:op:2:2").unwrap(),
            QuerySpec::parse("TL2:op:2:2").unwrap(),
            QuerySpec::parse("2PL:op:2:2").unwrap(),
            QuerySpec::parse("sequential:op:2:2").unwrap(),
        ],
        None,
    );
    let addr_bg = addr.clone();
    let first = std::thread::spawn(move || {
        // Retry shedding: the probe below may win the single admission
        // slot for a moment.
        loop {
            let (status, body) =
                http_request(&addr_bg, "POST", "/v1/batch", Some(&slow)).expect("slow batch");
            if status != 429 {
                return (status, body);
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    });
    // Give the slow batch a head start into the admission window, then
    // probe: with max_inflight=1 a collision answers 429 + Retry-After.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let quick = encode_batch_request(&[QuerySpec::parse("sequential:ss:2:1").unwrap()], None);
    let mut saw_429 = false;
    while !first.is_finished() {
        let (status, _, retry_after) =
            http_request_full(&addr, "POST", "/v1/batch", Some(&quick)).expect("quick batch");
        if status == 429 {
            assert!(retry_after.is_some(), "429 carries Retry-After");
            saw_429 = true;
            break;
        }
        assert_eq!(status, 200);
    }
    let (status, _) = first.join().expect("first batch");
    assert_eq!(status, 200);
    assert!(saw_429, "never collided with the in-flight batch");

    // Draining: after shutdown is requested, late batches get 503 +
    // Retry-After (when the accept loop still picks them up) or a
    // connection error (once it exited) — never a hang.
    let (status, _) = http_request(&addr, "POST", "/v1/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    if let Ok((status, _, retry_after)) =
        http_request_full(&addr, "POST", "/v1/batch", Some(&quick))
    {
        assert_eq!(status, 503);
        assert!(retry_after.is_some(), "503 carries Retry-After");
    }
    server.join().expect("server thread").expect("serve result");
}
