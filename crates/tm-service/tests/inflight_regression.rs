//! Regression: a panicking connection thread must not leak its slot in
//! the inflight admission counter. Before the RAII guard, the counter
//! was incremented and decremented manually around the batch, so a
//! panic between the two permanently shrank capacity — with
//! `max_inflight = 1`, one panic turned every later request into a 429.
//!
//! Lives in its own integration-test file (= its own process) because
//! fault plans are process-global and sibling `#[test]`s run
//! concurrently.

use std::net::TcpListener;
use std::sync::Arc;

use tm_automata::fault::{clear_fault, install_fault, FaultPlan};
use tm_service::wire::encode_batch_request;
use tm_service::{http_request, serve, QuerySpec, Service, ServiceConfig};

#[test]
fn a_panicked_batch_does_not_leak_the_admission_slot() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let service = Arc::new(Service::new(ServiceConfig {
        pool_size: 1,
        max_inflight: 1,
        ..ServiceConfig::default()
    }));
    let server = std::thread::spawn(move || serve(listener, service));

    let batch = encode_batch_request(&[QuerySpec::parse("dstm+aggressive:of:2:1").unwrap()], None);

    // The panic flavor of the encode fault: the connection thread dies
    // mid-response while holding the (sole) admission slot. The client
    // sees a torn connection, not an HTTP answer.
    install_fault(FaultPlan {
        site: "encode".to_owned(),
        nth: 1,
        delay_ms: 0,
        panic: true,
    });
    let torn = http_request(&addr, "POST", "/v1/batch", Some(&batch));
    clear_fault();
    assert!(torn.is_err(), "the panicked thread sent no response: {torn:?}");

    // With the slot released by the guard's Drop during unwinding, the
    // very next request admits; a leaked slot would 429 here forever.
    let (status, body) = http_request(&addr, "POST", "/v1/batch", Some(&batch)).expect("retry");
    assert_eq!(status, 200, "leaked admission slot? body: {body}");

    let (status, _) = http_request(&addr, "POST", "/v1/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    server.join().expect("server thread").expect("serve result");
}
