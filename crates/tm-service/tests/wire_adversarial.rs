//! Adversarial wire-format tests: the JSON parser and the body decoders
//! must answer `Err` — never panic, never overflow the stack, never
//! produce non-finite numbers — on malformed, deeply nested, or
//! bit-flipped input. The generators come from the workspace's
//! deterministic `proptest` shim, so failures reproduce exactly.

use proptest::prelude::*;
use tm_service::wire::{
    decode_batch, decode_batch_request, decode_results, encode_batch_request, Json,
    MAX_JSON_DEPTH,
};
use tm_service::QuerySpec;

#[test]
fn deep_nesting_is_rejected_not_a_stack_overflow() {
    // Way past the cap: the parser must refuse at depth MAX_JSON_DEPTH+1
    // instead of recursing once per bracket.
    for depth in [MAX_JSON_DEPTH + 1, 10_000, 1_000_000] {
        let arrays = format!("{}{}", "[".repeat(depth), "]".repeat(depth));
        assert!(Json::parse(&arrays).is_err(), "depth {depth} arrays");
        let objects = format!("{}1{}", "{\"k\":".repeat(depth), "}".repeat(depth));
        assert!(Json::parse(&objects).is_err(), "depth {depth} objects");
    }
    // Exactly at the cap still parses.
    let at_cap = format!(
        "{}1{}",
        "[".repeat(MAX_JSON_DEPTH - 1),
        "]".repeat(MAX_JSON_DEPTH - 1)
    );
    assert!(Json::parse(&at_cap).is_ok());
}

#[test]
fn overflowing_numbers_are_rejected_not_infinite() {
    assert!(Json::parse("1e999").is_err());
    assert!(Json::parse("-1e999").is_err());
    assert!(Json::parse("1e308").is_ok());
    assert!(Json::parse("123456789012345678901234567890").is_ok());
}

fn arb_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255, 0..256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn random_bytes_never_panic_the_decoders(bytes in arb_bytes()) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&text);
        let _ = decode_batch(&text);
        let _ = decode_batch_request(&text);
        let _ = decode_results(&text);
    }

    #[test]
    fn bit_flipped_valid_requests_never_panic((idx, byte) in (0usize..4096, 0u8..=255)) {
        let body = encode_batch_request(
            &[
                QuerySpec::parse("dstm+aggressive:of:2:1").unwrap(),
                QuerySpec::parse("TL2:ss:2:2").unwrap(),
            ],
            Some(5_000),
        );
        let mut bytes = body.into_bytes();
        let i = idx % bytes.len();
        bytes[i] = byte;
        let text = String::from_utf8_lossy(&bytes);
        // Either still decodable or a structured error — never a panic.
        if let Ok((queries, deadline)) = decode_batch_request(&text) {
            prop_assert!(queries.len() <= 2);
            prop_assert!(deadline.is_none() || deadline.is_some());
        }
    }

    #[test]
    fn digit_bombs_stay_finite(
        (digits, exp) in (1usize..300, 1usize..400)
    ) {
        let text = format!("{}e{}", "9".repeat(digits), exp);
        if let Ok(json) = Json::parse(&text) {
            prop_assert!(json.as_f64().unwrap().is_finite());
        }
    }

    #[test]
    fn bracket_soup_is_handled_in_bounded_depth(
        parts in proptest::collection::vec(0usize..6, 0..300)
    ) {
        let mut text = String::new();
        for p in &parts {
            text.push_str(["[", "]", "{\"k\":", "}", "\"s\"", "1,"][*p]);
        }
        let _ = Json::parse(&text);
    }
}
