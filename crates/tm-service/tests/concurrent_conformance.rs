//! Concurrent conformance: N client threads hammering one shared
//! service with interleaved Table 2/3 sub-batches under a tight budget
//! must produce bit-identical fingerprints to the same sub-batches
//! submitted sequentially — at pools {1, 4} — while the ledger never
//! exceeds the budget (pinned in-flight artifacts are not evictable, so
//! races cannot overcommit). Also pins the lock-freedom of the stats
//! surface: `stats()` answers immediately while a long batch runs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tm_service::{
    table2_batch, table3_batch, QueryOutcome, QueryResult, QuerySpec, Service, ServiceConfig,
};

const CLIENT_THREADS: usize = 4;
const ROUNDS_PER_THREAD: usize = 3;

/// The paper roster cut into one interleaved sub-batch per client
/// thread, each mixing Table 3 liveness at (2,1) with Table 2 safety at
/// (2,2) so concurrent threads contend on both sessions and all six
/// artifacts.
fn sub_batches() -> Vec<Vec<QuerySpec>> {
    let (t2, t3) = (table2_batch(), table3_batch());
    let mut batches: Vec<Vec<QuerySpec>> = (0..CLIENT_THREADS).map(|_| Vec::new()).collect();
    for (i, spec) in t3.into_iter().chain(t2).enumerate() {
        batches[i % CLIENT_THREADS].push(spec);
    }
    batches
}

fn config(pool_size: usize, mem_budget: Option<usize>) -> ServiceConfig {
    ServiceConfig {
        mem_budget,
        pool_size,
        ..ServiceConfig::default()
    }
}

/// One stable line per result. Deliberately excludes the caching flags,
/// which legitimately depend on submission interleaving; everything the
/// paper's tables report must be interleaving-independent.
fn fingerprint(results: &[QueryResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| {
            let outcome = match &r.outcome {
                QueryOutcome::Verified => "verified".to_owned(),
                QueryOutcome::SafetyViolation { word } => format!("cex {word}"),
                QueryOutcome::LivenessViolation { notation, .. } => format!("lasso {notation}"),
                QueryOutcome::Aborted { reason } => format!("aborted {reason}"),
            };
            format!("{}:{} {} states={} {outcome}", r.spec, r.name, r.holds, r.states)
        })
        .collect()
}

#[test]
fn concurrent_submission_is_bit_identical_to_sequential() {
    let batches = sub_batches();
    let total_queries: usize = batches.iter().map(Vec::len).sum();

    // The tight budget, derived once from an unbounded service's ledger:
    // big enough for any single artifact (the budget's documented
    // requirement), smaller than the artifact total (so the roster
    // cannot be answered without evicting).
    let sizing = Service::new(config(1, None));
    for batch in &batches {
        sizing.submit(batch);
    }
    let ledger = sizing.ledger();
    let total: usize = ledger.iter().map(|(_, bytes)| bytes).sum();
    let largest: usize = ledger.iter().map(|(_, bytes)| *bytes).max().unwrap();
    let budget = largest + (total - largest) / 4;
    assert!(budget < total, "the tight budget must force eviction");

    for pool_size in [1, 4] {
        // Sequential ground truth under the same tight budget.
        let sequential = Service::new(config(pool_size, Some(budget)));
        let baselines: Vec<Vec<String>> = batches
            .iter()
            .map(|batch| fingerprint(&sequential.submit(batch)))
            .collect();
        assert!(
            baselines
                .iter()
                .flatten()
                .all(|line| !line.contains("aborted")),
            "pool={pool_size}: sequential baseline must be clean"
        );

        // The same sub-batches, hammered concurrently at the service:
        // every thread round must reproduce its baseline bit for bit,
        // whatever the interleaving did to the artifact caches.
        let service = Arc::new(Service::new(config(pool_size, Some(budget))));
        std::thread::scope(|scope| {
            for (batch, baseline) in batches.iter().zip(&baselines) {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    for round in 0..ROUNDS_PER_THREAD {
                        let results = service.submit(batch);
                        assert_eq!(
                            &fingerprint(&results),
                            baseline,
                            "pool={pool_size} round={round}: concurrent != sequential"
                        );
                    }
                });
            }
        });

        let stats = service.stats();
        assert_eq!(
            stats.queries,
            (total_queries * ROUNDS_PER_THREAD) as u64,
            "pool={pool_size}: every submission answered"
        );
        assert_eq!(stats.aborted_queries, 0, "pool={pool_size}");
        // The budget held under racing admissions: a pinned in-flight
        // artifact was never evicted out from under a query, and
        // reservations never overcommitted the ledger.
        assert!(
            stats.peak_tracked_bytes <= budget,
            "pool={pool_size}: peak {} exceeds budget {budget}",
            stats.peak_tracked_bytes
        );
        assert!(stats.tracked_bytes <= budget, "pool={pool_size}");
        assert!(
            stats.evictions > 0,
            "pool={pool_size}: a tight budget must evict: {stats:?}"
        );
    }
}

#[test]
fn stats_answer_immediately_while_a_long_batch_runs() {
    // The slowest roster queries keep a session busy while the main
    // thread probes the stats surface — which reads atomics and the
    // short ledger/registry locks only, never a session lock.
    let service = Arc::new(Service::new(config(1, None)));
    let busy = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let slow: Vec<QuerySpec> = ["dstm:op:2:2", "TL2:op:2:2", "2PL:op:2:2"]
                .iter()
                .map(|q| QuerySpec::parse(q).unwrap())
                .collect();
            service.submit(&slow)
        })
    };
    // Sample while the batch is genuinely in flight. The *minimum*
    // latency over the window is what the lock-freedom claim bounds —
    // a single sample can always lose the scheduler lottery on a
    // loaded host.
    let mut fastest = Duration::MAX;
    while !busy.is_finished() {
        let start = Instant::now();
        let stats = service.stats();
        fastest = fastest.min(start.elapsed());
        assert!(stats.queries <= 3);
        std::thread::sleep(Duration::from_millis(1));
    }
    let results = busy.join().expect("long batch");
    assert_eq!(results.len(), 3);
    assert!(
        fastest < Duration::from_millis(10),
        "stats took ≥10ms at best ({fastest:?}) while a batch ran"
    );
}
