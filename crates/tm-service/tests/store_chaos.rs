//! Chaos at the `store` fault site: the persistent store is
//! best-effort, so an injected store fault (`TM_FAULT=store:<nth>`)
//! must never abort a query or change a verdict — a crashed save just
//! skips the write-through, a poisoned warm-boot load just skips that
//! artifact, and a poisoned promote falls back to a rebuild.
//!
//! Faults are process-global, so every scenario runs inside one
//! `#[test]` in this dedicated test binary.

use std::path::PathBuf;

use tm_automata::fault::{clear_fault, install_fault, FaultPlan};
use tm_service::{QueryOutcome, QueryResult, QuerySpec, Service, ServiceConfig};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tm-service-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn batch() -> Vec<QuerySpec> {
    ["dstm+aggressive:of:2:1", "dstm+aggressive:lf:2:1", "TL2:ss:2:2"]
        .iter()
        .map(|q| QuerySpec::parse(q).unwrap())
        .collect()
}

fn store_config(dir: &PathBuf) -> ServiceConfig {
    ServiceConfig {
        pool_size: 1,
        store_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    }
}

fn store_fault(nth: u64) -> FaultPlan {
    FaultPlan {
        site: "store".into(),
        nth,
        delay_ms: 0,
        panic: false,
    }
}

fn fingerprint(results: &[QueryResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| {
            let outcome = match &r.outcome {
                QueryOutcome::Verified => "verified".to_owned(),
                QueryOutcome::SafetyViolation { word } => format!("cex {word}"),
                QueryOutcome::LivenessViolation { notation, .. } => format!("lasso {notation}"),
                QueryOutcome::Aborted { reason } => format!("aborted {reason}"),
            };
            format!("{}:{} {} states={} {outcome}", r.spec, r.name, r.holds, r.states)
        })
        .collect()
}

#[test]
fn store_faults_never_abort_queries_or_change_verdicts() {
    clear_fault();
    let queries = batch();
    // Fault-free, storeless ground truth.
    let baseline = fingerprint(
        &Service::new(ServiceConfig {
            pool_size: 1,
            ..ServiceConfig::default()
        })
        .submit(&queries),
    );

    // --- Crashed write-through: the first save faults mid-write; the
    // query still answers, later saves persist the rest.
    let dir = scratch_dir("save");
    {
        let service = Service::try_new(store_config(&dir)).unwrap();
        install_fault(store_fault(1));
        let results = service.submit(&queries);
        clear_fault();
        assert_eq!(fingerprint(&results), baseline, "crashed save");
        let stats = service.stats();
        assert_eq!(stats.aborted_queries, 0, "store faults never abort");
        // 2 artifacts (run graph + spec); the faulted save skipped one.
        assert_eq!(stats.store_saves, 1, "{stats:?}");
        assert_eq!(stats.store_files, 1, "{stats:?}");
    }

    // Re-populate the directory cleanly for the boot scenarios.
    let _ = std::fs::remove_dir_all(&dir);
    {
        let service = Service::try_new(store_config(&dir)).unwrap();
        service.submit(&queries);
        assert_eq!(service.stats().store_files, 2);
    }

    // --- Poisoned warm-boot load: the first load faults; boot skips
    // that artifact and the first query on it *promotes* it instead
    // (the fault is gone by then) — still zero builds.
    install_fault(store_fault(1));
    let service = Service::try_new(store_config(&dir)).unwrap();
    clear_fault();
    let results = service.submit(&queries);
    assert_eq!(fingerprint(&results), baseline, "poisoned boot load");
    let stats = service.stats();
    assert_eq!(stats.aborted_queries, 0);
    assert_eq!(stats.artifact_builds, 0, "{stats:?}");
    assert_eq!(stats.store_promotes, 1, "{stats:?}");

    // --- Poisoned promote: boot skips one artifact (first fault),
    // then a *re-armed* fault poisons the promote attempt itself — the
    // query falls back to an ordinary rebuild.
    install_fault(store_fault(1));
    let service = Service::try_new(store_config(&dir)).unwrap();
    install_fault(store_fault(1));
    let results = service.submit(&queries);
    clear_fault();
    assert_eq!(fingerprint(&results), baseline, "poisoned promote");
    let stats = service.stats();
    assert_eq!(stats.aborted_queries, 0);
    assert_eq!(stats.store_promotes, 0, "{stats:?}");
    assert_eq!(
        stats.artifact_builds, 1,
        "a poisoned promote rebuilds: {stats:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
