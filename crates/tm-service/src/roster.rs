//! The query roster: every TM × contention-manager × property × instance
//! size the service can be asked about, as plain-data [`QuerySpec`]s that
//! parse from (and print to) the wire format's short codes.
//!
//! [`run_query`] is the single bridge from a spec to the session API: it
//! constructs the concrete TM type and dispatches to
//! [`Verifier::check_safety`] / [`Verifier::check_liveness`], so the
//! service layer above never touches concrete TM types.

use std::fmt;
use std::str::FromStr;

use tm_algorithms::{
    AggressiveCm, DstmTm, PoliteCm, SequentialTm, Tl2Tm, TmAlgorithm, TwoPhaseTm,
    ValidationStyle, WithContentionManager,
};
use tm_checker::{Verdict, Verifier};
use tm_lang::{LivenessProperty, SafetyProperty};

/// A TM algorithm of the paper's roster.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TmKind {
    /// The trivial sequential TM.
    Sequential,
    /// Two-phase locking.
    TwoPhase,
    /// DSTM.
    Dstm,
    /// TL2 (published validation order).
    Tl2,
    /// The "modified TL2" with the unsafe validation order
    /// ([`ValidationStyle::RValidateThenChkLock`]) — the paper's
    /// counterexample TM.
    ModifiedTl2,
}

impl TmKind {
    /// The roster, in the paper's Table 2 order.
    pub fn all() -> [TmKind; 5] {
        [
            TmKind::Sequential,
            TmKind::TwoPhase,
            TmKind::Dstm,
            TmKind::Tl2,
            TmKind::ModifiedTl2,
        ]
    }

    /// The wire code — equal to the bare TM's [`TmAlgorithm::name`].
    pub fn code(self) -> &'static str {
        match self {
            TmKind::Sequential => "sequential",
            TmKind::TwoPhase => "2PL",
            TmKind::Dstm => "dstm",
            TmKind::Tl2 => "TL2",
            TmKind::ModifiedTl2 => "modified-TL2",
        }
    }
}

impl fmt::Display for TmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl FromStr for TmKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "sequential" | "seq" => Ok(TmKind::Sequential),
            "2PL" | "2pl" => Ok(TmKind::TwoPhase),
            "dstm" => Ok(TmKind::Dstm),
            "TL2" | "tl2" => Ok(TmKind::Tl2),
            "modified-TL2" | "modified-tl2" => Ok(TmKind::ModifiedTl2),
            other => Err(format!(
                "unknown TM {other:?} (expected sequential, 2PL, dstm, TL2, or modified-TL2)"
            )),
        }
    }
}

/// A contention manager wrapping (or not) the TM.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum CmKind {
    /// No manager: the bare TM.
    #[default]
    None,
    /// The aggressive manager.
    Aggressive,
    /// The polite manager.
    Polite,
}

impl CmKind {
    /// The wire code (`None` has none; it is simply omitted).
    pub fn code(self) -> Option<&'static str> {
        match self {
            CmKind::None => None,
            CmKind::Aggressive => Some("aggressive"),
            CmKind::Polite => Some("polite"),
        }
    }
}

impl FromStr for CmKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "" | "none" => Ok(CmKind::None),
            "aggressive" => Ok(CmKind::Aggressive),
            "polite" => Ok(CmKind::Polite),
            other => Err(format!(
                "unknown contention manager {other:?} (expected aggressive or polite)"
            )),
        }
    }
}

/// A property the service can decide: one of the two safety properties of
/// Table 2 or the three liveness properties of Table 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PropertyKind {
    /// A safety (inclusion) property.
    Safety(SafetyProperty),
    /// A liveness (loop-search) property.
    Liveness(LivenessProperty),
}

impl PropertyKind {
    /// The wire code: `ss`, `op`, `of`, `lf`, or `wf`.
    pub fn code(self) -> &'static str {
        match self {
            PropertyKind::Safety(SafetyProperty::StrictSerializability) => "ss",
            PropertyKind::Safety(SafetyProperty::Opacity) => "op",
            PropertyKind::Liveness(LivenessProperty::ObstructionFreedom) => "of",
            PropertyKind::Liveness(LivenessProperty::LivelockFreedom) => "lf",
            PropertyKind::Liveness(LivenessProperty::WaitFreedom) => "wf",
        }
    }
}

impl fmt::Display for PropertyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl FromStr for PropertyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "ss" => Ok(PropertyKind::Safety(SafetyProperty::StrictSerializability)),
            "op" => Ok(PropertyKind::Safety(SafetyProperty::Opacity)),
            "of" => Ok(PropertyKind::Liveness(LivenessProperty::ObstructionFreedom)),
            "lf" => Ok(PropertyKind::Liveness(LivenessProperty::LivelockFreedom)),
            "wf" => Ok(PropertyKind::Liveness(LivenessProperty::WaitFreedom)),
            other => Err(format!(
                "unknown property {other:?} (expected ss, op, of, lf, or wf)"
            )),
        }
    }
}

/// One verification query: TM × contention manager × property × instance
/// size — a row of the paper's tables as plain data.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct QuerySpec {
    /// The TM algorithm.
    pub tm: TmKind,
    /// Its contention manager (ignored by the safety semantics only in
    /// the sense that Table 2 uses bare TMs; a managed safety query is
    /// perfectly valid).
    pub cm: CmKind,
    /// The property to decide.
    pub property: PropertyKind,
    /// Threads `n` of the instance.
    pub threads: usize,
    /// Variables `k` of the instance.
    pub vars: usize,
}

/// Largest thread count a query may ask for: the TM implementations and
/// the liveness engine's edge masks are built for at most
/// [`tm_automata::MAX_MASK_THREADS`] threads, and they enforce it with
/// asserts — a daemon must reject such queries at the boundary instead
/// of panicking a handler mid-batch.
pub const MAX_QUERY_THREADS: usize = tm_automata::MAX_MASK_THREADS;

/// Largest variable count a query may ask for. State spaces explode well
/// before this; the bound exists so a malformed request is an error, not
/// a runaway exploration cut down by the state-bound assert.
pub const MAX_QUERY_VARS: usize = 8;

impl QuerySpec {
    /// The full TM name ([`TmAlgorithm::name`] of the constructed
    /// algorithm): the bare code, or `"tm+cm"` under a manager. This is
    /// the session's run-graph cache key.
    pub fn tm_name(&self) -> String {
        match self.cm.code() {
            None => self.tm.code().to_owned(),
            Some(cm) => format!("{}+{}", self.tm.code(), cm),
        }
    }

    /// Checks the instance size against the engines' supported range
    /// (`1..=`[`MAX_QUERY_THREADS`] threads, `1..=`[`MAX_QUERY_VARS`]
    /// variables). Both parse boundaries (CLI shorthand and wire
    /// decoding) call this, so an out-of-range query is a client error —
    /// never a panic inside a serving thread.
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=MAX_QUERY_THREADS).contains(&self.threads) {
            return Err(format!(
                "thread count {} out of range 1..={MAX_QUERY_THREADS}",
                self.threads
            ));
        }
        if !(1..=MAX_QUERY_VARS).contains(&self.vars) {
            return Err(format!(
                "variable count {} out of range 1..={MAX_QUERY_VARS}",
                self.vars
            ));
        }
        Ok(())
    }

    /// Parses the CLI shorthand `tm[+cm]:property:n:k` (e.g.
    /// `dstm+aggressive:of:2:1`, `TL2:ss:2:2`), validating the instance
    /// size.
    pub fn parse(s: &str) -> Result<QuerySpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [tm_cm, property, n, k] = parts[..] else {
            return Err(format!("expected tm[+cm]:property:n:k, got {s:?}"));
        };
        let (tm, cm) = match tm_cm.split_once('+') {
            None => (tm_cm.parse()?, CmKind::None),
            Some((tm, cm)) => (tm.parse()?, cm.parse()?),
        };
        let spec = QuerySpec {
            tm,
            cm,
            property: property.parse()?,
            threads: n.parse().map_err(|e| format!("bad thread count {n:?}: {e}"))?,
            vars: k.parse().map_err(|e| format!("bad variable count {k:?}: {e}"))?,
        };
        spec.validate()?;
        Ok(spec)
    }
}

impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}:{}",
            self.tm_name(),
            self.property,
            self.threads,
            self.vars
        )
    }
}

/// Runs one query through a session. The session must be for the spec's
/// instance size (the registry guarantees this; [`Verifier`] asserts it).
pub fn run_query(verifier: &mut Verifier, spec: &QuerySpec) -> Verdict {
    let (n, k) = (spec.threads, spec.vars);
    macro_rules! dispatch {
        ($tm:expr) => {
            match spec.cm {
                CmKind::None => run_on(verifier, spec.property, &$tm),
                CmKind::Aggressive => {
                    run_on(verifier, spec.property, &WithContentionManager::new($tm, AggressiveCm))
                }
                CmKind::Polite => {
                    run_on(verifier, spec.property, &WithContentionManager::new($tm, PoliteCm))
                }
            }
        };
    }
    match spec.tm {
        TmKind::Sequential => dispatch!(SequentialTm::new(n, k)),
        TmKind::TwoPhase => dispatch!(TwoPhaseTm::new(n, k)),
        TmKind::Dstm => dispatch!(DstmTm::new(n, k)),
        TmKind::Tl2 => dispatch!(Tl2Tm::new(n, k)),
        TmKind::ModifiedTl2 => {
            dispatch!(Tl2Tm::with_validation(n, k, ValidationStyle::RValidateThenChkLock))
        }
    }
}

fn run_on<A>(verifier: &mut Verifier, property: PropertyKind, tm: &A) -> Verdict
where
    A: TmAlgorithm + Sync,
    A::State: Send + Sync,
{
    match property {
        PropertyKind::Safety(p) => verifier.check_safety(tm, p),
        PropertyKind::Liveness(p) => verifier.check_liveness(tm, p),
    }
}

/// The paper's Table 2 as a batch: the five roster TMs × both safety
/// properties at (2, 2).
pub fn table2_batch() -> Vec<QuerySpec> {
    let rows = [
        (TmKind::Sequential, CmKind::None),
        (TmKind::TwoPhase, CmKind::None),
        (TmKind::Dstm, CmKind::None),
        (TmKind::Tl2, CmKind::None),
        (TmKind::ModifiedTl2, CmKind::Polite),
    ];
    SafetyProperty::all()
        .into_iter()
        .flat_map(|property| {
            rows.into_iter().map(move |(tm, cm)| QuerySpec {
                tm,
                cm,
                property: PropertyKind::Safety(property),
                threads: 2,
                vars: 2,
            })
        })
        .collect()
}

/// The paper's Table 3 as a batch: its four TM × manager rows × all
/// three liveness properties at (2, 1).
pub fn table3_batch() -> Vec<QuerySpec> {
    let rows = [
        (TmKind::Sequential, CmKind::None),
        (TmKind::TwoPhase, CmKind::None),
        (TmKind::Dstm, CmKind::Aggressive),
        (TmKind::Tl2, CmKind::Polite),
    ];
    rows.into_iter()
        .flat_map(|(tm, cm)| {
            LivenessProperty::all().into_iter().map(move |property| QuerySpec {
                tm,
                cm,
                property: PropertyKind::Liveness(property),
                threads: 2,
                vars: 1,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_round_trip() {
        let spec = QuerySpec::parse("dstm+aggressive:of:2:1").unwrap();
        assert_eq!(spec.tm, TmKind::Dstm);
        assert_eq!(spec.cm, CmKind::Aggressive);
        assert_eq!(spec.tm_name(), "dstm+aggressive");
        assert_eq!(spec.to_string(), "dstm+aggressive:of:2:1");
        let bare = QuerySpec::parse("TL2:ss:2:2").unwrap();
        assert_eq!(bare.cm, CmKind::None);
        assert_eq!(bare.tm_name(), "TL2");
        assert!(QuerySpec::parse("TL2:xx:2:2").is_err());
        assert!(QuerySpec::parse("nope:ss:2:2").is_err());
        assert!(QuerySpec::parse("TL2:ss:2").is_err());
        // Instance sizes beyond the engines' supported range are parse
        // errors, not downstream panics.
        assert!(QuerySpec::parse("2PL:of:9:1").is_err());
        assert!(QuerySpec::parse("2PL:of:0:1").is_err());
        assert!(QuerySpec::parse("2PL:of:2:0").is_err());
    }

    #[test]
    fn tm_names_match_the_algorithms() {
        let spec = QuerySpec::parse("modified-TL2+polite:op:2:2").unwrap();
        let tm = WithContentionManager::new(
            Tl2Tm::with_validation(2, 2, ValidationStyle::RValidateThenChkLock),
            PoliteCm,
        );
        assert_eq!(spec.tm_name(), tm.name());
        for kind in TmKind::all() {
            assert_eq!(kind.code().parse::<TmKind>().unwrap(), kind);
        }
    }

    #[test]
    fn paper_batches_have_the_roster_shape() {
        assert_eq!(table2_batch().len(), 10);
        assert_eq!(table3_batch().len(), 12);
        assert!(table2_batch()
            .iter()
            .all(|q| matches!(q.property, PropertyKind::Safety(_)) && q.threads == 2 && q.vars == 2));
        assert!(table3_batch()
            .iter()
            .all(|q| matches!(q.property, PropertyKind::Liveness(_)) && q.vars == 1));
    }

    #[test]
    fn run_query_answers_a_paper_cell() {
        let mut verifier = Verifier::new(2, 1);
        let spec = QuerySpec::parse("dstm+aggressive:of:2:1").unwrap();
        assert!(run_query(&mut verifier, &spec).holds());
        let spec = QuerySpec::parse("dstm+aggressive:lf:2:1").unwrap();
        let verdict = run_query(&mut verifier, &spec);
        assert!(!verdict.holds());
        // Second property answered from the cached run graph.
        assert!(verdict.stats.artifact_cached);
    }
}
