//! The wire format: a minimal, dependency-free JSON value
//! ([`Json`] — parser and writer over `std` only, in the spirit of the
//! workspace's offline shims) plus the encode/decode functions for the
//! service's request and response bodies.
//!
//! ## Batch request (`POST /v1/batch`)
//!
//! ```json
//! {"queries": [
//!   {"tm": "dstm", "cm": "aggressive", "property": "of", "threads": 2, "vars": 1},
//!   {"tm": "TL2", "property": "ss", "threads": 2, "vars": 2}
//! ]}
//! ```
//!
//! `cm` is omitted (or `null`) for a bare TM. Properties use the short
//! codes `ss`, `op`, `of`, `lf`, `wf`.
//!
//! ## Batch response
//!
//! ```json
//! {"results": [
//!   {"tm": "dstm", "cm": "aggressive", "property": "of", "threads": 2, "vars": 1,
//!    "name": "dstm+aggressive", "holds": true, "states": 1977,
//!    "cached": false, "rebuilt": false},
//!   {"tm": "TL2", "property": "ss", "threads": 2, "vars": 2,
//!    "name": "TL2", "holds": true, "states": 20430,
//!    "cached": false, "rebuilt": false}
//! ],
//!  "stats": {"queries": 2, "cache_hits": 0, "...": "..."}}
//! ```
//!
//! A safety violation adds `"counterexample": "<word>"`; a liveness
//! violation adds `"lasso": {"prefix": [...], "cycle": [...],
//! "notation": "..."}` — all strings in the canonical `Display` forms,
//! so wire answers compare bit-identically against in-process ones. A
//! query that hit a resource limit instead carries
//! `"aborted": "<code>"` (an [`EngineError`] code such as `deadline` or
//! `state-limit:100000`) with `holds: false`.
//!
//! Requests may carry an optional `"deadline_ms"` member next to
//! `"queries"` — a whole-batch wall-clock budget that overrides the
//! server's configured default — and an optional `"trace": true`, which
//! asks the server to attach a per-query `"trace"` member to every
//! result: `{"phases": {"<phase>": <ns>, ...}, "events": [{"phase":
//! ..., "start_ns": ..., "dur_ns": ..., "value": ...}, ...],
//! "dropped_events": N}` (phase names are the
//! [`tm_obs::Phase::name`] vocabulary; servers running `TM_OBS=off`
//! omit the member).

use std::fmt;

use tm_automata::EngineError;
use tm_obs::{JournalRead, Phase, TraceEvent, TraceRecord};
use tm_store::StoreEntry;

use crate::roster::{CmKind, PropertyKind, QuerySpec, TmKind};
use crate::service::{LatencyQuantiles, QueryOutcome, QueryResult, ServiceStats, SessionInfo};

/// Nesting-depth cap for parsed documents: arrays/objects deeper than
/// this are rejected with a [`JsonError`] instead of recursing toward a
/// stack overflow. The service's own bodies nest 4 levels deep.
pub const MAX_JSON_DEPTH: usize = 64;

/// A JSON value. Numbers are `f64` (every counter the service ships is
/// far below 2^53, where `f64` is exact).
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered; keys are not deduplicated).
    Obj(Vec<(String, Json)>),
}

/// A parse error with its byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters"));
        }
        Ok(value)
    }

    /// Member lookup on an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (`None` for
    /// negative, fractional, or unsafely large values).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0).then_some(n as usize)
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        match text.parse::<f64>() {
            // Overflowing literals like 1e999 parse to infinity; reject
            // them so every in-tree number stays arithmetic-safe.
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.error(format!("bad number {text:?}"))),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired (the writer never
                            // emits them); map to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.error(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar as raw bytes.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = text.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_JSON_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_JSON_DEPTH}")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// A malformed request/response body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for WireError {}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        WireError(e.to_string())
    }
}

fn num(n: usize) -> Json {
    Json::Num(n as f64)
}

fn spec_members(spec: &QuerySpec) -> Vec<(String, Json)> {
    let mut members = vec![("tm".to_owned(), Json::Str(spec.tm.code().to_owned()))];
    if let Some(cm) = spec.cm.code() {
        members.push(("cm".to_owned(), Json::Str(cm.to_owned())));
    }
    members.push(("property".to_owned(), Json::Str(spec.property.code().to_owned())));
    members.push(("threads".to_owned(), num(spec.threads)));
    members.push(("vars".to_owned(), num(spec.vars)));
    members
}

/// Encodes a batch request body.
pub fn encode_batch(batch: &[QuerySpec]) -> String {
    Json::Obj(vec![(
        "queries".to_owned(),
        Json::Arr(batch.iter().map(|q| Json::Obj(spec_members(q))).collect()),
    )])
    .to_string()
}

fn decode_spec(value: &Json) -> Result<QuerySpec, WireError> {
    let field = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| WireError(format!("query is missing {key:?}")))
    };
    let str_field = |key: &str| {
        field(key)?
            .as_str()
            .ok_or_else(|| WireError(format!("query field {key:?} must be a string")))
    };
    let usize_field = |key: &str| {
        field(key)?
            .as_usize()
            .ok_or_else(|| WireError(format!("query field {key:?} must be a non-negative integer")))
    };
    let tm: TmKind = str_field("tm")?.parse().map_err(WireError)?;
    let cm: CmKind = match value.get("cm") {
        None | Some(Json::Null) => CmKind::None,
        Some(v) => v
            .as_str()
            .ok_or_else(|| WireError("query field \"cm\" must be a string".to_owned()))?
            .parse()
            .map_err(WireError)?,
    };
    let property: PropertyKind = str_field("property")?.parse().map_err(WireError)?;
    let spec = QuerySpec {
        tm,
        cm,
        property,
        threads: usize_field("threads")?,
        vars: usize_field("vars")?,
    };
    // Out-of-range instance sizes are a client error (HTTP 400), never a
    // panic inside a serving thread.
    spec.validate().map_err(WireError)?;
    Ok(spec)
}

/// Encodes a batch request body with an optional whole-batch deadline
/// in milliseconds.
pub fn encode_batch_request(batch: &[QuerySpec], deadline_ms: Option<u64>) -> String {
    encode_batch_request_traced(batch, deadline_ms, false)
}

/// [`encode_batch_request`] with the optional `"trace": true` member
/// that asks the server for per-query phase traces.
pub fn encode_batch_request_traced(
    batch: &[QuerySpec],
    deadline_ms: Option<u64>,
    trace: bool,
) -> String {
    let mut members = vec![(
        "queries".to_owned(),
        Json::Arr(batch.iter().map(|q| Json::Obj(spec_members(q))).collect()),
    )];
    if let Some(ms) = deadline_ms {
        members.push(("deadline_ms".to_owned(), num(ms as usize)));
    }
    if trace {
        members.push(("trace".to_owned(), Json::Bool(true)));
    }
    Json::Obj(members).to_string()
}

/// Decodes a batch request body.
pub fn decode_batch(body: &str) -> Result<Vec<QuerySpec>, WireError> {
    decode_batch_request(body).map(|(queries, _)| queries)
}

/// Decodes a batch request body together with its optional
/// `"deadline_ms"` member.
pub fn decode_batch_request(body: &str) -> Result<(Vec<QuerySpec>, Option<u64>), WireError> {
    decode_batch_request_traced(body).map(|(queries, deadline_ms, _)| (queries, deadline_ms))
}

/// Decodes a batch request body together with its optional
/// `"deadline_ms"` and `"trace"` members.
pub fn decode_batch_request_traced(
    body: &str,
) -> Result<(Vec<QuerySpec>, Option<u64>, bool), WireError> {
    let json = Json::parse(body)?;
    let queries = json
        .get("queries")
        .and_then(Json::as_arr)
        .ok_or_else(|| WireError("request must carry a \"queries\" array".to_owned()))?
        .iter()
        .map(decode_spec)
        .collect::<Result<Vec<_>, _>>()?;
    let deadline_ms = match json.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_usize().ok_or_else(|| {
            WireError("request field \"deadline_ms\" must be a non-negative integer".to_owned())
        })? as u64),
    };
    let trace = match json.get("trace") {
        None | Some(Json::Null) => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| WireError("request field \"trace\" must be a boolean".to_owned()))?,
    };
    Ok((queries, deadline_ms, trace))
}

fn result_to_json(result: &QueryResult) -> Json {
    let mut members = spec_members(&result.spec);
    members.push(("name".to_owned(), Json::Str(result.name.clone())));
    members.push(("holds".to_owned(), Json::Bool(result.holds)));
    members.push(("states".to_owned(), num(result.states)));
    members.push(("cached".to_owned(), Json::Bool(result.cached)));
    members.push(("rebuilt".to_owned(), Json::Bool(result.rebuilt)));
    match &result.outcome {
        QueryOutcome::Verified => {}
        QueryOutcome::SafetyViolation { word } => {
            members.push(("counterexample".to_owned(), Json::Str(word.clone())));
        }
        QueryOutcome::LivenessViolation {
            prefix,
            cycle,
            notation,
        } => {
            let strings = |labels: &[String]| {
                Json::Arr(labels.iter().map(|l| Json::Str(l.clone())).collect())
            };
            members.push((
                "lasso".to_owned(),
                Json::Obj(vec![
                    ("prefix".to_owned(), strings(prefix)),
                    ("cycle".to_owned(), strings(cycle)),
                    ("notation".to_owned(), Json::Str(notation.clone())),
                ]),
            ));
        }
        QueryOutcome::Aborted { reason } => {
            members.push(("aborted".to_owned(), Json::Str(reason.to_string())));
        }
    }
    if let Some(trace) = &result.trace {
        members.push(("trace".to_owned(), trace_to_json(trace)));
    }
    Json::Obj(members)
}

fn trace_to_json(trace: &TraceRecord) -> Json {
    // Phase totals as a name → nanoseconds map; all-zero phases are
    // omitted to keep traced responses compact.
    let phases = Phase::ALL
        .into_iter()
        .filter(|&p| trace.phase_ns[p as usize] > 0)
        .map(|p| (p.name().to_owned(), num(trace.phase_ns[p as usize] as usize)))
        .collect();
    let events = trace
        .events
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("phase".to_owned(), Json::Str(e.phase.name().to_owned())),
                ("start_ns".to_owned(), num(e.start_ns as usize)),
                ("dur_ns".to_owned(), num(e.dur_ns as usize)),
                ("value".to_owned(), num(e.value as usize)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("phases".to_owned(), Json::Obj(phases)),
        ("events".to_owned(), Json::Arr(events)),
        ("dropped_events".to_owned(), num(trace.dropped_events as usize)),
    ])
}

fn decode_trace(value: &Json) -> Result<TraceRecord, WireError> {
    let mut record = TraceRecord::default();
    if let Some(Json::Obj(members)) = value.get("phases") {
        for (name, ns) in members {
            let phase = Phase::from_name(name)
                .ok_or_else(|| WireError(format!("unknown trace phase {name:?}")))?;
            record.phase_ns[phase as usize] = ns
                .as_usize()
                .ok_or_else(|| WireError(format!("trace phase {name:?} must be an integer")))?
                as u64;
        }
    }
    if let Some(events) = value.get("events").and_then(Json::as_arr) {
        let field = |event: &Json, key: &str| {
            event
                .get(key)
                .and_then(Json::as_usize)
                .map(|v| v as u64)
                .ok_or_else(|| WireError(format!("trace event is missing integer {key:?}")))
        };
        for event in events {
            let name = event
                .get("phase")
                .and_then(Json::as_str)
                .ok_or_else(|| WireError("trace event is missing \"phase\"".to_owned()))?;
            record.events.push(TraceEvent {
                phase: Phase::from_name(name)
                    .ok_or_else(|| WireError(format!("unknown trace phase {name:?}")))?,
                start_ns: field(event, "start_ns")?,
                dur_ns: field(event, "dur_ns")?,
                value: field(event, "value")?,
            });
        }
    }
    record.dropped_events = value
        .get("dropped_events")
        .and_then(Json::as_usize)
        .unwrap_or(0) as u64;
    Ok(record)
}

/// Encodes a batch response body (results in request order plus the
/// service counters).
pub fn encode_results(results: &[QueryResult], stats: &ServiceStats) -> String {
    Json::Obj(vec![
        (
            "results".to_owned(),
            Json::Arr(results.iter().map(result_to_json).collect()),
        ),
        ("stats".to_owned(), stats_to_json(stats)),
    ])
    .to_string()
}

fn stats_to_json(stats: &ServiceStats) -> Json {
    Json::Obj(vec![
        ("queries".to_owned(), num(stats.queries as usize)),
        ("cache_hits".to_owned(), num(stats.cache_hits as usize)),
        ("artifact_builds".to_owned(), num(stats.artifact_builds as usize)),
        (
            "artifact_rebuilds".to_owned(),
            num(stats.artifact_rebuilds as usize),
        ),
        (
            "aborted_queries".to_owned(),
            num(stats.aborted_queries as usize),
        ),
        ("evictions".to_owned(), num(stats.evictions as usize)),
        ("tracked_bytes".to_owned(), num(stats.tracked_bytes)),
        (
            "peak_tracked_bytes".to_owned(),
            num(stats.peak_tracked_bytes),
        ),
        (
            "mem_budget".to_owned(),
            stats.mem_budget.map_or(Json::Null, num),
        ),
        ("sessions".to_owned(), num(stats.sessions)),
        ("pool_size".to_owned(), num(stats.pool_size)),
        ("batch_ns".to_owned(), num(stats.batch_ns as usize)),
        ("busy_wall_ns".to_owned(), num(stats.busy_wall_ns as usize)),
        ("uptime_ns".to_owned(), num(stats.uptime_ns as usize)),
        ("store_hits".to_owned(), num(stats.store_hits as usize)),
        ("store_misses".to_owned(), num(stats.store_misses as usize)),
        ("store_promotes".to_owned(), num(stats.store_promotes as usize)),
        ("store_demotes".to_owned(), num(stats.store_demotes as usize)),
        ("store_corrupt".to_owned(), num(stats.store_corrupt as usize)),
        ("store_saves".to_owned(), num(stats.store_saves as usize)),
        ("store_bytes".to_owned(), num(stats.store_bytes as usize)),
        ("store_files".to_owned(), num(stats.store_files as usize)),
    ])
}

/// Encodes the `GET /v1/stats` body.
pub fn encode_stats(stats: &ServiceStats) -> String {
    stats_to_json(stats).to_string()
}

/// [`encode_stats`] plus the `"latency"` quantile summary — the body
/// `GET /v1/stats` actually serves. Decoders that predate the member
/// (`decode_stats`) ignore it.
pub fn encode_stats_full(stats: &ServiceStats, latency: &LatencyQuantiles) -> String {
    let Json::Obj(mut members) = stats_to_json(stats) else {
        unreachable!("stats_to_json returns an object")
    };
    members.push((
        "latency".to_owned(),
        Json::Obj(vec![
            ("count".to_owned(), num(latency.count as usize)),
            ("p50_s".to_owned(), Json::Num(latency.p50_s)),
            ("p95_s".to_owned(), Json::Num(latency.p95_s)),
            ("p99_s".to_owned(), Json::Num(latency.p99_s)),
        ]),
    ));
    Json::Obj(members).to_string()
}

/// Encodes the `GET /v1/sessions` body: one row per `(n, k)` session.
pub fn encode_sessions(sessions: &[SessionInfo]) -> String {
    let rows = sessions
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("threads".to_owned(), num(s.threads)),
                ("vars".to_owned(), num(s.vars)),
                ("resident_artifacts".to_owned(), num(s.resident_artifacts)),
                ("heap_bytes".to_owned(), num(s.heap_bytes)),
                ("builds".to_owned(), num(s.builds as usize)),
                ("rebuilds".to_owned(), num(s.rebuilds as usize)),
                ("store_promotes".to_owned(), num(s.store_promotes as usize)),
                ("lock_waits".to_owned(), num(s.lock_waits as usize)),
                ("lock_wait_ns".to_owned(), num(s.lock_wait_ns as usize)),
            ])
        })
        .collect();
    Json::Obj(vec![("sessions".to_owned(), Json::Arr(rows))]).to_string()
}

/// Encodes the `GET /v1/store` body: the store's `.tmart` files in LRU
/// order (least recently used first), with summed totals.
pub fn encode_store(entries: &[StoreEntry]) -> String {
    let files = entries
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("file".to_owned(), Json::Str(e.file.clone())),
                ("bytes".to_owned(), num(e.bytes as usize)),
                ("age_secs".to_owned(), num(e.age_secs as usize)),
                ("last_used".to_owned(), num(e.last_used as usize)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("count".to_owned(), num(entries.len())),
        (
            "bytes".to_owned(),
            num(entries.iter().map(|e| e.bytes as usize).sum()),
        ),
        ("files".to_owned(), Json::Arr(files)),
    ])
    .to_string()
}

/// Encodes the `GET /v1/events` body: the journal events a cursor read
/// returned, each with its sequence number, plus the cursor to pass to
/// the next read and the count of events the ring overwrote before this
/// reader got to them.
pub fn encode_events(read: &JournalRead) -> String {
    let events = read
        .events
        .iter()
        .map(|(seq, e)| {
            Json::Obj(vec![
                ("seq".to_owned(), num(*seq as usize)),
                ("kind".to_owned(), Json::Str(e.kind.name().to_owned())),
                ("key".to_owned(), Json::Str(e.key.clone())),
                ("request_id".to_owned(), Json::Str(e.request_id.clone())),
                ("bytes".to_owned(), num(e.bytes as usize)),
                ("at_unix_ms".to_owned(), num(e.at_unix_ms as usize)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("next_cursor".to_owned(), num(read.next_cursor as usize)),
        ("dropped".to_owned(), num(read.dropped as usize)),
        ("events".to_owned(), Json::Arr(events)),
    ])
    .to_string()
}

fn decode_result(value: &Json) -> Result<QueryResult, WireError> {
    let spec = decode_spec(value)?;
    let bool_field = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_bool)
            .ok_or_else(|| WireError(format!("result is missing boolean {key:?}")))
    };
    let outcome = if let Some(reason) = value.get("aborted") {
        let code = reason
            .as_str()
            .ok_or_else(|| WireError("aborted must be a string".to_owned()))?;
        QueryOutcome::Aborted {
            reason: EngineError::from_code(code)
                .ok_or_else(|| WireError(format!("unknown abort code {code:?}")))?,
        }
    } else if let Some(word) = value.get("counterexample") {
        QueryOutcome::SafetyViolation {
            word: word
                .as_str()
                .ok_or_else(|| WireError("counterexample must be a string".to_owned()))?
                .to_owned(),
        }
    } else if let Some(lasso) = value.get("lasso") {
        let labels = |key: &str| -> Result<Vec<String>, WireError> {
            lasso
                .get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| WireError(format!("lasso is missing {key:?}")))?
                .iter()
                .map(|l| {
                    l.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| WireError("lasso labels must be strings".to_owned()))
                })
                .collect()
        };
        QueryOutcome::LivenessViolation {
            prefix: labels("prefix")?,
            cycle: labels("cycle")?,
            notation: lasso
                .get("notation")
                .and_then(Json::as_str)
                .ok_or_else(|| WireError("lasso is missing \"notation\"".to_owned()))?
                .to_owned(),
        }
    } else {
        QueryOutcome::Verified
    };
    Ok(QueryResult {
        spec,
        name: value
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError("result is missing \"name\"".to_owned()))?
            .to_owned(),
        holds: bool_field("holds")?,
        states: value
            .get("states")
            .and_then(Json::as_usize)
            .ok_or_else(|| WireError("result is missing \"states\"".to_owned()))?,
        cached: bool_field("cached")?,
        rebuilt: bool_field("rebuilt")?,
        outcome,
        trace: match value.get("trace") {
            None | Some(Json::Null) => None,
            Some(trace) => Some(decode_trace(trace)?),
        },
    })
}

fn decode_stats(value: &Json) -> Result<ServiceStats, WireError> {
    let field = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_usize)
            .ok_or_else(|| WireError(format!("stats are missing {key:?}")))
    };
    Ok(ServiceStats {
        queries: field("queries")? as u64,
        cache_hits: field("cache_hits")? as u64,
        artifact_builds: field("artifact_builds")? as u64,
        artifact_rebuilds: field("artifact_rebuilds")? as u64,
        // Absent in bodies from pre-abort servers: default to zero.
        aborted_queries: value
            .get("aborted_queries")
            .and_then(Json::as_usize)
            .unwrap_or(0) as u64,
        evictions: field("evictions")? as u64,
        tracked_bytes: field("tracked_bytes")?,
        peak_tracked_bytes: field("peak_tracked_bytes")?,
        mem_budget: match value.get("mem_budget") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_usize().ok_or_else(|| {
                WireError("stats field \"mem_budget\" must be an integer or null".to_owned())
            })?),
        },
        sessions: field("sessions")?,
        pool_size: field("pool_size")?,
        // `busy_ns` was renamed `batch_ns` when the overlap-summing bug
        // was documented away; accept bodies from servers of either
        // vintage.
        batch_ns: value
            .get("batch_ns")
            .or_else(|| value.get("busy_ns"))
            .and_then(Json::as_usize)
            .unwrap_or(0) as u64,
        busy_wall_ns: value.get("busy_wall_ns").and_then(Json::as_usize).unwrap_or(0) as u64,
        uptime_ns: value.get("uptime_ns").and_then(Json::as_usize).unwrap_or(0) as u64,
        // Absent in bodies from pre-store servers: default to zero.
        store_hits: optional_u64(value, "store_hits"),
        store_misses: optional_u64(value, "store_misses"),
        store_promotes: optional_u64(value, "store_promotes"),
        store_demotes: optional_u64(value, "store_demotes"),
        store_corrupt: optional_u64(value, "store_corrupt"),
        store_saves: optional_u64(value, "store_saves"),
        store_bytes: optional_u64(value, "store_bytes"),
        store_files: optional_u64(value, "store_files"),
    })
}

/// A stats counter that may be absent in bodies from older servers.
fn optional_u64(value: &Json, key: &str) -> u64 {
    value.get(key).and_then(Json::as_usize).unwrap_or(0) as u64
}

/// Decodes a batch response body back into results and stats — what the
/// `tm-query` client and the over-the-wire conformance tests consume.
pub fn decode_results(body: &str) -> Result<(Vec<QueryResult>, ServiceStats), WireError> {
    let json = Json::parse(body)?;
    let results = json
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| WireError("response must carry a \"results\" array".to_owned()))?
        .iter()
        .map(decode_result)
        .collect::<Result<Vec<_>, _>>()?;
    let stats = decode_stats(
        json.get("stats")
            .ok_or_else(|| WireError("response must carry \"stats\"".to_owned()))?,
    )?;
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parses_and_prints() {
        let text = r#"{"a": [1, -2.5, true, null], "s": "x\"\\\nA"}"#;
        let json = Json::parse(text).unwrap();
        assert_eq!(json.get("s").unwrap().as_str(), Some("x\"\\\nA"));
        assert_eq!(json.get("a").unwrap().as_arr().unwrap().len(), 4);
        let round = Json::parse(&json.to_string()).unwrap();
        assert_eq!(round, json);
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] x").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn batch_round_trips() {
        let batch = vec![
            QuerySpec::parse("dstm+aggressive:of:2:1").unwrap(),
            QuerySpec::parse("modified-TL2+polite:op:2:2").unwrap(),
            QuerySpec::parse("sequential:ss:3:1").unwrap(),
        ];
        let decoded = decode_batch(&encode_batch(&batch)).unwrap();
        assert_eq!(decoded, batch);
        assert!(decode_batch("{}").is_err());
        assert!(decode_batch(r#"{"queries": [{"tm": "dstm"}]}"#).is_err());
    }

    #[test]
    fn results_round_trip_with_every_outcome() {
        let results = vec![
            QueryResult {
                spec: QuerySpec::parse("dstm:op:2:2").unwrap(),
                name: "dstm".to_owned(),
                holds: true,
                states: 2083,
                cached: false,
                rebuilt: false,
                outcome: QueryOutcome::Verified,
                trace: Some(TraceRecord {
                    phase_ns: {
                        let mut ns = [0u64; Phase::COUNT];
                        ns[Phase::BfsLevel as usize] = 120_000;
                        ns[Phase::SessionLockWait as usize] = 450;
                        ns
                    },
                    events: vec![TraceEvent {
                        phase: Phase::BfsLevel,
                        start_ns: 500,
                        dur_ns: 120_000,
                        value: 37,
                    }],
                    dropped_events: 2,
                }),
            },
            QueryResult {
                spec: QuerySpec::parse("modified-TL2+polite:ss:2:2").unwrap(),
                name: "modified-TL2+polite".to_owned(),
                holds: false,
                states: 913,
                cached: true,
                rebuilt: true,
                outcome: QueryOutcome::SafetyViolation {
                    word: "(w,1)1 c1 (r,1)2 (w,1)2 c2".to_owned(),
                },
                trace: None,
            },
            QueryResult {
                spec: QuerySpec::parse("2PL:of:2:1").unwrap(),
                name: "2PL".to_owned(),
                holds: false,
                states: 77,
                cached: false,
                rebuilt: false,
                outcome: QueryOutcome::LivenessViolation {
                    prefix: vec!["(o,1)2".to_owned()],
                    cycle: vec!["a1".to_owned(), "(o,1)1".to_owned()],
                    notation: "a1, (o,1)1".to_owned(),
                },
                trace: None,
            },
        ];
        let stats = ServiceStats {
            queries: 3,
            cache_hits: 1,
            aborted_queries: 1,
            artifact_builds: 2,
            artifact_rebuilds: 1,
            evictions: 4,
            tracked_bytes: 12345,
            peak_tracked_bytes: 23456,
            mem_budget: Some(1 << 20),
            sessions: 2,
            pool_size: 4,
            batch_ns: 987654321,
            busy_wall_ns: 123456789,
            uptime_ns: 222333444,
            store_hits: 5,
            store_misses: 2,
            store_promotes: 3,
            store_demotes: 4,
            store_corrupt: 1,
            store_saves: 6,
            store_bytes: 7777,
            store_files: 3,
        };
        let body = encode_results(&results, &stats);
        let (decoded, decoded_stats) = decode_results(&body).unwrap();
        assert_eq!(decoded, results);
        assert_eq!(decoded_stats, stats);
        // Unbounded budget encodes as null and survives.
        let unbounded = ServiceStats {
            mem_budget: None,
            ..stats
        };
        let (_, decoded_stats) = decode_results(&encode_results(&[], &unbounded)).unwrap();
        assert_eq!(decoded_stats.mem_budget, None);
    }

    #[test]
    fn trace_flag_round_trips_and_defaults_off() {
        let batch = vec![QuerySpec::parse("TL2:ss:2:2").unwrap()];
        let traced = encode_batch_request_traced(&batch, Some(500), true);
        let (queries, deadline_ms, trace) = decode_batch_request_traced(&traced).unwrap();
        assert_eq!(queries, batch);
        assert_eq!(deadline_ms, Some(500));
        assert!(trace);
        // Plain requests (and the untraced encoder) read as trace=false.
        let plain = encode_batch_request(&batch, None);
        let (_, _, trace) = decode_batch_request_traced(&plain).unwrap();
        assert!(!trace);
        assert!(decode_batch_request_traced(r#"{"queries": [], "trace": 1}"#).is_err());
    }

    #[test]
    fn stats_with_latency_carry_quantiles_and_stay_decodable() {
        let stats = ServiceStats {
            queries: 4,
            ..ServiceStats::default()
        };
        let latency = LatencyQuantiles {
            count: 4,
            p50_s: 0.125,
            p95_s: 0.5,
            p99_s: 2.0,
        };
        let body = encode_stats_full(&stats, &latency);
        let json = Json::parse(&body).unwrap();
        let member = json.get("latency").expect("latency member");
        assert_eq!(member.get("count").unwrap().as_usize(), Some(4));
        assert_eq!(member.get("p50_s").unwrap().as_f64(), Some(0.125));
        assert_eq!(member.get("p95_s").unwrap().as_f64(), Some(0.5));
        assert_eq!(member.get("p99_s").unwrap().as_f64(), Some(2.0));
        // Pre-quantile decoders ignore the member.
        let decoded = decode_stats(&json).unwrap();
        assert_eq!(decoded.queries, 4);
    }

    #[test]
    fn sessions_store_and_events_bodies_encode() {
        let sessions = vec![SessionInfo {
            threads: 3,
            vars: 2,
            resident_artifacts: 5,
            heap_bytes: 4096,
            builds: 7,
            rebuilds: 1,
            store_promotes: 2,
            lock_waits: 9,
            lock_wait_ns: 1234,
        }];
        let json = Json::parse(&encode_sessions(&sessions)).unwrap();
        let row = &json.get("sessions").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("threads").unwrap().as_usize(), Some(3));
        assert_eq!(row.get("lock_wait_ns").unwrap().as_usize(), Some(1234));

        let entries = vec![StoreEntry {
            file: "ab12.tmart".to_owned(),
            bytes: 100,
            age_secs: 60,
            last_used: 17,
        }];
        let json = Json::parse(&encode_store(&entries)).unwrap();
        assert_eq!(json.get("count").unwrap().as_usize(), Some(1));
        assert_eq!(json.get("bytes").unwrap().as_usize(), Some(100));
        let file = &json.get("files").unwrap().as_arr().unwrap()[0];
        assert_eq!(file.get("file").unwrap().as_str(), Some("ab12.tmart"));

        let read = tm_obs::JournalRead {
            next_cursor: 12,
            dropped: 2,
            events: vec![(
                11,
                tm_obs::JournalEvent {
                    kind: tm_obs::EventKind::Build,
                    key: "(2,1)/run-graph/dstm".to_owned(),
                    request_id: "req-9".to_owned(),
                    bytes: 512,
                    at_unix_ms: 1_000,
                },
            )],
        };
        let json = Json::parse(&encode_events(&read)).unwrap();
        assert_eq!(json.get("next_cursor").unwrap().as_usize(), Some(12));
        assert_eq!(json.get("dropped").unwrap().as_usize(), Some(2));
        let event = &json.get("events").unwrap().as_arr().unwrap()[0];
        assert_eq!(event.get("seq").unwrap().as_usize(), Some(11));
        assert_eq!(event.get("kind").unwrap().as_str(), Some("build"));
        assert_eq!(event.get("request_id").unwrap().as_str(), Some("req-9"));
    }

    #[test]
    fn legacy_busy_ns_bodies_still_decode() {
        // A stats body from a server predating the batch_ns rename.
        let body = r#"{"queries": 1, "cache_hits": 0, "artifact_builds": 1,
            "artifact_rebuilds": 0, "evictions": 0, "tracked_bytes": 10,
            "peak_tracked_bytes": 10, "mem_budget": null, "sessions": 1,
            "pool_size": 1, "busy_ns": 42}"#;
        let stats = decode_stats(&Json::parse(body).unwrap()).unwrap();
        assert_eq!(stats.batch_ns, 42, "busy_ns reads as batch_ns");
        assert_eq!(stats.busy_wall_ns, 0);
        assert_eq!(stats.uptime_ns, 0);
    }
}
