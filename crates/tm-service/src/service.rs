//! The in-process [`Service`]: registry + budget + scheduler behind one
//! `submit(batch)` call. The HTTP endpoint (`http.rs`, the `tm-serve`
//! bin) is a thin wire adapter over this type; everything observable —
//! verdicts, scheduling, eviction, statistics — lives here and is
//! testable without a socket.
//!
//! The whole API is `&self`: a `Service` is shared across connection
//! threads as a plain `Arc`, and concurrent `submit` calls overlap.
//! Internally the lock hierarchy is **registry → session → budget
//! ledger** (see `registry.rs` and `budget.rs`): the registry lock only
//! resolves sessions, each `(n, k)` session has its own mutex (so
//! batches on different instance sizes run concurrently while queries
//! on one session serialize — which also makes artifact builds
//! single-flight per key), and the budget ledger pins in-flight
//! artifacts so a concurrent batch can never evict an artifact
//! mid-query. The statistics counters are atomics, so [`Service::stats`]
//! never waits on a running query.

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tm_automata::{fault, EngineError};
use tm_checker::{Verdict, VerdictOutcome, Verifier};
use tm_obs::{
    Counter, EventKind, Gauge, GaugeF, Histogram, JournalEvent, LogValue, Phase, PhaseTimer,
    TraceRecord, Unit,
};
use tm_store::{
    Artifact, ArtifactStore, LazySpecArtifact, RunGraphArtifact, StoreConfig, StoreEntry,
    StoreKey, StoreKind,
};

use crate::budget::{ArtifactKey, ArtifactKind, SharedBudget};
use crate::registry::{lock_session, SessionRegistry};
use crate::roster::{
    run_query, PropertyKind, QuerySpec, MAX_QUERY_THREADS, MAX_QUERY_VARS,
};
use crate::scheduler::execution_order;

/// Default bound on reachable state spaces (the experiment suite's).
pub const DEFAULT_SERVICE_MAX_STATES: usize = 20_000_000;

/// Default bound on concurrently admitted `/v1/batch` requests.
pub const DEFAULT_MAX_INFLIGHT: usize = 4;

/// Environment variable holding the artifact memory budget for
/// [`ServiceConfig::from_env`]: plain bytes with an optional `k`/`m`/`g`
/// suffix (powers of 1024); `0` or `unbounded` disables the budget.
pub const MEM_BUDGET_ENV: &str = "TM_SERVICE_MEM_BUDGET";

/// Environment variable holding the per-query deadline in milliseconds
/// (`0` or unset = none).
pub const QUERY_DEADLINE_ENV: &str = "TM_SERVICE_QUERY_DEADLINE_MS";

/// Environment variable holding the per-batch deadline in milliseconds
/// (`0` or unset = none). A request-supplied `deadline_ms` overrides it.
pub const BATCH_DEADLINE_ENV: &str = "TM_SERVICE_BATCH_DEADLINE_MS";

/// Environment variable bounding concurrently admitted batch requests
/// (unset = [`DEFAULT_MAX_INFLIGHT`]; `0` = unbounded).
pub const MAX_INFLIGHT_ENV: &str = "TM_SERVICE_MAX_INFLIGHT";

/// Environment variable holding the persistent artifact store directory
/// (unset or empty = no store). With a store, budget evictions *demote*
/// artifacts to disk instead of discarding them, rebuilt artifacts are
/// written through, and a new service warm-starts its sessions from the
/// directory — a restarted daemon answers its old roster with zero
/// rebuilds.
pub const STORE_DIR_ENV: &str = "TM_STORE_DIR";

/// Environment variable holding the on-disk byte cap for the store's own
/// LRU, in [`MEM_BUDGET_ENV`] syntax (`0`/`unbounded`/unset = no cap).
pub const STORE_CAP_ENV: &str = "TM_STORE_CAP";

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Artifact byte budget (`None` = unbounded).
    pub mem_budget: Option<usize>,
    /// Shared worker-pool size (1 = sequential engines).
    pub pool_size: usize,
    /// Bound on reachable state spaces.
    pub max_states: usize,
    /// Per-query wall-clock deadline (`None` = none). A query that runs
    /// longer aborts with [`EngineError::Deadline`].
    pub query_deadline: Option<Duration>,
    /// Per-batch wall-clock deadline (`None` = none). Queries still
    /// unanswered when it expires are shed as aborted results without
    /// running; a request-supplied `deadline_ms` overrides this default.
    pub batch_deadline: Option<Duration>,
    /// Bound on concurrently admitted `/v1/batch` requests; requests
    /// beyond it are shed with HTTP 429 (`0` = unbounded).
    pub max_inflight: usize,
    /// Directory of the persistent artifact store (`None` = none). See
    /// [`STORE_DIR_ENV`] for the semantics it enables.
    pub store_dir: Option<PathBuf>,
    /// On-disk byte cap for the store's own LRU (`None` = unbounded).
    pub store_cap: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            mem_budget: None,
            pool_size: tm_automata::modelcheck_threads(),
            max_states: DEFAULT_SERVICE_MAX_STATES,
            query_deadline: None,
            batch_deadline: None,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            store_dir: None,
            store_cap: None,
        }
    }
}

impl ServiceConfig {
    /// The default configuration with the memory budget read from
    /// [`MEM_BUDGET_ENV`] (unset, empty, `0`, or `unbounded` mean no
    /// budget; a malformed value is an error), the deadlines from
    /// [`QUERY_DEADLINE_ENV`] / [`BATCH_DEADLINE_ENV`], and the
    /// admission bound from [`MAX_INFLIGHT_ENV`].
    pub fn from_env() -> Result<Self, String> {
        let mem_budget = match std::env::var(MEM_BUDGET_ENV) {
            Err(_) => None,
            Ok(value) => parse_mem_budget(&value)?,
        };
        let millis = |name: &str| -> Result<Option<Duration>, String> {
            match std::env::var(name) {
                Err(_) => Ok(None),
                Ok(value) => {
                    let value = value.trim();
                    if value.is_empty() || value == "0" {
                        return Ok(None);
                    }
                    value
                        .parse::<u64>()
                        .map(|ms| Some(Duration::from_millis(ms)))
                        .map_err(|e| format!("bad {name}={value:?}: {e}"))
                }
            }
        };
        let max_inflight = match std::env::var(MAX_INFLIGHT_ENV) {
            Err(_) => DEFAULT_MAX_INFLIGHT,
            Ok(value) => value
                .trim()
                .parse()
                .map_err(|e| format!("bad {MAX_INFLIGHT_ENV}={value:?}: {e}"))?,
        };
        let store_dir = match std::env::var(STORE_DIR_ENV) {
            Err(_) => None,
            Ok(value) => {
                let value = value.trim();
                (!value.is_empty()).then(|| PathBuf::from(value))
            }
        };
        let store_cap = match std::env::var(STORE_CAP_ENV) {
            Err(_) => None,
            Ok(value) => parse_mem_budget(&value)
                .map_err(|e| format!("bad {STORE_CAP_ENV}: {e}"))?
                .map(|bytes| bytes as u64),
        };
        Ok(ServiceConfig {
            mem_budget,
            query_deadline: millis(QUERY_DEADLINE_ENV)?,
            batch_deadline: millis(BATCH_DEADLINE_ENV)?,
            max_inflight,
            store_dir,
            store_cap,
            ..ServiceConfig::default()
        })
    }
}

/// Parses a [`MEM_BUDGET_ENV`]-style byte budget: decimal bytes with an
/// optional `k`/`m`/`g` suffix; empty, `0`, and `unbounded` mean none.
pub fn parse_mem_budget(value: &str) -> Result<Option<usize>, String> {
    let value = value.trim();
    if value.is_empty() || value == "0" || value.eq_ignore_ascii_case("unbounded") {
        return Ok(None);
    }
    let (digits, shift) = match value.as_bytes().last().map(u8::to_ascii_lowercase) {
        Some(b'k') => (&value[..value.len() - 1], 10),
        Some(b'm') => (&value[..value.len() - 1], 20),
        Some(b'g') => (&value[..value.len() - 1], 30),
        _ => (value, 0),
    };
    let bytes: usize = digits
        .trim()
        .parse()
        .map_err(|e| format!("bad memory budget {value:?}: {e}"))?;
    bytes
        .checked_shl(shift)
        .filter(|&b| b >> shift == bytes)
        .map(Some)
        .ok_or_else(|| format!("memory budget {value:?} overflows"))
}

thread_local! {
    /// The request id of the HTTP request this thread is serving, if
    /// any — queries run on the connection thread that routed them, so
    /// journal events they emit can carry the id without threading it
    /// through every call.
    static REQUEST_ID: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Installs `id` as the calling thread's request id until the guard
/// drops. The HTTP layer wraps each routed request in one; in-process
/// callers (tests, benches) publish events with an empty id.
pub(crate) fn set_request_id(id: &str) -> RequestIdGuard {
    REQUEST_ID.with(|cell| *cell.borrow_mut() = Some(id.to_owned()));
    RequestIdGuard(())
}

/// Clears the thread's request id on drop (panic-safe, like the other
/// RAII guards in this module).
pub(crate) struct RequestIdGuard(());

impl Drop for RequestIdGuard {
    fn drop(&mut self) {
        REQUEST_ID.with(|cell| cell.borrow_mut().take());
    }
}

fn current_request_id() -> String {
    REQUEST_ID.with(|cell| cell.borrow().clone().unwrap_or_default())
}

/// Publishes one lifecycle event into the global journal, stamped with
/// the current thread's request id. A no-op with instrumentation
/// disabled — `TM_OBS=off` servers keep an empty journal.
fn journal(kind: EventKind, key: impl ToString, bytes: u64) {
    if !tm_obs::obs_enabled() {
        return;
    }
    tm_obs::global_journal().publish(JournalEvent::now(
        kind,
        key.to_string(),
        current_request_id(),
        bytes,
    ));
}

/// Budget admissions that waited at least this long are journaled as
/// [`EventKind::AdmissionWait`] — long enough that an uncontended
/// mutex acquisition never qualifies, short enough that a query
/// actually parked on the admission condvar always does.
const ADMISSION_WAIT_JOURNAL_THRESHOLD: Duration = Duration::from_millis(1);

/// The wire-friendly outcome of one query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryOutcome {
    /// The property holds.
    Verified,
    /// A safety violation with its shortest counterexample word (the
    /// word's canonical `Display` form).
    SafetyViolation {
        /// The counterexample word.
        word: String,
    },
    /// A liveness violation with its lasso, as the run labels' canonical
    /// `Display` forms.
    LivenessViolation {
        /// Labels of the run from the initial state to the loop.
        prefix: Vec<String>,
        /// Labels of the repeated loop.
        cycle: Vec<String>,
        /// The loop in the paper's Table 3 notation.
        notation: String,
    },
    /// The query was retired at a resource limit instead of answered
    /// (`holds` is `false`): a state-space blowup, an expired deadline,
    /// a cancellation, a panicked worker, or an injected fault.
    /// [`EngineError::is_retryable`] says whether resubmitting can
    /// succeed.
    Aborted {
        /// Why the query was retired.
        reason: EngineError,
    },
}

/// The service's answer to one [`QuerySpec`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryResult {
    /// The query answered.
    pub spec: QuerySpec,
    /// Full TM name (run-graph cache key, `"tm+cm"` under a manager).
    pub name: String,
    /// Whether the property holds.
    pub holds: bool,
    /// States explored (product states for safety, run-graph states for
    /// liveness).
    pub states: usize,
    /// Whether the artifact was already resident in the session.
    pub cached: bool,
    /// Whether answering required rebuilding an evicted artifact.
    pub rebuilt: bool,
    /// The verdict payload.
    pub outcome: QueryOutcome,
    /// The per-query phase trace, present only when the batch requested
    /// tracing ([`Service::submit_traced`]) and instrumentation is
    /// enabled.
    pub trace: Option<TraceRecord>,
}

impl QueryResult {
    fn from_verdict(spec: QuerySpec, verdict: Verdict) -> Self {
        let stats = verdict.stats;
        let (name, holds, outcome) = match verdict.outcome {
            VerdictOutcome::Safety(v) => {
                let outcome = match v.counterexample() {
                    None => QueryOutcome::Verified,
                    Some(word) => QueryOutcome::SafetyViolation {
                        word: word.to_string(),
                    },
                };
                let holds = v.holds();
                (v.tm_name, holds, outcome)
            }
            VerdictOutcome::Liveness(v) => {
                let outcome = match v.counterexample() {
                    None => QueryOutcome::Verified,
                    Some(lasso) => QueryOutcome::LivenessViolation {
                        prefix: lasso.prefix.iter().map(ToString::to_string).collect(),
                        cycle: lasso.cycle.iter().map(ToString::to_string).collect(),
                        notation: lasso.cycle_notation(),
                    },
                };
                let holds = v.holds();
                (v.tm_name, holds, outcome)
            }
            VerdictOutcome::Aborted(reason) => {
                let name = spec.tm_name();
                (name, false, QueryOutcome::Aborted { reason })
            }
            VerdictOutcome::Reduction(_) => {
                unreachable!("the service only issues safety and liveness queries")
            }
        };
        QueryResult {
            spec,
            name,
            holds,
            states: stats.states_explored,
            cached: stats.artifact_cached,
            rebuilt: stats.rebuilds > 0,
            outcome,
            trace: None,
        }
    }

    /// An aborted result produced by the service layer itself (batch
    /// deadline shedding, an injected build fault) — no engine ran.
    fn aborted(spec: QuerySpec, reason: EngineError) -> Self {
        let name = spec.tm_name();
        QueryResult {
            spec,
            name,
            holds: false,
            states: 0,
            cached: false,
            rebuilt: false,
            outcome: QueryOutcome::Aborted { reason },
            trace: None,
        }
    }

    /// The abort reason, if this query was retired at a resource limit.
    pub fn abort_reason(&self) -> Option<EngineError> {
        match &self.outcome {
            QueryOutcome::Aborted { reason } => Some(*reason),
            _ => None,
        }
    }
}

/// Cumulative service counters (monotonic across batches, except the
/// instantaneous `tracked_bytes`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServiceStats {
    /// Queries answered.
    pub queries: u64,
    /// Queries whose artifact was already resident.
    pub cache_hits: u64,
    /// Artifact builds (first-time and rebuilds).
    pub artifact_builds: u64,
    /// Builds that were rebuilds of an evicted artifact.
    pub artifact_rebuilds: u64,
    /// Queries that aborted (deadline, cancellation, state limit,
    /// injected fault) instead of producing a verdict.
    pub aborted_queries: u64,
    /// Ledger evictions.
    pub evictions: u64,
    /// Currently tracked artifact bytes.
    pub tracked_bytes: usize,
    /// High-water mark of tracked bytes (never exceeds the budget while
    /// every single artifact fits it — the ledger invariant).
    pub peak_tracked_bytes: usize,
    /// The configured budget (`None` = unbounded).
    pub mem_budget: Option<usize>,
    /// Sessions created (distinct instance sizes seen).
    pub sessions: usize,
    /// Shared worker-pool size.
    pub pool_size: usize,
    /// Wall-clock nanoseconds spent inside `submit`, **summed across
    /// batches** — concurrent batches each contribute their full elapsed
    /// time, so on overlapping load this exceeds real wall clock. A
    /// *work* metric (total batch time served), not a utilization
    /// metric; for utilization use [`ServiceStats::busy_wall_ns`] /
    /// [`ServiceStats::uptime_ns`].
    pub batch_ns: u64,
    /// Wall-clock nanoseconds during which **at least one** batch was in
    /// flight — each instant counted once no matter how many batches
    /// overlap, so this is monotonic and never exceeds
    /// [`ServiceStats::uptime_ns`]. `busy_wall_ns / uptime_ns` is the
    /// `tm_serve_busy_ratio` utilization gauge.
    pub busy_wall_ns: u64,
    /// Wall-clock nanoseconds since the service was constructed.
    pub uptime_ns: u64,
    /// Persistent-store loads that returned a verified artifact. Zero
    /// (like every `store_*` counter) when no store is configured.
    pub store_hits: u64,
    /// Persistent-store loads that found no file for the key.
    pub store_misses: u64,
    /// Artifacts promoted from the store into a session instead of
    /// rebuilt (a promote counts as a cache hit, not a build).
    pub store_promotes: u64,
    /// Eviction victims demoted to the store instead of discarded.
    pub store_demotes: u64,
    /// Store files quarantined as corrupt (checksum or content-address
    /// mismatch); each was renamed `*.quarantined` and its key rebuilt.
    pub store_corrupt: u64,
    /// Artifact files written to the store (write-through plus
    /// demotions; content-addressed re-saves are not counted).
    pub store_saves: u64,
    /// Bytes currently addressable in the store directory.
    pub store_bytes: u64,
    /// Files currently addressable in the store directory.
    pub store_files: u64,
}

/// Wall-clock accounting behind [`ServiceStats::busy_wall_ns`]: tracks
/// the number of in-flight `submit` calls and accumulates the union of
/// their busy intervals (an instant with five overlapping batches counts
/// once — the fix for the old `busy_ns` counter, which summed overlaps
/// and read as >100% utilization on one core).
struct BusyClock {
    started: Instant,
    state: Mutex<BusyState>,
}

struct BusyState {
    inflight: usize,
    busy: Duration,
    since: Option<Instant>,
}

impl BusyClock {
    fn new() -> Self {
        BusyClock {
            started: Instant::now(),
            state: Mutex::new(BusyState {
                inflight: 0,
                busy: Duration::ZERO,
                since: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BusyState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Marks one batch in flight; the clock runs while any guard lives.
    fn enter(&self) -> BusyGuard<'_> {
        let mut state = self.lock();
        if state.inflight == 0 {
            state.since = Some(Instant::now());
        }
        state.inflight += 1;
        BusyGuard { clock: self }
    }

    /// Busy wall time so far, including the currently open interval.
    fn busy_wall(&self) -> Duration {
        let state = self.lock();
        state.busy + state.since.map_or(Duration::ZERO, |since| since.elapsed())
    }

    fn uptime(&self) -> Duration {
        self.started.elapsed()
    }
}

/// Closes a [`BusyClock`] interval on drop — panic-safe, like the
/// admission guard in `http.rs`.
struct BusyGuard<'a> {
    clock: &'a BusyClock,
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.clock.lock();
        state.inflight -= 1;
        if state.inflight == 0 {
            if let Some(since) = state.since.take() {
                state.busy += since.elapsed();
            }
        }
    }
}

/// Publishes an externally kept monotonic total into a registry counter
/// by delta at each [`Service::refresh_metrics`] — `fetch_max` makes
/// concurrent scrapes add each increment exactly once.
struct DeltaCounter {
    counter: Counter,
    published: AtomicU64,
}

impl DeltaCounter {
    fn new(counter: Counter) -> Self {
        DeltaCounter {
            counter,
            published: AtomicU64::new(0),
        }
    }

    fn publish(&self, total: u64) {
        let published = self.published.fetch_max(total, Ordering::Relaxed);
        if total > published {
            self.counter.add(total - published);
        }
    }
}

/// The service's handles into the global metrics registry, resolved once
/// per `Service` (registration is idempotent — a second service in the
/// same process shares the same series).
struct ServiceMetrics {
    queries_verified: Counter,
    queries_violated: Counter,
    queries_aborted: Counter,
    query_seconds: Histogram,
    cache_hits: Counter,
    artifact_builds: Counter,
    artifact_rebuilds: Counter,
    evictions: DeltaCounter,
    store_hits: DeltaCounter,
    store_misses: DeltaCounter,
    store_promotes: DeltaCounter,
    store_demotes: DeltaCounter,
    store_corrupt: DeltaCounter,
    tracked_bytes: Gauge,
    peak_tracked_bytes: Gauge,
    store_bytes: Gauge,
    busy_ratio: GaugeF,
}

impl ServiceMetrics {
    fn new() -> Self {
        let queries = |result: &str| {
            tm_obs::global_counter(
                "tm_queries_total",
                "Queries answered, by result",
                &[("result", result)],
            )
        };
        ServiceMetrics {
            queries_verified: queries("verified"),
            queries_violated: queries("violated"),
            queries_aborted: queries("aborted"),
            query_seconds: tm_obs::global_histogram(
                "tm_query_seconds",
                "End-to-end time per query (admission to settle)",
                &[],
                Unit::Nanos,
            ),
            cache_hits: tm_obs::global_counter(
                "tm_cache_hits_total",
                "Queries answered from a resident artifact",
                &[],
            ),
            artifact_builds: tm_obs::global_counter(
                "tm_artifact_builds_total",
                "Artifact builds (first-time and rebuilds)",
                &[],
            ),
            artifact_rebuilds: tm_obs::global_counter(
                "tm_artifact_rebuilds_total",
                "Builds that re-created an evicted artifact",
                &[],
            ),
            evictions: DeltaCounter::new(tm_obs::global_counter(
                "tm_evictions_total",
                "Artifacts evicted by the memory budget",
                &[],
            )),
            store_hits: DeltaCounter::new(tm_obs::global_counter(
                "tm_store_hits_total",
                "Persistent-store loads that returned a verified artifact",
                &[],
            )),
            store_misses: DeltaCounter::new(tm_obs::global_counter(
                "tm_store_misses_total",
                "Persistent-store loads that found no file for the key",
                &[],
            )),
            store_promotes: DeltaCounter::new(tm_obs::global_counter(
                "tm_store_promotes_total",
                "Artifacts promoted from the persistent store instead of rebuilt",
                &[],
            )),
            store_demotes: DeltaCounter::new(tm_obs::global_counter(
                "tm_store_demotes_total",
                "Eviction victims demoted to the persistent store instead of discarded",
                &[],
            )),
            store_corrupt: DeltaCounter::new(tm_obs::global_counter(
                "tm_store_corrupt_total",
                "Persistent-store files quarantined as corrupt",
                &[],
            )),
            tracked_bytes: tm_obs::global_gauge(
                "tm_tracked_bytes",
                "Artifact bytes currently tracked by the budget ledger",
                &[],
            ),
            peak_tracked_bytes: tm_obs::global_gauge(
                "tm_peak_tracked_bytes",
                "High-water mark of tracked artifact bytes",
                &[],
            ),
            store_bytes: tm_obs::global_gauge(
                "tm_store_bytes",
                "Bytes currently addressable in the persistent artifact store",
                &[],
            ),
            busy_ratio: tm_obs::global_gauge_f(
                "tm_serve_busy_ratio",
                "Fraction of service uptime with at least one batch in flight",
                &[],
            ),
        }
    }

    /// Per-query counter updates (cheap relaxed adds, done inline).
    fn observe_query(&self, result: &QueryResult, elapsed: Duration) {
        match &result.outcome {
            QueryOutcome::Aborted { reason } => {
                self.queries_aborted.inc();
                // Abort-reason cardinality is the 5 EngineError codes;
                // aborts are rare, so the registry lookup per abort is
                // fine.
                tm_obs::global_counter(
                    "tm_aborted_queries_total",
                    "Aborted queries, by abort reason",
                    &[("reason", reason.code())],
                )
                .inc();
            }
            _ if result.holds => self.queries_verified.inc(),
            _ => self.queries_violated.inc(),
        }
        if result.cached {
            self.cache_hits.inc();
        } else if result.abort_reason().is_none() {
            self.artifact_builds.inc();
        }
        if result.rebuilt {
            self.artifact_rebuilds.inc();
        }
        self.query_seconds
            .observe(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }
}

/// Unpins (and on the reserved path refunds) an admitted query's budget
/// charge unless defused by a settle — the RAII backstop that keeps a
/// panicking query (injected or otherwise) from leaking a pin and
/// permanently shielding its artifact from eviction.
struct PinGuard<'a> {
    budget: &'a SharedBudget,
    key: &'a ArtifactKey,
    reserved: bool,
    armed: bool,
}

impl<'a> PinGuard<'a> {
    fn new(budget: &'a SharedBudget, key: &'a ArtifactKey, reserved: bool) -> Self {
        PinGuard {
            budget,
            key,
            reserved,
            armed: true,
        }
    }

    /// The failed-build settle: unpin + refund the reservation.
    fn abandon(mut self) {
        self.armed = false;
        self.budget.abandon(self.key, self.reserved);
    }

    /// The successful settle: unpin + charge the actual size. Returns
    /// the eviction victims the caller must drop.
    fn settle(mut self, bytes: usize) -> Vec<ArtifactKey> {
        self.armed = false;
        self.budget.settle(self.key, bytes)
    }
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.budget.abandon(self.key, self.reserved);
        }
    }
}

/// Side counters the service keeps per `(n, k)` session for
/// introspection — things the [`Verifier`] itself does not track
/// because they belong to the serving layer (store promotions, time
/// spent waiting on the session mutex).
#[derive(Clone, Copy, Default)]
struct SessionCounters {
    promotes: u64,
    lock_waits: u64,
    lock_wait_ns: u64,
}

/// One row of [`Service::sessions_snapshot`] — the `GET /v1/sessions`
/// schema: the per-instance-size view of artifact residency, build
/// work, and contention.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SessionInfo {
    /// Threads `n` of the session.
    pub threads: usize,
    /// Variables `k` of the session.
    pub vars: usize,
    /// Artifacts currently charged to the budget ledger for this
    /// session.
    pub resident_artifacts: usize,
    /// Their summed ledger bytes.
    pub heap_bytes: usize,
    /// Artifact builds this session performed (spec + run graph).
    pub builds: u64,
    /// Builds that re-created an evicted artifact.
    pub rebuilds: u64,
    /// Artifacts promoted from the persistent store instead of rebuilt.
    pub store_promotes: u64,
    /// Queries that acquired this session's lock.
    pub lock_waits: u64,
    /// Total nanoseconds queries spent waiting for this session's lock.
    pub lock_wait_ns: u64,
}

/// The latency summary `GET /v1/stats` attaches: quantiles estimated
/// from the log2-bucket `tm_query_seconds` histogram (linear
/// interpolation within a bucket — see
/// [`tm_obs::HistogramSnapshot::quantile`]), in seconds.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LatencyQuantiles {
    /// Observations behind the estimate (0 ⇒ all quantiles are 0).
    pub count: u64,
    /// Median end-to-end query latency, seconds.
    pub p50_s: f64,
    /// 95th-percentile latency, seconds.
    pub p95_s: f64,
    /// 99th-percentile latency, seconds.
    pub p99_s: f64,
}

/// The verification service: a [`SessionRegistry`] under a shared
/// [`crate::MemoryBudget`] ledger, fed by the batch scheduler. The API
/// is `&self` throughout — share it across threads with an `Arc` and
/// submit concurrently.
///
/// # Examples
///
/// ```
/// use tm_service::{QuerySpec, Service, ServiceConfig};
///
/// let service = Service::new(ServiceConfig {
///     pool_size: 1,
///     ..ServiceConfig::default()
/// });
/// let batch = vec![
///     QuerySpec::parse("dstm+aggressive:of:2:1").unwrap(),
///     QuerySpec::parse("dstm+aggressive:lf:2:1").unwrap(),
/// ];
/// let results = service.submit(&batch);
/// assert!(results[0].holds && !results[1].holds);
/// // One run graph answered both properties.
/// assert_eq!(service.stats().artifact_builds, 1);
/// ```
pub struct Service {
    registry: SessionRegistry,
    budget: SharedBudget,
    batch_deadline: Option<Duration>,
    max_inflight: usize,
    store: Option<ArtifactStore>,
    queries: AtomicU64,
    cache_hits: AtomicU64,
    artifact_builds: AtomicU64,
    artifact_rebuilds: AtomicU64,
    aborted_queries: AtomicU64,
    store_promotes: AtomicU64,
    store_demotes: AtomicU64,
    batch_ns: AtomicU64,
    busy: BusyClock,
    metrics: ServiceMetrics,
    session_counters: Mutex<HashMap<(usize, usize), SessionCounters>>,
}

impl Service {
    /// Creates a service from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configured store directory cannot be opened; use
    /// [`Service::try_new`] to handle that as an error.
    pub fn new(config: ServiceConfig) -> Self {
        Service::try_new(config).unwrap_or_else(|error| panic!("{error}"))
    }

    /// Creates a service from `config`, opening (and warm-starting
    /// from) the persistent store when one is configured. Every
    /// readable artifact in the store directory is imported into its
    /// owning session and charged to the budget ledger before the first
    /// query runs, so a restarted daemon answers its old roster with
    /// zero rebuilds; corrupt files are quarantined and skipped.
    pub fn try_new(config: ServiceConfig) -> Result<Self, String> {
        let store = match &config.store_dir {
            None => None,
            Some(dir) => Some(
                ArtifactStore::open(StoreConfig {
                    dir: dir.clone(),
                    cap_bytes: config.store_cap,
                    cap_files: None,
                })
                .map_err(|e| format!("cannot open artifact store {}: {e}", dir.display()))?,
            ),
        };
        let service = Service {
            registry: SessionRegistry::new(config.pool_size, config.max_states)
                .query_deadline(config.query_deadline),
            budget: SharedBudget::new(config.mem_budget),
            batch_deadline: config.batch_deadline,
            max_inflight: config.max_inflight,
            store,
            queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            artifact_builds: AtomicU64::new(0),
            artifact_rebuilds: AtomicU64::new(0),
            aborted_queries: AtomicU64::new(0),
            store_promotes: AtomicU64::new(0),
            store_demotes: AtomicU64::new(0),
            batch_ns: AtomicU64::new(0),
            busy: BusyClock::new(),
            metrics: ServiceMetrics::new(),
            session_counters: Mutex::new(HashMap::new()),
        };
        service.warm_start();
        Ok(service)
    }

    /// Rehydrates every session from the persistent store at
    /// construction: loads each addressable file (integrity-verified —
    /// a corrupt one is quarantined by the load and skipped), imports
    /// the artifact into its owning session, and charges it through the
    /// normal admit/settle protocol, so the memory budget holds from
    /// the first instant (overflow demotes straight back to disk).
    fn warm_start(&self) {
        let Some(store) = &self.store else { return };
        for path in store.files() {
            let Ok((key, artifact)) = store.load_path(&path) else {
                continue;
            };
            self.install(&key, artifact);
        }
    }

    /// Installs one verified store artifact into its owning session and
    /// charges it to the budget ledger. `false` if the store key does
    /// not map to an artifact this service serves (foreign kind,
    /// unknown property code, out-of-range instance size) or the
    /// payload fails the session's structural validation.
    fn install(&self, key: &StoreKey, artifact: Artifact) -> bool {
        let Some(ledger_key) = ledger_key(key) else {
            return false;
        };
        let session = self.registry.session(ledger_key.threads, ledger_key.vars);
        let bytes = {
            let mut session = lock_session(&session);
            match import(&mut session, &ledger_key, artifact) {
                Some(bytes) => bytes,
                None => return false,
            }
        };
        let admission = self.budget.admit(&ledger_key);
        self.perform_evictions(&admission.evicted);
        let evicted = self.budget.settle(&ledger_key, bytes);
        self.perform_evictions(&evicted);
        true
    }

    /// Tries to answer an artifact miss from the persistent store:
    /// loads and verifies the on-disk copy and imports it into the
    /// (locked) session in place of a rebuild. `false` on a store miss,
    /// a corrupt file (quarantined by the load), an injected `store`
    /// fault, or when the artifact is already resident — every failure
    /// falls back to the ordinary rebuild.
    fn promote(&self, session: &mut Verifier, key: &ArtifactKey) -> bool {
        let Some(store) = &self.store else {
            return false;
        };
        let resident = match &key.kind {
            ArtifactKind::RunGraph(name) => session.run_graph_heap_bytes(name).is_some(),
            ArtifactKind::Spec(property) => session.spec_heap_bytes(*property).is_some(),
        };
        if resident {
            return false;
        }
        let Ok(Some(artifact)) = store.load(&store_key(key)) else {
            return false;
        };
        let Some(bytes) = import(session, key, artifact) else {
            return false;
        };
        self.store_promotes.fetch_add(1, Ordering::Relaxed);
        self.bump_session(key.threads, key.vars, |c| c.promotes += 1);
        journal(EventKind::Promote, key, bytes as u64);
        true
    }

    /// Applies `update` to the side counters of session `(threads,
    /// vars)` (creating the row on first touch).
    fn bump_session(&self, threads: usize, vars: usize, update: impl FnOnce(&mut SessionCounters)) {
        let mut counters = self
            .session_counters
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        update(counters.entry((threads, vars)).or_default());
    }

    /// Write-through: persists a freshly built artifact, exporting it
    /// from the (locked) session. Content-addressed re-saves of an
    /// already stored key are no-ops inside the store; store faults and
    /// I/O errors are swallowed — persistence is best-effort and never
    /// fails a query.
    fn save_through(&self, session: &Verifier, key: &ArtifactKey) {
        let Some(store) = &self.store else { return };
        if let Some(artifact) = export(session, key) {
            let _ = store.save(&store_key(key), &artifact);
        }
    }

    /// Demotes an eviction victim to the store before it is dropped
    /// (export + save under the caller's session lock). `false` — and
    /// the eviction simply discards, the pre-store behavior — when no
    /// store is configured or the save fails.
    fn demote(&self, session: &Verifier, key: &ArtifactKey) -> bool {
        let Some(store) = &self.store else {
            return false;
        };
        let Some(artifact) = export(session, key) else {
            return false;
        };
        if store.save(&store_key(key), &artifact).is_err() {
            return false;
        }
        self.store_demotes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The configured admission bound (`0` = unbounded) — enforced by
    /// the HTTP layer, which sheds requests beyond it with 429.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Answers a whole batch: schedules it for artifact reuse
    /// ([`execution_order`]), runs every query through the registry
    /// sessions under the budget, and returns the results **in request
    /// order**. Runs under the configured batch deadline, if any.
    /// Concurrent `submit` calls overlap: queries on different instance
    /// sizes run in parallel, queries on the same session serialize.
    pub fn submit(&self, batch: &[QuerySpec]) -> Vec<QueryResult> {
        self.submit_with_deadline(batch, None)
    }

    /// [`Service::submit`] with an explicit batch deadline in
    /// milliseconds (a request-supplied `deadline_ms` overrides the
    /// configured default). Queries still unanswered when the deadline
    /// expires are shed as [`QueryOutcome::Aborted`] /
    /// [`EngineError::Deadline`] results without running; results stay
    /// in request order either way.
    pub fn submit_with_deadline(
        &self,
        batch: &[QuerySpec],
        deadline_ms: Option<u64>,
    ) -> Vec<QueryResult> {
        self.submit_traced(batch, deadline_ms, false)
    }

    /// [`Service::submit_with_deadline`] that additionally attaches a
    /// per-query [`TraceRecord`] — the phase totals and captured spans —
    /// to every result when `trace` is `true` (and instrumentation is
    /// enabled; with `TM_OBS=off` the results come back untraced).
    pub fn submit_traced(
        &self,
        batch: &[QuerySpec],
        deadline_ms: Option<u64>,
        trace: bool,
    ) -> Vec<QueryResult> {
        let start = Instant::now();
        let _busy = self.busy.enter();
        let deadline = deadline_ms
            .map(Duration::from_millis)
            .or(self.batch_deadline)
            .map(|window| start + window);
        let mut results: Vec<Option<QueryResult>> = batch.iter().map(|_| None).collect();
        for idx in execution_order(batch) {
            results[idx] = Some(self.run_traced(&batch[idx], deadline, trace));
        }
        self.batch_ns.fetch_add(
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        results
            .into_iter()
            .map(|r| r.expect("every scheduled query was answered"))
            .collect()
    }

    /// Runs one query under a per-query trace recorder (when
    /// instrumentation is enabled), updates the per-query metrics, and
    /// emits the slow-query log line if the query crossed the
    /// `TM_SLOW_QUERY_MS` threshold.
    fn run_traced(
        &self,
        spec: &QuerySpec,
        deadline: Option<Instant>,
        trace: bool,
    ) -> QueryResult {
        let started = Instant::now();
        let result = if tm_obs::obs_enabled() {
            let (mut result, record) =
                tm_obs::with_recorder(trace, || self.run_one(spec, deadline));
            if trace {
                result.trace = Some(record);
            }
            result
        } else {
            self.run_one(spec, deadline)
        };
        let elapsed = started.elapsed();
        self.metrics.observe_query(&result, elapsed);
        if let Some(threshold) = tm_obs::slow_query_threshold() {
            if elapsed >= threshold {
                self.log_slow_query(&result, elapsed);
            }
        }
        result
    }

    /// Emits the slow-query line. Written straight to stderr via
    /// [`tm_obs::format_log_line`] — deliberately *not* through
    /// [`tm_obs::log_json`], so setting `TM_SLOW_QUERY_MS` alone (with
    /// `TM_LOG` off) still surfaces slow queries.
    fn log_slow_query(&self, result: &QueryResult, elapsed: Duration) {
        use std::io::Write;
        let spec = result.spec.to_string();
        let dur_ms = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
        let line = tm_obs::format_log_line(
            "slow_query",
            &[
                ("query", LogValue::Str(&spec)),
                ("tm", LogValue::Str(&result.name)),
                ("dur_ms", LogValue::U64(dur_ms)),
                ("holds", LogValue::Bool(result.holds)),
                ("states", LogValue::U64(result.states as u64)),
                ("cached", LogValue::Bool(result.cached)),
            ],
        );
        let stderr = std::io::stderr();
        let mut handle = stderr.lock();
        let _ = handle.write_all(line.as_bytes());
    }

    /// Answers one scheduled query: deadline check, budget admission
    /// (pin), session query, settle. The extracted per-query body of the
    /// old `submit` loop, so [`Service::run_traced`] can wrap it in a
    /// recorder.
    fn run_one(&self, spec: &QuerySpec, deadline: Option<Instant>) -> QueryResult {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.aborted_queries.fetch_add(1, Ordering::Relaxed);
            journal(EventKind::Abort, spec, 0);
            return QueryResult::aborted(spec.clone(), EngineError::Deadline);
        }
        let key = spec.artifact_key();
        // Admit under the budget: pins `key` for the whole query, so
        // no concurrent batch can evict the artifact from under us;
        // on a miss this also pre-evicts at the last known size so
        // two generations of a large artifact never coexist.
        let admit_started = Instant::now();
        let admission = self.budget.admit(&key);
        if admit_started.elapsed() >= ADMISSION_WAIT_JOURNAL_THRESHOLD {
            journal(EventKind::AdmissionWait, &key, 0);
        }
        let pin = PinGuard::new(&self.budget, &key, admission.reserved);
        let mut demotes = self.perform_evictions(&admission.evicted);
        // Fault site: the artifact (re)build about to happen.
        if admission.reserved {
            if let Err(error) = fault::fault_point("build") {
                pin.abandon();
                self.aborted_queries.fetch_add(1, Ordering::Relaxed);
                journal(EventKind::Abort, &key, 0);
                return QueryResult::aborted(spec.clone(), error);
            }
        }
        let session = self.registry.session(spec.threads, spec.vars);
        let mut promotes = 0;
        let (mut verdict, bytes) = {
            let lock_started = Instant::now();
            let lock_span = PhaseTimer::start(Phase::SessionLockWait);
            let mut session = lock_session(&session);
            lock_span.stop();
            let lock_wait = lock_started.elapsed();
            self.bump_session(spec.threads, spec.vars, |c| {
                c.lock_waits += 1;
                c.lock_wait_ns += saturating_ns(lock_wait);
            });
            // A budget miss first tries the persistent store: a
            // verified on-disk copy imports in place of a rebuild.
            if admission.reserved && self.promote(&mut session, &key) {
                promotes = 1;
            }
            let verdict = run_query(&mut session, spec);
            let bytes = match &key.kind {
                ArtifactKind::RunGraph(name) => session.run_graph_heap_bytes(name),
                ArtifactKind::Spec(property) => session.spec_heap_bytes(*property),
            }
            .unwrap_or(0);
            // Write-through: a successful first build (or rebuild) is
            // persisted immediately, so a restart warm-starts even if
            // the budget never forces a demotion.
            if admission.reserved
                && !verdict.stats.artifact_cached
                && !matches!(verdict.outcome, VerdictOutcome::Aborted(_))
            {
                self.save_through(&session, &key);
            }
            (verdict, bytes)
        };
        let aborted = matches!(verdict.outcome, VerdictOutcome::Aborted(_));
        if aborted {
            self.aborted_queries.fetch_add(1, Ordering::Relaxed);
            journal(EventKind::Abort, &key, 0);
        } else if verdict.stats.artifact_cached {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.artifact_builds.fetch_add(1, Ordering::Relaxed);
            journal(EventKind::Build, &key, bytes as u64);
        }
        self.artifact_rebuilds
            .fetch_add(verdict.stats.rebuilds as u64, Ordering::Relaxed);
        // Fault site: the charge settle / eviction after the query.
        if let Err(error) = fault::fault_point("evict") {
            pin.abandon();
            self.aborted_queries.fetch_add(1, Ordering::Relaxed);
            journal(EventKind::Abort, &key, 0);
            return QueryResult::aborted(spec.clone(), error);
        }
        if bytes == 0 && aborted {
            // The build failed before producing an artifact: settle
            // the provisional reservation instead of charging a
            // phantom entry.
            pin.abandon();
        } else {
            // Charge the artifact's *current* size (lazy spec caches
            // grow as new TMs touch new rows) and settle back under
            // budget.
            let evicted = pin.settle(bytes);
            demotes += self.perform_evictions(&evicted);
        }
        verdict.stats.store_promotes = promotes;
        verdict.stats.store_demotes = demotes;
        QueryResult::from_verdict(spec.clone(), verdict)
    }

    /// Performs ledger-decided evictions on the owning sessions,
    /// returning how many victims were demoted to the persistent store
    /// (always 0 without one). The decision and the drop are
    /// deliberately decoupled: by the time a victim's session lock is
    /// acquired here, a concurrent query may have re-admitted the
    /// artifact, so each drop re-checks the ledger (holding the session
    /// lock, which is what any user of the artifact would need) and
    /// skips victims that came back to life. With a store, the victim
    /// is exported and saved right before the drop — eviction becomes
    /// demotion, and a later query on the key promotes it back instead
    /// of rebuilding.
    fn perform_evictions(&self, evicted: &[ArtifactKey]) -> usize {
        let mut demotes = 0;
        for key in evicted {
            let session = self.registry.session(key.threads, key.vars);
            let mut session = lock_session(&session);
            if !self.budget.should_drop(key) {
                continue;
            }
            let bytes = match &key.kind {
                ArtifactKind::RunGraph(name) => session.run_graph_heap_bytes(name),
                ArtifactKind::Spec(property) => session.spec_heap_bytes(*property),
            }
            .unwrap_or(0) as u64;
            if self.demote(&session, key) {
                demotes += 1;
                journal(EventKind::Demote, key, bytes);
            } else {
                journal(EventKind::Evict, key, bytes);
            }
            match &key.kind {
                ArtifactKind::RunGraph(name) => {
                    session.drop_run_graph(name);
                }
                ArtifactKind::Spec(property) => {
                    session.drop_spec(*property);
                }
            }
        }
        demotes
    }

    /// Current counters. Reads atomics and takes only the (short,
    /// condvar-released) ledger and registry-map locks — never a session
    /// lock — so it answers immediately while long batches run.
    pub fn stats(&self) -> ServiceStats {
        let store = self
            .store
            .as_ref()
            .map(ArtifactStore::stats)
            .unwrap_or_default();
        ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            artifact_builds: self.artifact_builds.load(Ordering::Relaxed),
            artifact_rebuilds: self.artifact_rebuilds.load(Ordering::Relaxed),
            aborted_queries: self.aborted_queries.load(Ordering::Relaxed),
            evictions: self.budget.evictions(),
            tracked_bytes: self.budget.tracked_bytes(),
            peak_tracked_bytes: self.budget.peak_bytes(),
            mem_budget: self.budget.limit(),
            sessions: self.registry.len(),
            pool_size: self.registry.pool_size(),
            batch_ns: self.batch_ns.load(Ordering::Relaxed),
            busy_wall_ns: u64::try_from(self.busy.busy_wall().as_nanos()).unwrap_or(u64::MAX),
            uptime_ns: u64::try_from(self.busy.uptime().as_nanos()).unwrap_or(u64::MAX),
            store_hits: store.hits,
            store_misses: store.misses,
            store_promotes: self.store_promotes.load(Ordering::Relaxed),
            store_demotes: self.store_demotes.load(Ordering::Relaxed),
            store_corrupt: store.corrupt,
            store_saves: store.saves,
            store_bytes: store.bytes,
            store_files: store.files,
        }
    }

    /// Publishes the scrape-time metrics into the global registry: the
    /// ledger gauges, the eviction-counter delta, and the busy ratio.
    /// The `/metrics` endpoint calls this before rendering, so gauges
    /// are current without a per-query update.
    pub fn refresh_metrics(&self) {
        let stats = self.stats();
        let m = &self.metrics;
        m.tracked_bytes.set(stats.tracked_bytes as u64);
        m.peak_tracked_bytes.set(stats.peak_tracked_bytes as u64);
        m.store_bytes.set(stats.store_bytes);
        // Publish the monotonic service-side totals into the counters
        // by delta (see [`DeltaCounter`]).
        m.evictions.publish(stats.evictions);
        m.store_hits.publish(stats.store_hits);
        m.store_misses.publish(stats.store_misses);
        m.store_promotes.publish(stats.store_promotes);
        m.store_demotes.publish(stats.store_demotes);
        m.store_corrupt.publish(stats.store_corrupt);
        m.busy_ratio
            .set(stats.busy_wall_ns as f64 / (stats.uptime_ns.max(1)) as f64);
    }

    /// The currently charged artifacts and their byte sizes, sorted.
    pub fn ledger(&self) -> Vec<(ArtifactKey, usize)> {
        self.budget.ledger()
    }

    /// Sum of every session's resident artifact heap bytes — the ground
    /// truth the budget ledger approximates (takes each session lock
    /// briefly; a snapshot, not an atomic read).
    pub fn artifact_heap_bytes(&self) -> usize {
        self.registry.artifact_heap_bytes()
    }

    /// Ledger entries currently pinned by in-flight queries — 0
    /// whenever no query is running (diagnostics; the demotion
    /// accounting tests assert pins never leak).
    pub fn pinned_artifacts(&self) -> usize {
        self.budget.pinned_entries()
    }

    /// One [`SessionInfo`] row per `(n, k)` session, sorted by instance
    /// size — the `GET /v1/sessions` payload. Takes each session's lock
    /// briefly for the build counters, so a row for a session mid-query
    /// waits for that query (unlike [`Service::stats`], which never
    /// touches a session lock).
    pub fn sessions_snapshot(&self) -> Vec<SessionInfo> {
        let ledger = self.budget.ledger();
        let counters = self
            .session_counters
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        self.registry
            .instance_sizes()
            .into_iter()
            .map(|(threads, vars)| {
                let (resident_artifacts, heap_bytes) = ledger
                    .iter()
                    .filter(|(key, _)| key.threads == threads && key.vars == vars)
                    .fold((0, 0), |(n, b), (_, bytes)| (n + 1, b + bytes));
                let (builds, rebuilds) = {
                    let session = self.registry.session(threads, vars);
                    let session = lock_session(&session);
                    (
                        (session.spec_builds() + session.run_graph_builds()) as u64,
                        (session.spec_rebuilds() + session.run_graph_rebuilds()) as u64,
                    )
                };
                let side = counters.get(&(threads, vars)).copied().unwrap_or_default();
                SessionInfo {
                    threads,
                    vars,
                    resident_artifacts,
                    heap_bytes,
                    builds,
                    rebuilds,
                    store_promotes: side.promotes,
                    lock_waits: side.lock_waits,
                    lock_wait_ns: side.lock_wait_ns,
                }
            })
            .collect()
    }

    /// The latency quantile summary estimated from the
    /// `tm_query_seconds` histogram — what `GET /v1/stats` attaches as
    /// its `"latency"` member. All zeros before the first query.
    pub fn latency_quantiles(&self) -> LatencyQuantiles {
        let snapshot = self.metrics.query_seconds.snapshot();
        let quantile = |q: f64| snapshot.quantile(q) / 1e9;
        LatencyQuantiles {
            count: snapshot.count,
            p50_s: quantile(0.50),
            p95_s: quantile(0.95),
            p99_s: quantile(0.99),
        }
    }

    /// The persistent store's file listing in LRU order (least recently
    /// used first) — the `GET /v1/store` payload; empty when no store is
    /// configured.
    pub fn store_entries(&self) -> Vec<StoreEntry> {
        self.store
            .as_ref()
            .map(ArtifactStore::entries)
            .unwrap_or_default()
    }
}

/// The store key addressing a budget-ledger artifact on disk.
fn store_key(key: &ArtifactKey) -> StoreKey {
    match &key.kind {
        ArtifactKind::RunGraph(name) => StoreKey::run_graph(name, key.threads, key.vars),
        ArtifactKind::Spec(property) => StoreKey::lazy_spec(
            PropertyKind::Safety(*property).code(),
            key.threads,
            key.vars,
        ),
    }
}

/// The inverse of [`store_key`]: the ledger key a store file installs
/// under, or `None` for files this service does not serve — foreign
/// kinds (eager NFA/DFA artifacts), unknown property codes, or instance
/// sizes outside the query bounds (a foreign file in the directory must
/// be skipped, not fed to a session constructor that would assert).
fn ledger_key(key: &StoreKey) -> Option<ArtifactKey> {
    let threads = key.threads as usize;
    let vars = key.vars as usize;
    if !(1..=MAX_QUERY_THREADS).contains(&threads) || !(1..=MAX_QUERY_VARS).contains(&vars) {
        return None;
    }
    let kind = match key.kind {
        StoreKind::RunGraph => ArtifactKind::RunGraph(key.tm.clone()),
        StoreKind::LazySpec => match key.property.parse::<PropertyKind>() {
            Ok(PropertyKind::Safety(property)) => ArtifactKind::Spec(property),
            _ => return None,
        },
        _ => return None,
    };
    Some(ArtifactKey {
        threads,
        vars,
        kind,
    })
}

/// Imports a verified store artifact into `session` under `key`,
/// returning its resident heap size — `None` if the payload kind does
/// not match the key or fails the session's structural validation.
fn import(session: &mut Verifier, key: &ArtifactKey, artifact: Artifact) -> Option<usize> {
    match (&key.kind, artifact) {
        (ArtifactKind::RunGraph(name), Artifact::RunGraph(a)) => {
            session.import_run_graph(name, a.graph, a.states, Duration::from_nanos(a.build_ns));
            session.run_graph_heap_bytes(name)
        }
        (ArtifactKind::Spec(property), Artifact::LazySpec(a)) => {
            session
                .import_lazy_spec(
                    *property,
                    key.threads,
                    key.vars,
                    a.states,
                    a.rows,
                    Duration::from_nanos(a.build_ns),
                )
                .ok()?;
            session.spec_heap_bytes(*property)
        }
        _ => None,
    }
}

/// Exports `key`'s resident artifact from `session` for the store —
/// `None` if the session no longer holds it.
fn export(session: &Verifier, key: &ArtifactKey) -> Option<Artifact> {
    match &key.kind {
        ArtifactKind::RunGraph(name) => {
            session
                .export_run_graph(name)
                .map(|(graph, states, build_time)| {
                    Artifact::RunGraph(RunGraphArtifact {
                        graph,
                        states,
                        build_ns: saturating_ns(build_time),
                    })
                })
        }
        ArtifactKind::Spec(property) => session
            .export_lazy_spec(*property, key.threads, key.vars)
            .map(|(states, rows, build_time)| {
                Artifact::LazySpec(LazySpecArtifact {
                    states,
                    rows,
                    build_ns: saturating_ns(build_time),
                })
            }),
    }
}

fn saturating_ns(duration: Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::{table2_batch, table3_batch};

    fn sequential_config(mem_budget: Option<usize>) -> ServiceConfig {
        ServiceConfig {
            mem_budget,
            pool_size: 1,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn a_batch_builds_each_artifact_once() {
        let service = Service::new(sequential_config(None));
        let mut batch = table3_batch();
        batch.extend(table2_batch());
        let results = service.submit(&batch);
        assert_eq!(results.len(), 22);
        // Results come back in request order.
        for (result, spec) in results.iter().zip(&batch) {
            assert_eq!(&result.spec, spec);
        }
        let stats = service.stats();
        assert_eq!(stats.queries, 22);
        // 4 run graphs + 2 specs, each built exactly once.
        assert_eq!(stats.artifact_builds, 6);
        assert_eq!(stats.cache_hits, 16);
        assert_eq!(stats.artifact_rebuilds, 0);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.sessions, 2);
        assert_eq!(service.ledger().len(), 6);
        assert!(stats.tracked_bytes > 0);
    }

    #[test]
    fn sessions_snapshot_reports_per_size_rows() {
        let service = Service::new(sequential_config(None));
        let mut batch = table3_batch();
        batch.extend(table2_batch());
        service.submit(&batch);
        let rows = service.sessions_snapshot();
        assert_eq!(rows.len(), 2, "two instance sizes in the roster");
        assert!(rows.windows(2).all(|w| (w[0].threads, w[0].vars) < (w[1].threads, w[1].vars)));
        for row in &rows {
            assert!(row.resident_artifacts > 0);
            assert!(row.heap_bytes > 0);
            assert!(row.builds > 0);
            assert_eq!(row.rebuilds, 0);
            assert!(row.lock_waits > 0, "every query acquires the session lock");
        }
        // 4 run graphs + 2 specs across both sessions, matching the
        // ledger.
        let resident: usize = rows.iter().map(|r| r.resident_artifacts).sum();
        assert_eq!(resident, service.ledger().len());
    }

    #[test]
    fn latency_quantiles_are_ordered_and_populated_after_queries() {
        let service = Service::new(sequential_config(None));
        service.submit(&table3_batch());
        let q = service.latency_quantiles();
        // `tm_query_seconds` is a process-global series shared with any
        // other test in this binary, so assert monotonic facts only.
        assert!(q.count >= 12);
        assert!(q.p50_s > 0.0);
        assert!(q.p50_s <= q.p95_s && q.p95_s <= q.p99_s);
    }

    #[test]
    fn mem_budget_parsing() {
        assert_eq!(parse_mem_budget(""), Ok(None));
        assert_eq!(parse_mem_budget("0"), Ok(None));
        assert_eq!(parse_mem_budget("unbounded"), Ok(None));
        assert_eq!(parse_mem_budget("4096"), Ok(Some(4096)));
        assert_eq!(parse_mem_budget("16k"), Ok(Some(16 << 10)));
        assert_eq!(parse_mem_budget("3M"), Ok(Some(3 << 20)));
        assert_eq!(parse_mem_budget("2g"), Ok(Some(2 << 30)));
        assert!(parse_mem_budget("lots").is_err());
        assert!(parse_mem_budget("12q").is_err());
    }
}
