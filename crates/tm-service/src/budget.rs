//! The artifact memory budget: an LRU ledger over the compiled artifacts
//! a service retains across queries, in the `heap_bytes()` accounting of
//! `tm-automata`.
//!
//! The ledger is deliberately decoupled from the sessions that own the
//! memory: it decides *which* artifact to evict and the service layer
//! performs the eviction ([`tm_checker::Verifier::drop_run_graph`] /
//! [`tm_checker::Verifier::drop_spec`]). The invariant it maintains is
//! about *retained* memory: between queries, the sum of tracked artifact
//! bytes never exceeds the budget (provided every single artifact fits —
//! an over-budget artifact is kept and re-evicted as soon as another
//! query needs room, since dropping the artifact a query is actively
//! using would only force an immediate rebuild). During a query, the
//! service pre-evicts with the artifact's last known size
//! ([`MemoryBudget::reserve`]) so rebuilds never hold two generations of
//! large artifacts at once; a first-time build of unknown size is charged
//! and settled immediately after it completes ([`MemoryBudget::charge`]).
//!
//! ## Pinning and the concurrent protocol
//!
//! With per-session locking, several queries are in flight at once, and
//! the ledger must not select an artifact another query is actively
//! using as an eviction victim. Every entry therefore carries a **pin
//! refcount**: [`MemoryBudget::pin`]ned entries are skipped by the
//! eviction scan, and a query holds exactly one pin — on its own
//! artifact — from admission to settle. [`SharedBudget`] wraps the
//! ledger in a `Mutex` + `Condvar` and implements the protocol:
//!
//! 1. **admit** — if the key is charged: touch + pin (a cache hit, no
//!    byte movement, never waits). Otherwise reserve at the size hint
//!    and pin; if the reservation cannot fit even after evicting every
//!    unpinned entry, *wait* for concurrent pins to drain first. The
//!    waiter holds no pins and no other locks, so pin holders always
//!    make progress and admission cannot deadlock.
//! 2. **settle** — unpin first (the query is done; its artifact is fair
//!    game again), then charge the actual size, waiting for room the
//!    same way if the artifact grew while other queries hold pins.
//!    Unpinning *before* waiting is what makes two concurrent settlers
//!    drain each other instead of deadlocking.
//! 3. **abandon** — the failed-build path: unpin and release the
//!    provisional reservation (PR 6's refund), hint preserved.
//!
//! First-time builds reserve 0 bytes (no hint), so cold concurrent
//! batches admit freely and each settle evicts predecessors as real
//! sizes land. Single-flight per key is structural: all queries on one
//! `(n, k)` session serialize on that session's mutex, so the second
//! query for a key finds the artifact the first one built.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard};

use tm_lang::SafetyProperty;
use tm_obs::{Phase, PhaseTimer};

/// What a ledger entry pays for.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ArtifactKind {
    /// A TM's compiled run graph (key: the full TM name).
    RunGraph(String),
    /// The specification artifacts of one safety property (lazy interned
    /// rows and/or eager compiled DFA, summed).
    Spec(SafetyProperty),
}

/// Ledger key: an artifact within one instance size's session.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ArtifactKey {
    /// Threads `n` of the owning session.
    pub threads: usize,
    /// Variables `k` of the owning session.
    pub vars: usize,
    /// Which artifact.
    pub kind: ArtifactKind,
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ArtifactKind::RunGraph(name) => {
                write!(f, "({},{})/run-graph/{name}", self.threads, self.vars)
            }
            ArtifactKind::Spec(property) => write!(
                f,
                "({},{})/spec/{}",
                self.threads,
                self.vars,
                property.short_name()
            ),
        }
    }
}

struct Entry {
    bytes: usize,
    last_used: u64,
    /// In-flight queries currently using this artifact; pinned entries
    /// are never eviction victims.
    pins: usize,
}

/// The LRU byte ledger (see the module docs for the retained-memory
/// invariant and the pinning protocol).
///
/// # Examples
///
/// ```
/// use tm_service::{ArtifactKey, ArtifactKind, MemoryBudget};
///
/// let key = |name: &str| ArtifactKey {
///     threads: 2,
///     vars: 1,
///     kind: ArtifactKind::RunGraph(name.to_owned()),
/// };
/// let mut budget = MemoryBudget::new(Some(100));
/// assert!(budget.charge(key("a"), 60).is_empty());
/// // Charging past the limit evicts the least recently used entry.
/// let evicted = budget.charge(key("b"), 60);
/// assert_eq!(evicted, vec![key("a")]);
/// assert_eq!(budget.tracked_bytes(), 60);
/// assert!(budget.peak_bytes() <= 100);
/// ```
pub struct MemoryBudget {
    limit: Option<usize>,
    entries: HashMap<ArtifactKey, Entry>,
    /// Last observed size per key — survives eviction, so a rebuild can
    /// pre-reserve its room.
    hints: HashMap<ArtifactKey, usize>,
    clock: u64,
    tracked: usize,
    peak: usize,
    evictions: u64,
}

impl MemoryBudget {
    /// Creates a ledger with the given byte limit (`None` = unbounded).
    pub fn new(limit: Option<usize>) -> Self {
        MemoryBudget {
            limit,
            entries: HashMap::new(),
            hints: HashMap::new(),
            clock: 0,
            tracked: 0,
            peak: 0,
            evictions: 0,
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Whether `key` is currently charged.
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Marks `key` as just used (moves it to the MRU end).
    pub fn touch(&mut self, key: &ArtifactKey) {
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(key) {
            entry.last_used = self.clock;
        }
    }

    /// Pins `key`: while its pin count is nonzero the entry is never an
    /// eviction victim. No-op if `key` is not charged.
    pub fn pin(&mut self, key: &ArtifactKey) {
        if let Some(entry) = self.entries.get_mut(key) {
            entry.pins += 1;
        }
    }

    /// Drops one pin from `key`. No-op if `key` is not charged (the
    /// entry was released by the failed-build path).
    pub fn unpin(&mut self, key: &ArtifactKey) {
        if let Some(entry) = self.entries.get_mut(key) {
            entry.pins = entry.pins.saturating_sub(1);
        }
    }

    /// Whether `key` is charged and currently pinned.
    pub fn pinned(&self, key: &ArtifactKey) -> bool {
        self.entries.get(key).is_some_and(|e| e.pins > 0)
    }

    /// Number of entries with a nonzero pin count.
    pub fn pinned_entries(&self) -> usize {
        self.entries.values().filter(|e| e.pins > 0).count()
    }

    /// The last observed size of `key`, whether or not it is currently
    /// charged (0 if never charged).
    pub fn hint(&self, key: &ArtifactKey) -> usize {
        self.hints.get(key).copied().unwrap_or(0)
    }

    /// Whether a charge of `key` at `bytes` could settle under the limit
    /// after evicting every *unpinned* entry other than `key` — or, if
    /// not, whether nothing else is pinned (so waiting cannot help and
    /// the over-budget proviso applies). `false` means: wait for a
    /// concurrent pin to drain.
    fn room_for(&self, key: &ArtifactKey, bytes: usize) -> bool {
        let Some(limit) = self.limit else {
            return true;
        };
        let current = self.entries.get(key).map_or(0, |e| e.bytes);
        let needed = self.tracked - current + bytes;
        let evictable: usize = self
            .entries
            .iter()
            .filter(|(k, e)| e.pins == 0 && *k != key)
            .map(|(_, e)| e.bytes)
            .sum();
        needed.saturating_sub(evictable) <= limit
            || !self.entries.iter().any(|(k, e)| e.pins > 0 && k != key)
    }

    /// Makes room for an upcoming (re)build of `key` and charges it
    /// *provisionally* at its last known size: evicts LRU entries until
    /// the tracked total (including the provisional charge) fits the
    /// limit, so two queries racing through the service cannot both
    /// believe the same headroom is theirs. Returns the keys the caller
    /// must now actually drop from their sessions.
    ///
    /// A successful build settles the provisional charge with
    /// [`MemoryBudget::charge`]; a build that fails or aborts **must**
    /// call [`MemoryBudget::release`], or the phantom bytes stay tracked
    /// forever and shrink the budget for every later query.
    pub fn reserve(&mut self, key: &ArtifactKey) -> Vec<ArtifactKey> {
        let hint = self.hint(key);
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.tracked = self.tracked - entry.bytes + hint;
                entry.bytes = hint;
                entry.last_used = self.clock;
            }
            None => {
                self.entries.insert(
                    key.clone(),
                    Entry {
                        bytes: hint,
                        last_used: self.clock,
                        pins: 0,
                    },
                );
                self.tracked += hint;
            }
        }
        let evicted = self.evict_while_over(0, Some(key));
        self.peak = self.peak.max(self.tracked);
        evicted
    }

    /// Releases `key`'s charge — the settle path for a build that failed
    /// or aborted after [`MemoryBudget::reserve`]. Returns whether the
    /// key was charged. The size hint survives, so a retry reserves the
    /// same room.
    pub fn release(&mut self, key: &ArtifactKey) -> bool {
        match self.entries.remove(key) {
            Some(entry) => {
                self.tracked -= entry.bytes;
                true
            }
            None => false,
        }
    }

    /// Charges (or re-charges) `key` at `bytes`, marks it most recently
    /// used, and settles the ledger back under the limit by evicting LRU
    /// entries — never `key` itself, never a pinned entry. Returns the
    /// keys the caller must drop.
    pub fn charge(&mut self, key: ArtifactKey, bytes: usize) -> Vec<ArtifactKey> {
        self.clock += 1;
        self.hints.insert(key.clone(), bytes);
        match self.entries.get_mut(&key) {
            Some(entry) => {
                self.tracked = self.tracked - entry.bytes + bytes;
                entry.bytes = bytes;
                entry.last_used = self.clock;
            }
            None => {
                self.entries.insert(
                    key.clone(),
                    Entry {
                        bytes,
                        last_used: self.clock,
                        pins: 0,
                    },
                );
                self.tracked += bytes;
            }
        }
        let evicted = self.evict_while_over(0, Some(&key));
        self.peak = self.peak.max(self.tracked);
        evicted
    }

    /// Evicts LRU entries while `tracked + headroom` exceeds the limit,
    /// never evicting `exclude` or a pinned entry. Stops (leaving the
    /// ledger over budget) when nothing evictable remains.
    fn evict_while_over(&mut self, headroom: usize, exclude: Option<&ArtifactKey>) -> Vec<ArtifactKey> {
        let Some(limit) = self.limit else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        while self.tracked + headroom > limit {
            let victim = self
                .entries
                .iter()
                .filter(|(key, entry)| Some(*key) != exclude && entry.pins == 0)
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone());
            let Some(victim) = victim else { break };
            let entry = self.entries.remove(&victim).expect("victim is charged");
            self.tracked -= entry.bytes;
            self.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Currently tracked bytes.
    pub fn tracked_bytes(&self) -> usize {
        self.tracked
    }

    /// The high-water mark of tracked bytes over the ledger's lifetime,
    /// sampled whenever a charge settles.
    pub fn peak_bytes(&self) -> usize {
        self.peak
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of charged artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is charged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The charged artifacts and their byte sizes, sorted by key display
    /// (hash order is not deterministic).
    pub fn ledger(&self) -> Vec<(ArtifactKey, usize)> {
        let mut entries: Vec<(ArtifactKey, usize)> = self
            .entries
            .iter()
            .map(|(key, entry)| (key.clone(), entry.bytes))
            .collect();
        entries.sort_by_cached_key(|(key, _)| key.to_string());
        entries
    }
}

/// The result of [`SharedBudget::admit`].
pub struct Admission {
    /// `true` — a (re)build was reserved and the settle must charge or
    /// release it; `false` — the artifact was already charged (cache
    /// hit).
    pub reserved: bool,
    /// Keys the caller must drop from their owning sessions.
    pub evicted: Vec<ArtifactKey>,
}

/// A [`MemoryBudget`] shared between concurrent queries: a mutex-held
/// ledger plus a condvar signalled whenever bytes or pins are freed, so
/// admissions and settles that cannot fit yet wait for in-flight pins to
/// drain instead of overcommitting the limit (see the module docs for
/// the protocol and its deadlock-freedom argument).
pub struct SharedBudget {
    inner: Mutex<MemoryBudget>,
    freed: Condvar,
}

impl SharedBudget {
    /// Wraps a fresh ledger with the given byte limit.
    pub fn new(limit: Option<usize>) -> Self {
        SharedBudget {
            inner: Mutex::new(MemoryBudget::new(limit)),
            freed: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, MemoryBudget> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Admits one query on `key` and pins it: a cache hit is touched and
    /// pinned immediately; a miss reserves room at the size hint, waiting
    /// for concurrent pins to drain if the reservation cannot fit even
    /// after evicting every unpinned entry. Each successful admit must be
    /// paired with exactly one [`SharedBudget::settle`] or
    /// [`SharedBudget::abandon`].
    pub fn admit(&self, key: &ArtifactKey) -> Admission {
        let mut ledger = self.lock();
        // Lazily started on the first blocked iteration, so the
        // fast path (cache hit, or room available) records nothing.
        let mut wait_span: Option<PhaseTimer> = None;
        loop {
            if ledger.contains(key) {
                ledger.touch(key);
                ledger.pin(key);
                return Admission {
                    reserved: false,
                    evicted: Vec::new(),
                };
            }
            let hint = ledger.hint(key);
            if ledger.room_for(key, hint) {
                let evicted = ledger.reserve(key);
                ledger.pin(key);
                return Admission {
                    reserved: true,
                    evicted,
                };
            }
            wait_span.get_or_insert_with(|| PhaseTimer::start(Phase::BudgetAdmitWait));
            ledger = self.freed.wait(ledger).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Settles one admitted query: unpins `key`, then charges its actual
    /// `bytes`, waiting for concurrent pins to drain if the charge grew
    /// past what fits (unpinning *first* keeps concurrent settlers from
    /// deadlocking on each other). Returns the keys the caller must drop
    /// from their sessions.
    pub fn settle(&self, key: &ArtifactKey, bytes: usize) -> Vec<ArtifactKey> {
        let mut ledger = self.lock();
        ledger.unpin(key);
        let mut wait_span: Option<PhaseTimer> = None;
        while !ledger.room_for(key, bytes) {
            wait_span.get_or_insert_with(|| PhaseTimer::start(Phase::BudgetSettleWait));
            self.freed.notify_all();
            ledger = self.freed.wait(ledger).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        drop(wait_span);
        let evicted = ledger.charge(key.clone(), bytes);
        self.freed.notify_all();
        evicted
    }

    /// Abandons one admitted query — the failed-build / injected-fault
    /// path: unpins `key` and, if the admission reserved a provisional
    /// charge, releases it (the refund; the size hint survives for the
    /// retry).
    pub fn abandon(&self, key: &ArtifactKey, reserved: bool) {
        let mut ledger = self.lock();
        ledger.unpin(key);
        if reserved {
            ledger.release(key);
        }
        self.freed.notify_all();
    }

    /// Whether an eviction decided earlier should still be carried out:
    /// `false` if `key` was re-charged (re-admitted) since the decision,
    /// in which case dropping the artifact would destroy a live entry's
    /// backing memory.
    pub fn should_drop(&self, key: &ArtifactKey) -> bool {
        !self.lock().contains(key)
    }

    /// The configured limit.
    pub fn limit(&self) -> Option<usize> {
        self.lock().limit()
    }

    /// Currently tracked bytes.
    pub fn tracked_bytes(&self) -> usize {
        self.lock().tracked_bytes()
    }

    /// The high-water mark of tracked bytes.
    pub fn peak_bytes(&self) -> usize {
        self.lock().peak_bytes()
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions()
    }

    /// The charged artifacts and their byte sizes, sorted.
    pub fn ledger(&self) -> Vec<(ArtifactKey, usize)> {
        self.lock().ledger()
    }

    /// Number of entries currently pinned by in-flight queries.
    pub fn pinned_entries(&self) -> usize {
        self.lock().pinned_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(name: &str) -> ArtifactKey {
        ArtifactKey {
            threads: 2,
            vars: 1,
            kind: ArtifactKind::RunGraph(name.to_owned()),
        }
    }

    fn spec() -> ArtifactKey {
        ArtifactKey {
            threads: 2,
            vars: 2,
            kind: ArtifactKind::Spec(SafetyProperty::Opacity),
        }
    }

    #[test]
    fn lru_order_decides_the_victim() {
        let mut budget = MemoryBudget::new(Some(100));
        assert!(budget.charge(graph("a"), 40).is_empty());
        assert!(budget.charge(graph("b"), 40).is_empty());
        // Touching `a` makes `b` the LRU entry.
        budget.touch(&graph("a"));
        let evicted = budget.charge(graph("c"), 40);
        assert_eq!(evicted, vec![graph("b")]);
        assert_eq!(budget.tracked_bytes(), 80);
        assert_eq!(budget.evictions(), 1);
        assert!(budget.contains(&graph("a")) && budget.contains(&graph("c")));
    }

    #[test]
    fn peak_tracks_the_high_water_mark_under_the_limit() {
        let mut budget = MemoryBudget::new(Some(100));
        budget.charge(graph("a"), 70);
        budget.charge(graph("b"), 60); // evicts a
        budget.charge(spec(), 30);
        assert!(budget.peak_bytes() <= 100);
        assert_eq!(budget.peak_bytes(), 90);
        assert_eq!(budget.tracked_bytes(), 90);
    }

    #[test]
    fn reserve_uses_the_last_known_size() {
        let mut budget = MemoryBudget::new(Some(100));
        budget.charge(graph("a"), 80);
        budget.charge(graph("b"), 15); // fits alongside
        assert_eq!(budget.tracked_bytes(), 95);
        // `a` was evicted at some point and will be rebuilt: reserving it
        // must clear enough room for its known 80 bytes.
        let dropped = budget.charge(graph("c"), 90); // evicts a and b
        assert_eq!(dropped.len(), 2);
        assert_eq!(budget.hint(&graph("a")), 80);
        let evicted = budget.reserve(&graph("a"));
        assert_eq!(evicted, vec![graph("c")]);
        // The reservation itself is charged at the known 80 bytes.
        assert_eq!(budget.tracked_bytes(), 80);
        budget.charge(graph("a"), 80);
        assert_eq!(budget.tracked_bytes(), 80);
        assert!(budget.tracked_bytes() <= 100);
    }

    #[test]
    fn a_failed_build_releases_its_reservation() {
        let mut budget = MemoryBudget::new(Some(100));
        budget.charge(graph("a"), 80);
        budget.charge(graph("b"), 15);
        let before = budget.tracked_bytes();
        // A first-time build (no hint) reserves 0 bytes; failing it must
        // leave the ledger exactly as it was.
        assert!(budget.reserve(&graph("new")).is_empty());
        assert!(budget.release(&graph("new")));
        assert_eq!(budget.tracked_bytes(), before);
        assert_eq!(budget.len(), 2);
        // A rebuild reserves the last known size; failing it must give
        // the bytes back instead of tracking a phantom artifact.
        budget.charge(graph("c"), 90); // evicts a and b
        assert_eq!(budget.hint(&graph("a")), 80);
        let evicted = budget.reserve(&graph("a"));
        assert_eq!(evicted, vec![graph("c")]);
        assert_eq!(budget.tracked_bytes(), 80);
        assert!(budget.release(&graph("a")));
        assert_eq!(budget.tracked_bytes(), 0);
        assert!(!budget.release(&graph("a")), "double release is a no-op");
        // The hint survives the release, so a retry reserves real room.
        assert_eq!(budget.hint(&graph("a")), 80);
    }

    #[test]
    fn an_unbounded_ledger_never_evicts() {
        let mut budget = MemoryBudget::new(None);
        for i in 0..50 {
            assert!(budget.charge(graph(&format!("tm{i}")), 1 << 20).is_empty());
        }
        assert_eq!(budget.len(), 50);
        assert_eq!(budget.evictions(), 0);
        assert_eq!(budget.peak_bytes(), 50 << 20);
    }

    #[test]
    fn the_artifact_in_use_is_never_its_own_victim() {
        let mut budget = MemoryBudget::new(Some(10));
        // A single over-budget artifact stays charged (evicting it would
        // just force a rebuild for the query that is using it).
        assert!(budget.charge(graph("big"), 50).is_empty());
        assert_eq!(budget.tracked_bytes(), 50);
        // ... but it is the first to go when another query needs room.
        let evicted = budget.charge(graph("next"), 5);
        assert_eq!(evicted, vec![graph("big")]);
        assert_eq!(budget.tracked_bytes(), 5);
    }

    #[test]
    fn recharging_updates_bytes_in_place() {
        let mut budget = MemoryBudget::new(Some(100));
        budget.charge(spec(), 30);
        // A lazy spec cache grows as later queries touch more rows.
        budget.charge(spec(), 45);
        assert_eq!(budget.tracked_bytes(), 45);
        assert_eq!(budget.len(), 1);
        assert_eq!(budget.ledger(), vec![(spec(), 45)]);
    }

    #[test]
    fn pinned_entries_are_never_eviction_victims() {
        let mut budget = MemoryBudget::new(Some(100));
        budget.charge(graph("a"), 60);
        budget.charge(graph("b"), 30);
        budget.pin(&graph("a"));
        // `a` is the LRU entry, but pinned: `b` goes instead.
        let evicted = budget.charge(graph("c"), 40);
        assert_eq!(evicted, vec![graph("b")]);
        assert!(budget.contains(&graph("a")));
        assert!(budget.pinned(&graph("a")));
        // Unpinned, `a` is evictable again.
        budget.unpin(&graph("a"));
        assert!(!budget.pinned(&graph("a")));
        let evicted = budget.charge(graph("d"), 60);
        assert!(evicted.contains(&graph("a")), "{evicted:?}");
    }

    #[test]
    fn pins_nest_like_a_refcount() {
        let mut budget = MemoryBudget::new(Some(50));
        budget.charge(graph("a"), 40);
        budget.pin(&graph("a"));
        budget.pin(&graph("a"));
        budget.unpin(&graph("a"));
        assert!(budget.pinned(&graph("a")), "one pin remains");
        assert_eq!(budget.pinned_entries(), 1);
        // Still protected: the charge below cannot evict `a` and settles
        // over budget (the proviso), rather than destroying a live entry.
        let evicted = budget.charge(graph("b"), 40);
        assert!(evicted.is_empty());
        assert!(budget.contains(&graph("a")));
        budget.unpin(&graph("a"));
        assert_eq!(budget.pinned_entries(), 0);
        // Unpin below zero and unpin of an uncharged key are no-ops.
        budget.unpin(&graph("a"));
        budget.unpin(&graph("ghost"));
    }

    #[test]
    fn shared_admission_waits_for_pins_instead_of_overcommitting() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let budget = Arc::new(SharedBudget::new(Some(100)));
        // Query 1 holds a pin on a 70-byte artifact.
        let first = budget.admit(&graph("a"));
        assert!(first.reserved);
        // Its hint is 0 (first build), so the reservation fits; settle is
        // deferred — simulate a finished build charging 70 below. First,
        // seed the hint by settling once and re-admitting.
        budget.settle(&graph("a"), 70);
        let first = budget.admit(&graph("a"));
        assert!(!first.reserved, "second admit is a cache hit");

        // Query 2 needs 60 bytes (hint seeded the same way): it cannot
        // fit alongside the pinned 70, so admit must block until query 1
        // settles.
        {
            let mut ledger = budget.lock();
            ledger.hints.insert(graph("b"), 60);
        }
        let blocked = Arc::new(AtomicBool::new(true));
        let admitted = {
            let budget = Arc::clone(&budget);
            let blocked = Arc::clone(&blocked);
            std::thread::spawn(move || {
                let admission = budget.admit(&graph("b"));
                blocked.store(false, Ordering::SeqCst);
                budget.settle(&graph("b"), 60);
                admission.reserved
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            blocked.load(Ordering::SeqCst),
            "admission must wait while the pinned 70 bytes block the 60-byte reservation"
        );
        // Query 1 settles: the pin drains, query 2 gets in, `a` becomes
        // the eviction victim for `b`'s reservation.
        budget.settle(&graph("a"), 70);
        assert!(admitted.join().unwrap(), "query 2 reserved after the wait");
        let peak = budget.peak_bytes();
        assert!(peak <= 100, "peak {peak} exceeded the limit under contention");
        assert!(budget.tracked_bytes() <= 100);
    }

    #[test]
    fn shared_settle_unpins_before_waiting_so_settlers_drain_each_other() {
        // Two queries, each pinned, whose actual sizes together exceed
        // the limit: both settles must complete (one evicts the other),
        // never deadlock.
        let budget = std::sync::Arc::new(SharedBudget::new(Some(100)));
        let a = budget.admit(&graph("a"));
        let b = budget.admit(&graph("b"));
        assert!(a.reserved && b.reserved);
        let t = {
            let budget = std::sync::Arc::clone(&budget);
            std::thread::spawn(move || budget.settle(&graph("a"), 80))
        };
        let evicted_b = budget.settle(&graph("b"), 80);
        let evicted_a = t.join().unwrap();
        // Exactly one of the two survived; the ledger is under the limit.
        assert_eq!(evicted_a.len() + evicted_b.len(), 1, "{evicted_a:?} {evicted_b:?}");
        assert!(budget.tracked_bytes() <= 100);
        assert!(budget.peak_bytes() <= 100);
    }

    #[test]
    fn shared_abandon_refunds_the_reservation_under_pins() {
        let budget = SharedBudget::new(Some(100));
        budget.admit(&graph("a"));
        budget.settle(&graph("a"), 40);
        // A rebuild admission reserves at the hint...
        let evicted = budget.ledger();
        assert_eq!(evicted, vec![(graph("a"), 40)]);
        let admission = budget.admit(&graph("b"));
        assert!(admission.reserved);
        // ... and abandoning it (injected fault) refunds the bytes while
        // leaving the concurrent entry alone.
        budget.abandon(&graph("b"), admission.reserved);
        assert_eq!(budget.ledger(), vec![(graph("a"), 40)]);
        assert!(budget.should_drop(&graph("b")));
        assert!(!budget.should_drop(&graph("a")));
    }
}
