//! The artifact memory budget: an LRU ledger over the compiled artifacts
//! a service retains across queries, in the `heap_bytes()` accounting of
//! `tm-automata`.
//!
//! The ledger is deliberately decoupled from the sessions that own the
//! memory: it decides *which* artifact to evict and the service layer
//! performs the eviction ([`tm_checker::Verifier::drop_run_graph`] /
//! [`tm_checker::Verifier::drop_spec`]). The invariant it maintains is
//! about *retained* memory: between queries, the sum of tracked artifact
//! bytes never exceeds the budget (provided every single artifact fits —
//! an over-budget artifact is kept and re-evicted as soon as another
//! query needs room, since dropping the artifact a query is actively
//! using would only force an immediate rebuild). During a query, the
//! service pre-evicts with the artifact's last known size
//! ([`MemoryBudget::reserve`]) so rebuilds never hold two generations of
//! large artifacts at once; a first-time build of unknown size is charged
//! and settled immediately after it completes ([`MemoryBudget::charge`]).

use std::collections::HashMap;
use std::fmt;

use tm_lang::SafetyProperty;

/// What a ledger entry pays for.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ArtifactKind {
    /// A TM's compiled run graph (key: the full TM name).
    RunGraph(String),
    /// The specification artifacts of one safety property (lazy interned
    /// rows and/or eager compiled DFA, summed).
    Spec(SafetyProperty),
}

/// Ledger key: an artifact within one instance size's session.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ArtifactKey {
    /// Threads `n` of the owning session.
    pub threads: usize,
    /// Variables `k` of the owning session.
    pub vars: usize,
    /// Which artifact.
    pub kind: ArtifactKind,
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ArtifactKind::RunGraph(name) => {
                write!(f, "({},{})/run-graph/{name}", self.threads, self.vars)
            }
            ArtifactKind::Spec(property) => write!(
                f,
                "({},{})/spec/{}",
                self.threads,
                self.vars,
                property.short_name()
            ),
        }
    }
}

struct Entry {
    bytes: usize,
    last_used: u64,
}

/// The LRU byte ledger (see the module docs for the retained-memory
/// invariant).
///
/// # Examples
///
/// ```
/// use tm_service::{ArtifactKey, ArtifactKind, MemoryBudget};
///
/// let key = |name: &str| ArtifactKey {
///     threads: 2,
///     vars: 1,
///     kind: ArtifactKind::RunGraph(name.to_owned()),
/// };
/// let mut budget = MemoryBudget::new(Some(100));
/// assert!(budget.charge(key("a"), 60).is_empty());
/// // Charging past the limit evicts the least recently used entry.
/// let evicted = budget.charge(key("b"), 60);
/// assert_eq!(evicted, vec![key("a")]);
/// assert_eq!(budget.tracked_bytes(), 60);
/// assert!(budget.peak_bytes() <= 100);
/// ```
pub struct MemoryBudget {
    limit: Option<usize>,
    entries: HashMap<ArtifactKey, Entry>,
    /// Last observed size per key — survives eviction, so a rebuild can
    /// pre-reserve its room.
    hints: HashMap<ArtifactKey, usize>,
    clock: u64,
    tracked: usize,
    peak: usize,
    evictions: u64,
}

impl MemoryBudget {
    /// Creates a ledger with the given byte limit (`None` = unbounded).
    pub fn new(limit: Option<usize>) -> Self {
        MemoryBudget {
            limit,
            entries: HashMap::new(),
            hints: HashMap::new(),
            clock: 0,
            tracked: 0,
            peak: 0,
            evictions: 0,
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Whether `key` is currently charged.
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Marks `key` as just used (moves it to the MRU end).
    pub fn touch(&mut self, key: &ArtifactKey) {
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(key) {
            entry.last_used = self.clock;
        }
    }

    /// The last observed size of `key`, whether or not it is currently
    /// charged (0 if never charged).
    pub fn hint(&self, key: &ArtifactKey) -> usize {
        self.hints.get(key).copied().unwrap_or(0)
    }

    /// Makes room for an upcoming (re)build of `key` and charges it
    /// *provisionally* at its last known size: evicts LRU entries until
    /// the tracked total (including the provisional charge) fits the
    /// limit, so two queries racing through the service cannot both
    /// believe the same headroom is theirs. Returns the keys the caller
    /// must now actually drop from their sessions.
    ///
    /// A successful build settles the provisional charge with
    /// [`MemoryBudget::charge`]; a build that fails or aborts **must**
    /// call [`MemoryBudget::release`], or the phantom bytes stay tracked
    /// forever and shrink the budget for every later query.
    pub fn reserve(&mut self, key: &ArtifactKey) -> Vec<ArtifactKey> {
        let hint = self.hint(key);
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.tracked = self.tracked - entry.bytes + hint;
                entry.bytes = hint;
                entry.last_used = self.clock;
            }
            None => {
                self.entries.insert(
                    key.clone(),
                    Entry {
                        bytes: hint,
                        last_used: self.clock,
                    },
                );
                self.tracked += hint;
            }
        }
        let evicted = self.evict_while_over(0, Some(key));
        self.peak = self.peak.max(self.tracked);
        evicted
    }

    /// Releases `key`'s charge — the settle path for a build that failed
    /// or aborted after [`MemoryBudget::reserve`]. Returns whether the
    /// key was charged. The size hint survives, so a retry reserves the
    /// same room.
    pub fn release(&mut self, key: &ArtifactKey) -> bool {
        match self.entries.remove(key) {
            Some(entry) => {
                self.tracked -= entry.bytes;
                true
            }
            None => false,
        }
    }

    /// Charges (or re-charges) `key` at `bytes`, marks it most recently
    /// used, and settles the ledger back under the limit by evicting LRU
    /// entries — never `key` itself. Returns the keys the caller must
    /// drop.
    pub fn charge(&mut self, key: ArtifactKey, bytes: usize) -> Vec<ArtifactKey> {
        self.clock += 1;
        self.hints.insert(key.clone(), bytes);
        match self.entries.get_mut(&key) {
            Some(entry) => {
                self.tracked = self.tracked - entry.bytes + bytes;
                entry.bytes = bytes;
                entry.last_used = self.clock;
            }
            None => {
                self.entries.insert(
                    key.clone(),
                    Entry {
                        bytes,
                        last_used: self.clock,
                    },
                );
                self.tracked += bytes;
            }
        }
        let evicted = self.evict_while_over(0, Some(&key));
        self.peak = self.peak.max(self.tracked);
        evicted
    }

    /// Evicts LRU entries while `tracked + headroom` exceeds the limit,
    /// never evicting `exclude`. Stops (leaving the ledger over budget)
    /// when nothing evictable remains.
    fn evict_while_over(&mut self, headroom: usize, exclude: Option<&ArtifactKey>) -> Vec<ArtifactKey> {
        let Some(limit) = self.limit else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        while self.tracked + headroom > limit {
            let victim = self
                .entries
                .iter()
                .filter(|(key, _)| Some(*key) != exclude)
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone());
            let Some(victim) = victim else { break };
            let entry = self.entries.remove(&victim).expect("victim is charged");
            self.tracked -= entry.bytes;
            self.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Currently tracked bytes.
    pub fn tracked_bytes(&self) -> usize {
        self.tracked
    }

    /// The high-water mark of tracked bytes over the ledger's lifetime,
    /// sampled whenever a charge settles.
    pub fn peak_bytes(&self) -> usize {
        self.peak
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of charged artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is charged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The charged artifacts and their byte sizes, sorted by key display
    /// (hash order is not deterministic).
    pub fn ledger(&self) -> Vec<(ArtifactKey, usize)> {
        let mut entries: Vec<(ArtifactKey, usize)> = self
            .entries
            .iter()
            .map(|(key, entry)| (key.clone(), entry.bytes))
            .collect();
        entries.sort_by_cached_key(|(key, _)| key.to_string());
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(name: &str) -> ArtifactKey {
        ArtifactKey {
            threads: 2,
            vars: 1,
            kind: ArtifactKind::RunGraph(name.to_owned()),
        }
    }

    fn spec() -> ArtifactKey {
        ArtifactKey {
            threads: 2,
            vars: 2,
            kind: ArtifactKind::Spec(SafetyProperty::Opacity),
        }
    }

    #[test]
    fn lru_order_decides_the_victim() {
        let mut budget = MemoryBudget::new(Some(100));
        assert!(budget.charge(graph("a"), 40).is_empty());
        assert!(budget.charge(graph("b"), 40).is_empty());
        // Touching `a` makes `b` the LRU entry.
        budget.touch(&graph("a"));
        let evicted = budget.charge(graph("c"), 40);
        assert_eq!(evicted, vec![graph("b")]);
        assert_eq!(budget.tracked_bytes(), 80);
        assert_eq!(budget.evictions(), 1);
        assert!(budget.contains(&graph("a")) && budget.contains(&graph("c")));
    }

    #[test]
    fn peak_tracks_the_high_water_mark_under_the_limit() {
        let mut budget = MemoryBudget::new(Some(100));
        budget.charge(graph("a"), 70);
        budget.charge(graph("b"), 60); // evicts a
        budget.charge(spec(), 30);
        assert!(budget.peak_bytes() <= 100);
        assert_eq!(budget.peak_bytes(), 90);
        assert_eq!(budget.tracked_bytes(), 90);
    }

    #[test]
    fn reserve_uses_the_last_known_size() {
        let mut budget = MemoryBudget::new(Some(100));
        budget.charge(graph("a"), 80);
        budget.charge(graph("b"), 15); // fits alongside
        assert_eq!(budget.tracked_bytes(), 95);
        // `a` was evicted at some point and will be rebuilt: reserving it
        // must clear enough room for its known 80 bytes.
        let dropped = budget.charge(graph("c"), 90); // evicts a and b
        assert_eq!(dropped.len(), 2);
        assert_eq!(budget.hint(&graph("a")), 80);
        let evicted = budget.reserve(&graph("a"));
        assert_eq!(evicted, vec![graph("c")]);
        // The reservation itself is charged at the known 80 bytes.
        assert_eq!(budget.tracked_bytes(), 80);
        budget.charge(graph("a"), 80);
        assert_eq!(budget.tracked_bytes(), 80);
        assert!(budget.tracked_bytes() <= 100);
    }

    #[test]
    fn a_failed_build_releases_its_reservation() {
        let mut budget = MemoryBudget::new(Some(100));
        budget.charge(graph("a"), 80);
        budget.charge(graph("b"), 15);
        let before = budget.tracked_bytes();
        // A first-time build (no hint) reserves 0 bytes; failing it must
        // leave the ledger exactly as it was.
        assert!(budget.reserve(&graph("new")).is_empty());
        assert!(budget.release(&graph("new")));
        assert_eq!(budget.tracked_bytes(), before);
        assert_eq!(budget.len(), 2);
        // A rebuild reserves the last known size; failing it must give
        // the bytes back instead of tracking a phantom artifact.
        budget.charge(graph("c"), 90); // evicts a and b
        assert_eq!(budget.hint(&graph("a")), 80);
        let evicted = budget.reserve(&graph("a"));
        assert_eq!(evicted, vec![graph("c")]);
        assert_eq!(budget.tracked_bytes(), 80);
        assert!(budget.release(&graph("a")));
        assert_eq!(budget.tracked_bytes(), 0);
        assert!(!budget.release(&graph("a")), "double release is a no-op");
        // The hint survives the release, so a retry reserves real room.
        assert_eq!(budget.hint(&graph("a")), 80);
    }

    #[test]
    fn an_unbounded_ledger_never_evicts() {
        let mut budget = MemoryBudget::new(None);
        for i in 0..50 {
            assert!(budget.charge(graph(&format!("tm{i}")), 1 << 20).is_empty());
        }
        assert_eq!(budget.len(), 50);
        assert_eq!(budget.evictions(), 0);
        assert_eq!(budget.peak_bytes(), 50 << 20);
    }

    #[test]
    fn the_artifact_in_use_is_never_its_own_victim() {
        let mut budget = MemoryBudget::new(Some(10));
        // A single over-budget artifact stays charged (evicting it would
        // just force a rebuild for the query that is using it).
        assert!(budget.charge(graph("big"), 50).is_empty());
        assert_eq!(budget.tracked_bytes(), 50);
        // ... but it is the first to go when another query needs room.
        let evicted = budget.charge(graph("next"), 5);
        assert_eq!(evicted, vec![graph("big")]);
        assert_eq!(budget.tracked_bytes(), 5);
    }

    #[test]
    fn recharging_updates_bytes_in_place() {
        let mut budget = MemoryBudget::new(Some(100));
        budget.charge(spec(), 30);
        // A lazy spec cache grows as later queries touch more rows.
        budget.charge(spec(), 45);
        assert_eq!(budget.tracked_bytes(), 45);
        assert_eq!(budget.len(), 1);
        assert_eq!(budget.ledger(), vec![(spec(), 45)]);
    }
}
