//! `tm-query` — CLI client for a running `tm-serve` daemon.
//!
//! ```bash
//! tm-query --addr HOST:PORT [--json] QUERY...   # answer a batch
//! tm-query --addr HOST:PORT --stats             # print service counters
//! tm-query --addr HOST:PORT --shutdown          # stop the daemon
//! ```
//!
//! Each `QUERY` is the shorthand `tm[+cm]:property:n:k`, e.g.
//! `dstm+aggressive:of:2:1` or `TL2:ss:2:2` (properties: `ss`, `op`,
//! `of`, `lf`, `wf`). Results print as an aligned table; `--json` dumps
//! the raw response body, `--verdicts` prints one stable
//! `name:property:n:k verdict [witness]` line per query (for diffing
//! runs against each other). Exits non-zero on connection errors,
//! non-200 responses, or malformed queries.
//!
//! Retry knobs:
//!
//! * `--retries N` — retry transport failures and retryable HTTP
//!   statuses (429/503/504) up to N times with exponential backoff and
//!   seeded jitter, honoring server `Retry-After` hints;
//! * `--backoff-seed S` — jitter seed (default 0), so CI runs are
//!   reproducible;
//! * `--deadline-ms MS` — whole-batch deadline shipped in the request;
//!   the server sheds queries past it as `aborted: deadline`.

use std::process::ExitCode;
use std::time::Duration;

use tm_service::client::{is_retryable_status, Backoff};
use tm_service::wire::{decode_results, encode_batch_request};
use tm_service::{http_request_full, QueryOutcome, QuerySpec};

fn usage() -> &'static str {
    "usage: tm-query --addr HOST:PORT [--json | --verdicts] [--retries N] \
     [--backoff-seed S] [--deadline-ms MS] QUERY...\n       \
     tm-query --addr HOST:PORT --stats | --shutdown\n       \
     QUERY = tm[+cm]:property:n:k (e.g. dstm+aggressive:of:2:1, TL2:ss:2:2)"
}

struct Retry {
    attempts: u64,
    backoff: Backoff,
}

/// Sends one request, retrying retryable failures per the policy.
fn request(
    retry: &mut Retry,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut attempt = 0u32;
    loop {
        let outcome = http_request_full(addr, method, path, body);
        let (retryable, retry_after) = match &outcome {
            // Transport errors (refused, reset, timeout) are retryable:
            // the daemon may still be starting or mid-drain.
            Err(_) => (true, None),
            Ok((status, _, retry_after)) => (is_retryable_status(*status), *retry_after),
        };
        if !retryable || u64::from(attempt) >= retry.attempts {
            return outcome.map(|(status, body, _)| (status, body));
        }
        let delay = retry.backoff.delay_ms(attempt, retry_after);
        eprintln!(
            "tm-query: attempt {} failed ({}), retrying in {delay} ms",
            attempt + 1,
            match &outcome {
                Err(e) => e.clone(),
                Ok((status, _, _)) => format!("HTTP {status}"),
            }
        );
        std::thread::sleep(Duration::from_millis(delay));
        attempt += 1;
    }
}

fn run() -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut json = false;
    let mut verdicts = false;
    let mut stats = false;
    let mut shutdown = false;
    let mut retries = 0u64;
    let mut backoff_seed = 0u64;
    let mut deadline_ms: Option<u64> = None;
    let mut queries = Vec::new();
    let mut args = std::env::args().skip(1);
    let value_of = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(value_of(&mut args, "--addr")?),
            "--json" => json = true,
            "--verdicts" => verdicts = true,
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "--retries" => {
                retries = value_of(&mut args, "--retries")?
                    .parse()
                    .map_err(|e| format!("bad --retries: {e}"))?
            }
            "--backoff-seed" => {
                backoff_seed = value_of(&mut args, "--backoff-seed")?
                    .parse()
                    .map_err(|e| format!("bad --backoff-seed: {e}"))?
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    value_of(&mut args, "--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("bad --deadline-ms: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            query => queries.push(QuerySpec::parse(query)?),
        }
    }
    let addr = addr.ok_or_else(|| format!("--addr is required\n{}", usage()))?;
    let mut retry = Retry {
        attempts: retries,
        backoff: Backoff::new(backoff_seed),
    };

    if stats {
        let (status, body) = request(&mut retry, &addr, "GET", "/v1/stats", None)?;
        println!("{body}");
        return check(status);
    }
    if shutdown {
        let (status, body) = request(&mut retry, &addr, "POST", "/v1/shutdown", None)?;
        println!("{body}");
        return check(status);
    }
    if queries.is_empty() {
        return Err(format!("nothing to do\n{}", usage()));
    }

    let body = encode_batch_request(&queries, deadline_ms);
    let (status, body) = request(&mut retry, &addr, "POST", "/v1/batch", Some(&body))?;
    check(status).map_err(|e| format!("{e}: {body}"))?;
    if json {
        println!("{body}");
        return Ok(());
    }
    let (results, stats) = decode_results(&body).map_err(|e| e.to_string())?;
    if verdicts {
        for result in &results {
            let (verdict, witness) = describe(&result.outcome);
            let witness = if witness.is_empty() {
                String::new()
            } else {
                format!(" {witness}")
            };
            println!(
                "{}:{}:{}:{} {verdict}{witness}",
                result.name, result.spec.property, result.spec.threads, result.spec.vars
            );
        }
        return Ok(());
    }
    let mut table = tm_checker::Table::new(
        format!("tm-serve @ {addr}"),
        ["TM", "property", "(n,k)", "verdict", "states", "artifact", "counterexample"],
    );
    for result in &results {
        let (verdict, witness) = describe(&result.outcome);
        let artifact = if result.rebuilt {
            "rebuilt"
        } else if result.cached {
            "cached"
        } else {
            "built"
        };
        table.push_row([
            result.name.clone(),
            result.spec.property.to_string(),
            format!("({},{})", result.spec.threads, result.spec.vars),
            verdict,
            result.states.to_string(),
            artifact.to_owned(),
            witness,
        ]);
    }
    println!("{table}");
    println!(
        "service: {} queries, {} hits, {} builds ({} rebuilds), {} aborted, {} evictions, \
         {} tracked bytes (peak {})",
        stats.queries,
        stats.cache_hits,
        stats.artifact_builds,
        stats.artifact_rebuilds,
        stats.aborted_queries,
        stats.evictions,
        stats.tracked_bytes,
        stats.peak_tracked_bytes
    );
    Ok(())
}

fn describe(outcome: &QueryOutcome) -> (String, String) {
    match outcome {
        QueryOutcome::Verified => ("Y".to_owned(), String::new()),
        QueryOutcome::SafetyViolation { word } => ("N".to_owned(), word.clone()),
        QueryOutcome::LivenessViolation { notation, .. } => ("N".to_owned(), notation.clone()),
        QueryOutcome::Aborted { reason } => (format!("aborted:{reason}"), String::new()),
    }
}

fn check(status: u16) -> Result<(), String> {
    if status == 200 {
        Ok(())
    } else {
        Err(format!("server answered HTTP {status}"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("tm-query: {message}");
            ExitCode::from(2)
        }
    }
}
