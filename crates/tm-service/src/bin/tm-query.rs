//! `tm-query` — CLI client for a running `tm-serve` daemon.
//!
//! ```bash
//! tm-query --addr HOST:PORT [--json] QUERY...   # answer a batch
//! tm-query --addr HOST:PORT --trace QUERY...    # + per-query phase trace
//! tm-query --addr HOST:PORT --stats             # print service counters
//! tm-query --addr HOST:PORT --metrics           # fetch + summarize /metrics
//! tm-query --addr HOST:PORT --profile [--seconds N]  # folded-stack profile
//! tm-query --addr HOST:PORT --events [--cursor N]    # lifecycle event journal
//! tm-query --addr HOST:PORT --shutdown          # stop the daemon
//! ```
//!
//! Each `QUERY` is the shorthand `tm[+cm]:property:n:k`, e.g.
//! `dstm+aggressive:of:2:1` or `TL2:ss:2:2` (properties: `ss`, `op`,
//! `of`, `lf`, `wf`). Results print as an aligned table; `--json` dumps
//! the raw response body, `--verdicts` prints one stable
//! `name:property:n:k verdict [witness]` line per query (for diffing
//! runs against each other). Exits non-zero on connection errors,
//! non-200 responses, or malformed queries. Against a daemon with a
//! persistent store (`tm-serve --store-dir`), the batch footer adds a
//! `store:` line with the promote/demote and hit/miss counters.
//!
//! Observability knobs:
//!
//! * `--trace` — ask the server for per-query phase traces and print a
//!   phase-breakdown table after the results. Exits non-zero if the
//!   server answered without traces (e.g. it runs `TM_OBS=off`);
//! * `--metrics` — fetch `GET /metrics`, check it parses as Prometheus
//!   text, and print a one-line-per-series summary (`--json` prints the
//!   raw exposition instead);
//! * `--require NAME` (repeatable, with `--metrics`) — exit non-zero
//!   unless series `NAME` is present, for CI assertions;
//! * `--profile` — fetch `GET /v1/profile?seconds=N` (`--seconds`,
//!   default 1) and print the folded stacks the server's sampling
//!   profiler collected over that window — flamegraph-ready, one
//!   `thread;frame;... count` line per stack;
//! * `--events` — fetch `GET /v1/events?cursor=N` (`--cursor`, default
//!   0: the oldest retained event) and print the server's lifecycle
//!   journal — build/evict/demote/promote/abort/admission-wait events
//!   with request ids — plus the `next_cursor` to tail from;
//! * `--request-id ID` — ship `X-Request-Id: ID` so the server's log
//!   line and response echo it.
//!
//! Retry knobs:
//!
//! * `--retries N` — retry transport failures and retryable HTTP
//!   statuses (429/503/504) up to N times with exponential backoff and
//!   seeded jitter, honoring server `Retry-After` hints;
//! * `--backoff-seed S` — jitter seed (default 0), so CI runs are
//!   reproducible;
//! * `--deadline-ms MS` — whole-batch deadline shipped in the request;
//!   the server sheds queries past it as `aborted: deadline`.

use std::process::ExitCode;
use std::time::Duration;

use tm_obs::Phase;
use tm_service::client::{is_retryable_status, Backoff};
use tm_service::wire::{decode_results, encode_batch_request_traced};
use tm_service::{http_request_with_id, QueryOutcome, QuerySpec};

fn usage() -> &'static str {
    "usage: tm-query --addr HOST:PORT [--json | --verdicts] [--trace] [--retries N] \
     [--backoff-seed S] [--deadline-ms MS] [--request-id ID] QUERY...\n       \
     tm-query --addr HOST:PORT --stats | --shutdown | --metrics [--require NAME]... \
     | --profile [--seconds N] | --events [--cursor N]\n       \
     QUERY = tm[+cm]:property:n:k (e.g. dstm+aggressive:of:2:1, TL2:ss:2:2)"
}

struct Retry {
    attempts: u64,
    backoff: Backoff,
    request_id: Option<String>,
}

/// Sends one request, retrying retryable failures per the policy.
fn request(
    retry: &mut Retry,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut attempt = 0u32;
    loop {
        let outcome =
            http_request_with_id(addr, method, path, body, retry.request_id.as_deref());
        let (retryable, retry_after) = match &outcome {
            // Transport errors (refused, reset, timeout) are retryable:
            // the daemon may still be starting or mid-drain.
            Err(_) => (true, None),
            Ok((status, _, retry_after)) => (is_retryable_status(*status), *retry_after),
        };
        if !retryable || u64::from(attempt) >= retry.attempts {
            return outcome.map(|(status, body, _)| (status, body));
        }
        let delay = retry.backoff.delay_ms(attempt, retry_after);
        eprintln!(
            "tm-query: attempt {} failed ({}), retrying in {delay} ms",
            attempt + 1,
            match &outcome {
                Err(e) => e.clone(),
                Ok((status, _, _)) => format!("HTTP {status}"),
            }
        );
        std::thread::sleep(Duration::from_millis(delay));
        attempt += 1;
    }
}

fn run() -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut json = false;
    let mut verdicts = false;
    let mut stats = false;
    let mut shutdown = false;
    let mut metrics = false;
    let mut profile = false;
    let mut seconds = 1u64;
    let mut events = false;
    let mut cursor = 0u64;
    let mut trace = false;
    let mut required_series: Vec<String> = Vec::new();
    let mut request_id: Option<String> = None;
    let mut retries = 0u64;
    let mut backoff_seed = 0u64;
    let mut deadline_ms: Option<u64> = None;
    let mut queries = Vec::new();
    let mut args = std::env::args().skip(1);
    let value_of = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(value_of(&mut args, "--addr")?),
            "--json" => json = true,
            "--verdicts" => verdicts = true,
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "--metrics" => metrics = true,
            "--profile" => profile = true,
            "--seconds" => {
                seconds = value_of(&mut args, "--seconds")?
                    .parse()
                    .map_err(|e| format!("bad --seconds: {e}"))?
            }
            "--events" => events = true,
            "--cursor" => {
                cursor = value_of(&mut args, "--cursor")?
                    .parse()
                    .map_err(|e| format!("bad --cursor: {e}"))?
            }
            "--trace" => trace = true,
            "--require" => required_series.push(value_of(&mut args, "--require")?),
            "--request-id" => request_id = Some(value_of(&mut args, "--request-id")?),
            "--retries" => {
                retries = value_of(&mut args, "--retries")?
                    .parse()
                    .map_err(|e| format!("bad --retries: {e}"))?
            }
            "--backoff-seed" => {
                backoff_seed = value_of(&mut args, "--backoff-seed")?
                    .parse()
                    .map_err(|e| format!("bad --backoff-seed: {e}"))?
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    value_of(&mut args, "--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("bad --deadline-ms: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            query => queries.push(QuerySpec::parse(query)?),
        }
    }
    let addr = addr.ok_or_else(|| format!("--addr is required\n{}", usage()))?;
    let mut retry = Retry {
        attempts: retries,
        backoff: Backoff::new(backoff_seed),
        request_id,
    };

    if stats {
        let (status, body) = request(&mut retry, &addr, "GET", "/v1/stats", None)?;
        println!("{body}");
        return check(status);
    }
    if metrics {
        let (status, body) = request(&mut retry, &addr, "GET", "/metrics", None)?;
        check(status)?;
        return print_metrics(&body, json, &required_series);
    }
    if profile {
        let path = format!("/v1/profile?seconds={seconds}");
        let (status, body) = request(&mut retry, &addr, "GET", &path, None)?;
        check(status)?;
        if body.trim().is_empty() {
            eprintln!(
                "tm-query: the profile window caught no samples \
                 (is the server running TM_OBS=off, or simply idle?)"
            );
        }
        print!("{body}");
        return Ok(());
    }
    if events {
        let path = format!("/v1/events?cursor={cursor}");
        let (status, body) = request(&mut retry, &addr, "GET", &path, None)?;
        println!("{body}");
        return check(status);
    }
    if shutdown {
        let (status, body) = request(&mut retry, &addr, "POST", "/v1/shutdown", None)?;
        println!("{body}");
        return check(status);
    }
    if queries.is_empty() {
        return Err(format!("nothing to do\n{}", usage()));
    }

    let body = encode_batch_request_traced(&queries, deadline_ms, trace);
    let (status, body) = request(&mut retry, &addr, "POST", "/v1/batch", Some(&body))?;
    check(status).map_err(|e| format!("{e}: {body}"))?;
    if json {
        println!("{body}");
        return Ok(());
    }
    let (results, stats) = decode_results(&body).map_err(|e| e.to_string())?;
    if trace {
        let missing: Vec<&str> = results
            .iter()
            .filter(|r| r.trace.is_none())
            .map(|r| r.name.as_str())
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "trace requested but the server answered without one for: {} \
                 (is it running with TM_OBS=off?)",
                missing.join(", ")
            ));
        }
    }
    if verdicts {
        for result in &results {
            let (verdict, witness) = describe(&result.outcome);
            let witness = if witness.is_empty() {
                String::new()
            } else {
                format!(" {witness}")
            };
            println!(
                "{}:{}:{}:{} {verdict}{witness}",
                result.name, result.spec.property, result.spec.threads, result.spec.vars
            );
        }
        return Ok(());
    }
    let mut table = tm_checker::Table::new(
        format!("tm-serve @ {addr}"),
        ["TM", "property", "(n,k)", "verdict", "states", "artifact", "counterexample"],
    );
    for result in &results {
        let (verdict, witness) = describe(&result.outcome);
        let artifact = if result.rebuilt {
            "rebuilt"
        } else if result.cached {
            "cached"
        } else {
            "built"
        };
        table.push_row([
            result.name.clone(),
            result.spec.property.to_string(),
            format!("({},{})", result.spec.threads, result.spec.vars),
            verdict,
            result.states.to_string(),
            artifact.to_owned(),
            witness,
        ]);
    }
    println!("{table}");
    println!(
        "service: {} queries, {} hits, {} builds ({} rebuilds), {} aborted, {} evictions, \
         {} tracked bytes (peak {})",
        stats.queries,
        stats.cache_hits,
        stats.artifact_builds,
        stats.artifact_rebuilds,
        stats.aborted_queries,
        stats.evictions,
        stats.tracked_bytes,
        stats.peak_tracked_bytes
    );
    // The storage-tier line appears only when the server has a store
    // (any store counter or file implies one).
    if stats.store_files > 0
        || stats.store_hits + stats.store_misses + stats.store_saves + stats.store_corrupt > 0
    {
        println!(
            "store: {} promotes, {} demotes, {} hits, {} misses, {} saves, {} corrupt, \
             {} files ({} bytes)",
            stats.store_promotes,
            stats.store_demotes,
            stats.store_hits,
            stats.store_misses,
            stats.store_saves,
            stats.store_corrupt,
            stats.store_files,
            stats.store_bytes
        );
    }
    if trace {
        print_trace_table(&results);
    }
    Ok(())
}

/// Prints the per-query phase breakdown, one row per (query, phase)
/// with nonzero time, plus a per-query total and drop count.
fn print_trace_table(results: &[tm_service::QueryResult]) {
    let mut table = tm_checker::Table::new(
        "phase breakdown".to_owned(),
        ["TM", "property", "(n,k)", "phase", "ms", "events"],
    );
    for result in results {
        let Some(trace) = &result.trace else { continue };
        for phase in Phase::ALL {
            let ns = trace.phase_ns[phase as usize];
            if ns == 0 {
                continue;
            }
            let events = trace.events.iter().filter(|e| e.phase == phase).count();
            table.push_row([
                result.name.clone(),
                result.spec.property.to_string(),
                format!("({},{})", result.spec.threads, result.spec.vars),
                phase.name().to_owned(),
                format!("{:.3}", ns as f64 / 1e6),
                events.to_string(),
            ]);
        }
        table.push_row([
            result.name.clone(),
            result.spec.property.to_string(),
            format!("({},{})", result.spec.threads, result.spec.vars),
            "total".to_owned(),
            format!("{:.3}", trace.total_ns() as f64 / 1e6),
            if trace.dropped_events > 0 {
                format!("{} (+{} dropped)", trace.events.len(), trace.dropped_events)
            } else {
                trace.events.len().to_string()
            },
        ]);
    }
    println!("{table}");
}

/// Validates and prints a `/metrics` exposition: parse (histogram
/// invariants included), assert every `--require` series exists, then
/// dump raw (`--json`) or one aligned `name{labels} value` line per
/// sample — histogram buckets are summarized by their `_sum`/`_count`
/// lines (the raw dump keeps them).
fn print_metrics(body: &str, json: bool, required: &[String]) -> Result<(), String> {
    let exposition =
        tm_obs::text::parse_prometheus(body).map_err(|e| format!("bad /metrics exposition: {e}"))?;
    let missing: Vec<&str> = required
        .iter()
        .map(String::as_str)
        .filter(|name| !exposition.has_series(name))
        .collect();
    if !missing.is_empty() {
        return Err(format!("missing required series: {}", missing.join(", ")));
    }
    if json {
        print!("{body}");
        return Ok(());
    }
    let mut table = tm_checker::Table::new(
        format!("{} samples, {} series types", exposition.samples.len(), exposition.types.len()),
        ["series", "value"],
    );
    for sample in &exposition.samples {
        if sample.name.ends_with("_bucket") {
            continue;
        }
        let name = if sample.labels.is_empty() {
            sample.name.clone()
        } else {
            let labels: Vec<String> =
                sample.labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
            format!("{}{{{}}}", sample.name, labels.join(","))
        };
        table.push_row([name, format!("{}", sample.value)]);
    }
    println!("{table}");
    Ok(())
}

fn describe(outcome: &QueryOutcome) -> (String, String) {
    match outcome {
        QueryOutcome::Verified => ("Y".to_owned(), String::new()),
        QueryOutcome::SafetyViolation { word } => ("N".to_owned(), word.clone()),
        QueryOutcome::LivenessViolation { notation, .. } => ("N".to_owned(), notation.clone()),
        QueryOutcome::Aborted { reason } => (format!("aborted:{reason}"), String::new()),
    }
}

fn check(status: u16) -> Result<(), String> {
    if status == 200 {
        Ok(())
    } else {
        Err(format!("server answered HTTP {status}"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("tm-query: {message}");
            ExitCode::from(2)
        }
    }
}
