//! `tm-query` — CLI client for a running `tm-serve` daemon.
//!
//! ```bash
//! tm-query --addr HOST:PORT [--json] QUERY...   # answer a batch
//! tm-query --addr HOST:PORT --stats             # print service counters
//! tm-query --addr HOST:PORT --shutdown          # stop the daemon
//! ```
//!
//! Each `QUERY` is the shorthand `tm[+cm]:property:n:k`, e.g.
//! `dstm+aggressive:of:2:1` or `TL2:ss:2:2` (properties: `ss`, `op`,
//! `of`, `lf`, `wf`). Results print as an aligned table; `--json` dumps
//! the raw response body instead. Exits non-zero on connection errors,
//! non-200 responses, or malformed queries.

use std::process::ExitCode;

use tm_service::wire::{decode_results, encode_batch};
use tm_service::{http_request, QueryOutcome, QuerySpec};

fn usage() -> &'static str {
    "usage: tm-query --addr HOST:PORT [--json] QUERY...\n       \
     tm-query --addr HOST:PORT --stats | --shutdown\n       \
     QUERY = tm[+cm]:property:n:k (e.g. dstm+aggressive:of:2:1, TL2:ss:2:2)"
}

fn run() -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut json = false;
    let mut stats = false;
    let mut shutdown = false;
    let mut queries = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = Some(args.next().ok_or_else(|| format!("--addr needs a value\n{}", usage()))?)
            }
            "--json" => json = true,
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            query => queries.push(QuerySpec::parse(query)?),
        }
    }
    let addr = addr.ok_or_else(|| format!("--addr is required\n{}", usage()))?;

    if stats {
        let (status, body) = http_request(&addr, "GET", "/v1/stats", None)?;
        println!("{body}");
        return check(status);
    }
    if shutdown {
        let (status, body) = http_request(&addr, "POST", "/v1/shutdown", None)?;
        println!("{body}");
        return check(status);
    }
    if queries.is_empty() {
        return Err(format!("nothing to do\n{}", usage()));
    }

    let (status, body) = http_request(&addr, "POST", "/v1/batch", Some(&encode_batch(&queries)))?;
    check(status).map_err(|e| format!("{e}: {body}"))?;
    if json {
        println!("{body}");
        return Ok(());
    }
    let (results, stats) = decode_results(&body).map_err(|e| e.to_string())?;
    let mut table = tm_checker::Table::new(
        format!("tm-serve @ {addr}"),
        ["TM", "property", "(n,k)", "verdict", "states", "artifact", "counterexample"],
    );
    for result in &results {
        let (verdict, witness) = match &result.outcome {
            QueryOutcome::Verified => ("Y".to_owned(), String::new()),
            QueryOutcome::SafetyViolation { word } => ("N".to_owned(), word.clone()),
            QueryOutcome::LivenessViolation { notation, .. } => ("N".to_owned(), notation.clone()),
        };
        let artifact = if result.rebuilt {
            "rebuilt"
        } else if result.cached {
            "cached"
        } else {
            "built"
        };
        table.push_row([
            result.name.clone(),
            result.spec.property.to_string(),
            format!("({},{})", result.spec.threads, result.spec.vars),
            verdict,
            result.states.to_string(),
            artifact.to_owned(),
            witness,
        ]);
    }
    println!("{table}");
    println!(
        "service: {} queries, {} hits, {} builds ({} rebuilds), {} evictions, \
         {} tracked bytes (peak {})",
        stats.queries,
        stats.cache_hits,
        stats.artifact_builds,
        stats.artifact_rebuilds,
        stats.evictions,
        stats.tracked_bytes,
        stats.peak_tracked_bytes
    );
    Ok(())
}

fn check(status: u16) -> Result<(), String> {
    if status == 200 {
        Ok(())
    } else {
        Err(format!("server answered HTTP {status}"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("tm-query: {message}");
            ExitCode::from(2)
        }
    }
}
