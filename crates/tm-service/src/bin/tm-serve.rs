//! `tm-serve` — the verification daemon: binds a TCP address, serves the
//! HTTP/JSON endpoint over an in-process [`tm_service::Service`], and
//! exits cleanly on `POST /v1/shutdown`.
//!
//! ```bash
//! tm-serve [--addr 127.0.0.1:0] [--pool N] [--mem-budget BYTES[k|m|g]]
//!          [--max-states N] [--port-file PATH] [--max-inflight N]
//!          [--query-deadline-ms MS] [--batch-deadline-ms MS]
//!          [--store-dir PATH] [--store-cap BYTES[k|m|g]] [--profile]
//! ```
//!
//! With port 0 the OS picks an ephemeral port; the bound address is
//! printed on the first stdout line (and written to `--port-file` if
//! given) so scripts can discover it. The memory budget defaults to the
//! `TM_SERVICE_MEM_BUDGET` environment variable; `--mem-budget`
//! overrides it. The pool size defaults to `TM_MODELCHECK_THREADS`.
//!
//! Persistence (flags override the `TM_STORE_DIR` and `TM_STORE_CAP`
//! environment variables): `--store-dir` keeps compiled artifacts in a
//! content-addressed on-disk store — budget evictions demote to disk
//! instead of discarding, re-queries promote the verified copy back
//! instead of rebuilding, and a restarted daemon warm-starts from the
//! directory with zero rebuilds. `--store-cap` bounds the directory's
//! bytes with the store's own LRU.
//!
//! Robustness knobs (flags override the `TM_SERVICE_MAX_INFLIGHT`,
//! `TM_SERVICE_QUERY_DEADLINE_MS`, and `TM_SERVICE_BATCH_DEADLINE_MS`
//! environment variables; 0 disables): `--max-inflight` bounds
//! concurrently admitted batches (excess answered 429),
//! `--query-deadline-ms` bounds each query's wall clock,
//! `--batch-deadline-ms` bounds a whole batch — expired work comes back
//! as `aborted` results, never a hung daemon.
//!
//! Observability knobs (environment only; see the crate README's
//! Observability section for the metric and phase inventory):
//!
//! * `GET /metrics` always serves the Prometheus text exposition;
//! * `TM_OBS=off` (or `0`) disables phase timers and per-query traces
//!   (cheap counters stay on) — `trace: true` requests then come back
//!   without traces;
//! * `TM_LOG=json` emits one structured JSON log line per HTTP request
//!   (with its `X-Request-Id`) to stderr;
//! * `TM_SLOW_QUERY_MS=N` logs any query slower than N ms to stderr,
//!   even with `TM_LOG` unset;
//! * `--profile` (or `TM_PROFILE=1`) starts the ~97 Hz sampling
//!   profiler at boot, so the first `GET /v1/profile` scrape already
//!   has history; without it the sampler starts lazily on the first
//!   scrape. `GET /v1/sessions`, `/v1/store`, and `/v1/events` expose
//!   per-session counters, the store's LRU listing, and the lifecycle
//!   event journal.

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use tm_service::{parse_mem_budget, serve, Service, ServiceConfig};

fn usage() -> &'static str {
    "usage: tm-serve [--addr HOST:PORT] [--pool N] [--mem-budget BYTES[k|m|g]] \
     [--max-states N] [--port-file PATH] [--max-inflight N] \
     [--query-deadline-ms MS] [--batch-deadline-ms MS] \
     [--store-dir PATH] [--store-cap BYTES[k|m|g]] [--profile]"
}

fn run() -> Result<(), String> {
    let mut addr = "127.0.0.1:0".to_owned();
    let mut port_file: Option<String> = None;
    let mut profile = matches!(std::env::var("TM_PROFILE").as_deref(), Ok("1") | Ok("on"));
    let mut config = ServiceConfig::from_env()?;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--port-file" => port_file = Some(value("--port-file")?),
            "--pool" => {
                config.pool_size = value("--pool")?
                    .parse()
                    .map_err(|e| format!("bad --pool: {e}"))?;
            }
            "--mem-budget" => config.mem_budget = parse_mem_budget(&value("--mem-budget")?)?,
            "--max-inflight" => {
                config.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("bad --max-inflight: {e}"))?;
            }
            "--query-deadline-ms" => {
                let ms: u64 = value("--query-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("bad --query-deadline-ms: {e}"))?;
                config.query_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--batch-deadline-ms" => {
                let ms: u64 = value("--batch-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("bad --batch-deadline-ms: {e}"))?;
                config.batch_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-states" => {
                config.max_states = value("--max-states")?
                    .parse()
                    .map_err(|e| format!("bad --max-states: {e}"))?;
            }
            "--store-dir" => {
                let dir = value("--store-dir")?;
                config.store_dir = (!dir.is_empty()).then(|| dir.into());
            }
            "--store-cap" => {
                config.store_cap =
                    parse_mem_budget(&value("--store-cap")?)?.map(|bytes| bytes as u64);
            }
            "--profile" => profile = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }

    let listener = TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    println!(
        "tm-serve listening on {local} (pool={}, budget={}, max-states={}, store={})",
        config.pool_size,
        config
            .mem_budget
            .map_or("unbounded".to_owned(), |b| format!("{b} bytes")),
        config.max_states,
        config
            .store_dir
            .as_deref()
            .map_or("none".to_owned(), |dir| dir.display().to_string()),
    );
    std::io::stdout().flush().ok();
    if let Some(path) = port_file {
        std::fs::write(&path, local.to_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    if profile {
        tm_obs::start_sampler();
    }
    let service = Arc::new(Service::try_new(config)?);
    let served = serve(listener, Arc::clone(&service)).map_err(|e| format!("serve: {e}"))?;
    let stats = service.stats();
    println!(
        "tm-serve shut down cleanly: {} connections, {} queries ({} hits, {} builds, \
         {} rebuilds, {} aborted, {} evictions, peak {} tracked bytes, \
         store {} promotes / {} demotes)",
        served,
        stats.queries,
        stats.cache_hits,
        stats.artifact_builds,
        stats.artifact_rebuilds,
        stats.aborted_queries,
        stats.evictions,
        stats.peak_tracked_bytes,
        stats.store_promotes,
        stats.store_demotes
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("tm-serve: {message}");
            ExitCode::from(2)
        }
    }
}
