//! The batch scheduler: orders a query batch to maximize artifact reuse
//! before the service executes it.
//!
//! Within a batch, queries are grouped by **instance size** first (each
//! size is one session), then safety before liveness, then:
//!
//! * safety queries by **property** — every TM checked against the same
//!   property shares one specification artifact, so all of a property's
//!   queries run back-to-back while it is resident;
//! * liveness queries by **TM** — one compiled run graph answers all
//!   three properties, so a TM's properties run back-to-back while its
//!   graph is resident.
//!
//! The sort is stable: queries in the same group keep their request
//! order, and results are always returned in request order regardless of
//! execution order. Under a tight memory budget this grouping is what
//! turns "evict on every query" into "build each artifact once per
//! batch".

use crate::budget::{ArtifactKey, ArtifactKind};
use crate::roster::{PropertyKind, QuerySpec};

impl QuerySpec {
    /// The ledger key of the artifact this query needs: the TM's run
    /// graph for a liveness query, the property's specification for a
    /// safety query.
    pub fn artifact_key(&self) -> ArtifactKey {
        ArtifactKey {
            threads: self.threads,
            vars: self.vars,
            kind: match self.property {
                PropertyKind::Safety(property) => ArtifactKind::Spec(property),
                PropertyKind::Liveness(_) => ArtifactKind::RunGraph(self.tm_name()),
            },
        }
    }
}

/// The order the service executes `batch` in, as indices into it (see
/// the module docs for the grouping). Results are still delivered in
/// request order.
pub fn execution_order(batch: &[QuerySpec]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..batch.len()).collect();
    // Cached: the key allocates a String, and `sort_by_key` would
    // re-evaluate it on every comparison.
    order.sort_by_cached_key(|&i| {
        let q = &batch[i];
        let (kind, group) = match q.property {
            PropertyKind::Safety(_) => (0u8, q.property.code().to_owned()),
            PropertyKind::Liveness(_) => (1u8, q.tm_name()),
        };
        (q.threads, q.vars, kind, group)
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::{table2_batch, table3_batch};

    #[test]
    fn order_groups_by_instance_then_artifact() {
        // Interleave the two paper tables query by query: the scheduler
        // must untangle them back into artifact-contiguous runs.
        let mut batch = Vec::new();
        let (t2, t3) = (table2_batch(), table3_batch());
        for i in 0..t3.len() {
            batch.push(t3[i].clone());
            if i < t2.len() {
                batch.push(t2[i].clone());
            }
        }
        let order = execution_order(&batch);
        let keys: Vec<ArtifactKey> = order.iter().map(|&i| batch[i].artifact_key()).collect();
        // Each artifact appears in exactly one contiguous run.
        let mut seen = Vec::new();
        for key in &keys {
            match seen.last() {
                Some(last) if last == key => {}
                _ => {
                    assert!(!seen.contains(key), "artifact revisited: {key}");
                    seen.push(key.clone());
                }
            }
        }
        // 2 specs at (2,2) + 4 run graphs at (2,1).
        assert_eq!(seen.len(), 6);
        // Results-in-request-order is the caller's job; the order is a
        // permutation.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..batch.len()).collect::<Vec<_>>());
    }

    #[test]
    fn ties_keep_request_order() {
        // Queries sharing an artifact are ties: the stable sort must not
        // reorder the three properties of one TM.
        let batch: Vec<QuerySpec> = table3_batch()
            .into_iter()
            .filter(|q| q.tm_name() == "dstm+aggressive")
            .collect();
        assert_eq!(batch.len(), 3);
        assert_eq!(execution_order(&batch), vec![0, 1, 2]);
    }
}
