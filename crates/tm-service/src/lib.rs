//! # tm-service — the memory-budgeted verification service
//!
//! The serving layer of the *tm-modelcheck* workspace: a long-running
//! daemon answering the paper's verification queries (any TM ×
//! contention manager × property × instance size from the roster)
//! behind the `tm_checker::Verifier` session API, under a configurable
//! artifact memory budget.
//!
//! ```text
//!            tm-query ── HTTP/JSON ──▶ tm-serve (http.rs)
//!                                          │
//!                                   Service (service.rs)
//!                     ┌────────────────────┼────────────────────┐
//!              batch scheduler       memory budget       session registry
//!              (scheduler.rs)         (budget.rs)          (registry.rs)
//!              orders queries        LRU ledger over      one `Verifier`
//!              for artifact          heap_bytes(),        per (n, k), all
//!              reuse                 evict + rebuild      on one WorkerPool
//! ```
//!
//! * the **session registry** ([`SessionRegistry`]) lazily creates one
//!   [`tm_checker::Verifier`] per instance size, all multiplexing one
//!   shared [`tm_automata::WorkerPool`] — each session behind its own
//!   mutex, so concurrent batches on different instance sizes overlap;
//! * the **memory budget** ([`MemoryBudget`], shared concurrently as
//!   [`SharedBudget`]) charges every compiled artifact (per-TM run
//!   graphs, per-property specifications) against a byte limit using the
//!   `heap_bytes()` accounting of `tm-automata`, evicts
//!   least-recently-used artifacts once the queries using them are
//!   answered — in-flight artifacts are *pinned* and never victims —
//!   and lets the sessions transparently rebuild on re-query (rebuilds
//!   are counted, verdicts are bit-identical — pinned by
//!   `tests/session_eviction.rs` at the session layer,
//!   `tests/service_conformance.rs` here, and
//!   `tests/concurrent_conformance.rs` under concurrent submission);
//! * the **batch scheduler** ([`execution_order`]) reorders each batch
//!   to maximize artifact reuse (group by instance size, then safety
//!   queries by property, liveness queries by TM) while returning
//!   results in request order;
//! * the **endpoints**: the in-process [`Service`] API, and the
//!   std-`TcpListener` HTTP/JSON server (`tm-serve` bin, [`serve`]) with
//!   its [`Json`] wire format and `tm-query` CLI client;
//! * the **storage tier**: with a store directory configured
//!   ([`STORE_DIR_ENV`] / `tm-serve --store-dir`), artifacts persist in
//!   a content-addressed on-disk store (`tm-store`) — budget evictions
//!   *demote* to disk instead of discarding, a re-query *promotes* the
//!   verified on-disk copy back instead of rebuilding, and a restarted
//!   daemon warm-starts its sessions from the directory with zero
//!   rebuilds.
//!
//! The budget is configured via the `TM_SERVICE_MEM_BUDGET` environment
//! variable ([`ServiceConfig::from_env`]); the pool inherits
//! `TM_MODELCHECK_THREADS`.
//!
//! # Examples
//!
//! Answer the paper's Table 3 under a 1 MiB artifact budget:
//!
//! ```
//! use tm_service::{table3_batch, Service, ServiceConfig};
//!
//! let service = Service::new(ServiceConfig {
//!     mem_budget: Some(1 << 20),
//!     pool_size: 1,
//!     ..ServiceConfig::default()
//! });
//! let results = service.submit(&table3_batch());
//! assert_eq!(results.len(), 12);
//! // dstm+aggressive is obstruction free (Table 3 row 3).
//! let dstm_of = results.iter().find(|r| r.name == "dstm+aggressive").unwrap();
//! assert!(dstm_of.holds);
//! assert!(service.stats().peak_tracked_bytes <= 1 << 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
pub mod client;
mod http;
mod registry;
mod roster;
mod scheduler;
mod service;
pub mod wire;

pub use budget::{Admission, ArtifactKey, ArtifactKind, MemoryBudget, SharedBudget};
pub use client::{is_retryable_status, Backoff};
pub use http::{http_request, http_request_full, http_request_with_id, serve};
pub use registry::{lock_session, SessionRegistry, SharedSession};
pub use roster::{
    run_query, table2_batch, table3_batch, CmKind, PropertyKind, QuerySpec, TmKind,
    MAX_QUERY_THREADS, MAX_QUERY_VARS,
};
pub use scheduler::execution_order;
pub use tm_automata::{CancelToken, EngineError};
pub use service::{
    parse_mem_budget, LatencyQuantiles, QueryOutcome, QueryResult, Service, ServiceConfig,
    ServiceStats, SessionInfo, BATCH_DEADLINE_ENV, DEFAULT_MAX_INFLIGHT,
    DEFAULT_SERVICE_MAX_STATES, MAX_INFLIGHT_ENV, MEM_BUDGET_ENV, QUERY_DEADLINE_ENV,
    STORE_CAP_ENV, STORE_DIR_ENV,
};
pub use wire::Json;
