//! The session registry: one lazily created [`Verifier`] per instance
//! size `(n, k)`, all multiplexing one shared [`WorkerPool`].
//!
//! A `Verifier` owns per-instance artifact caches, so a service facing
//! queries at many instance sizes needs one per size — but spawning a
//! worker pool per session would oversubscribe the host as soon as two
//! sessions exist. The registry therefore spawns **one** pool at
//! construction and attaches it to every session it creates
//! ([`Verifier::shared_pool`]); the scheduler above runs one query at a
//! time, so the pool is never contended between sessions.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use tm_automata::WorkerPool;
use tm_checker::Verifier;

/// Registry of per-instance-size sessions over one shared pool.
pub struct SessionRegistry {
    sessions: HashMap<(usize, usize), Verifier>,
    pool: Option<Arc<WorkerPool>>,
    pool_size: usize,
    max_states: usize,
    query_deadline: Option<Duration>,
}

impl SessionRegistry {
    /// Creates a registry whose sessions run parallel regions on a
    /// shared pool of `pool_size` workers (1 = the deterministic
    /// sequential engines, no pool spawned), bounding every state space
    /// at `max_states`.
    pub fn new(pool_size: usize, max_states: usize) -> Self {
        let pool_size = pool_size.max(1);
        SessionRegistry {
            sessions: HashMap::new(),
            pool: (pool_size > 1).then(|| Arc::new(WorkerPool::new(pool_size))),
            pool_size,
            max_states,
            query_deadline: None,
        }
    }

    /// Sets the per-query wall-clock deadline every session created
    /// from here on runs under (`None` = no deadline). Sessions already
    /// created keep their deadline, so configure this before the first
    /// [`SessionRegistry::session`] call.
    pub fn query_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.query_deadline = deadline;
        self
    }

    /// The session for instance size `(threads, vars)`, created on first
    /// use.
    pub fn session(&mut self, threads: usize, vars: usize) -> &mut Verifier {
        let (pool, max_states) = (&self.pool, self.max_states);
        let deadline = self.query_deadline;
        self.sessions.entry((threads, vars)).or_insert_with(|| {
            let mut verifier = Verifier::new(threads, vars).max_states(max_states);
            if let Some(deadline) = deadline {
                verifier = verifier.deadline(deadline);
            }
            match pool {
                Some(pool) => verifier.shared_pool(Arc::clone(pool)),
                None => verifier.pool_size(1),
            }
        })
    }

    /// The shared pool's worker count (1 = sequential).
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Number of sessions created so far.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` if no session was created yet.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The sessions' instance sizes, sorted.
    pub fn instance_sizes(&self) -> Vec<(usize, usize)> {
        let mut sizes: Vec<(usize, usize)> = self.sessions.keys().copied().collect();
        sizes.sort_unstable();
        sizes
    }

    /// Sum of every session's estimated artifact heap bytes — the ground
    /// truth the budget ledger approximates.
    pub fn artifact_heap_bytes(&self) -> usize {
        self.sessions.values().map(Verifier::artifact_heap_bytes).sum()
    }

    /// Total artifact builds across sessions (spec + run graph).
    pub fn total_builds(&self) -> usize {
        self.sessions
            .values()
            .map(|s| s.spec_builds() + s.run_graph_builds())
            .sum()
    }

    /// Total artifact *re*builds across sessions — builds forced by an
    /// eviction.
    pub fn total_rebuilds(&self) -> usize {
        self.sessions
            .values()
            .map(|s| s.spec_rebuilds() + s.run_graph_rebuilds())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_lang::LivenessProperty;

    use crate::roster::{run_query, QuerySpec};

    #[test]
    fn sessions_are_created_lazily_and_keyed_by_size() {
        let mut registry = SessionRegistry::new(1, 1_000_000);
        assert!(registry.is_empty());
        let spec21 = QuerySpec::parse("dstm+aggressive:of:2:1").unwrap();
        let spec22 = QuerySpec::parse("sequential:op:2:2").unwrap();
        assert!(run_query(registry.session(2, 1), &spec21).holds());
        assert!(run_query(registry.session(2, 2), &spec22).holds());
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.instance_sizes(), vec![(2, 1), (2, 2)]);
        assert_eq!(registry.total_builds(), 2);
        assert!(registry.artifact_heap_bytes() > 0);
    }

    #[test]
    fn sessions_share_the_registry_pool() {
        let mut registry = SessionRegistry::new(4, 1_000_000);
        let spec = QuerySpec {
            property: crate::PropertyKind::Liveness(LivenessProperty::WaitFreedom),
            ..QuerySpec::parse("2PL:of:2:1").unwrap()
        };
        let verdict = run_query(registry.session(2, 1), &spec);
        // The query ran at the shared pool's width without the session
        // spawning its own pool.
        assert_eq!(verdict.stats.pool_size, 4);
        assert_eq!(registry.session(2, 1).configured_pool_size(), 4);
    }
}
