//! The session registry: one lazily created [`Verifier`] per instance
//! size `(n, k)`, all multiplexing one shared [`WorkerPool`].
//!
//! A `Verifier` owns per-instance artifact caches, so a service facing
//! queries at many instance sizes needs one per size — but spawning a
//! worker pool per session would oversubscribe the host as soon as two
//! sessions exist. The registry therefore spawns **one** pool at
//! construction and attaches it to every session it creates
//! ([`Verifier::shared_pool`]).
//!
//! Concurrency: the map itself sits behind an `RwLock` whose critical
//! sections only *resolve or create* sessions — never run queries — and
//! each session sits behind its own `Mutex`, so batches touching
//! different instance sizes overlap while queries on one session
//! serialize (which is also what makes artifact builds single-flight
//! per key). The pool is safe to share: each `run_batch` call carries
//! its own completion state, so concurrent sessions simply interleave
//! their jobs on the one queue. Lock hierarchy: registry → session →
//! budget ledger; the registry lock is never held while a session lock
//! is being waited on with the ledger held.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Duration;

use tm_automata::WorkerPool;
use tm_checker::Verifier;

/// A shared, independently lockable session (see [`lock_session`]).
pub type SharedSession = Arc<Mutex<Verifier>>;

/// Locks one session, recovering from a poisoned mutex (a panicked
/// query — e.g. an injected panic fault — must not wedge every later
/// query on the same instance size; sessions hold no invariants a
/// completed query can break mid-update, artifacts are rebuilt on
/// demand).
pub fn lock_session(session: &SharedSession) -> MutexGuard<'_, Verifier> {
    session.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Registry of per-instance-size sessions over one shared pool.
pub struct SessionRegistry {
    sessions: RwLock<HashMap<(usize, usize), SharedSession>>,
    pool: Option<Arc<WorkerPool>>,
    pool_size: usize,
    max_states: usize,
    query_deadline: Option<Duration>,
}

impl SessionRegistry {
    /// Creates a registry whose sessions run parallel regions on a
    /// shared pool of `pool_size` workers (1 = the deterministic
    /// sequential engines, no pool spawned), bounding every state space
    /// at `max_states`.
    pub fn new(pool_size: usize, max_states: usize) -> Self {
        let pool_size = pool_size.max(1);
        SessionRegistry {
            sessions: RwLock::new(HashMap::new()),
            pool: (pool_size > 1).then(|| Arc::new(WorkerPool::new(pool_size))),
            pool_size,
            max_states,
            query_deadline: None,
        }
    }

    /// Sets the per-query wall-clock deadline every session created
    /// from here on runs under (`None` = no deadline). Sessions already
    /// created keep their deadline, so configure this before the first
    /// [`SessionRegistry::session`] call.
    pub fn query_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.query_deadline = deadline;
        self
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<(usize, usize), SharedSession>> {
        self.sessions.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The session for instance size `(threads, vars)`, created on first
    /// use. Only resolves the `Arc` — callers lock the session
    /// themselves ([`lock_session`]), so two batches on different
    /// instance sizes run their queries concurrently.
    pub fn session(&self, threads: usize, vars: usize) -> SharedSession {
        if let Some(session) = self.read().get(&(threads, vars)) {
            return Arc::clone(session);
        }
        let mut sessions = self.sessions.write().unwrap_or_else(|poisoned| poisoned.into_inner());
        let session = sessions.entry((threads, vars)).or_insert_with(|| {
            let mut verifier = Verifier::new(threads, vars).max_states(self.max_states);
            if let Some(deadline) = self.query_deadline {
                verifier = verifier.deadline(deadline);
            }
            let verifier = match &self.pool {
                Some(pool) => verifier.shared_pool(Arc::clone(pool)),
                None => verifier.pool_size(1),
            };
            Arc::new(Mutex::new(verifier))
        });
        Arc::clone(session)
    }

    /// The shared pool's worker count (1 = sequential).
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Number of sessions created so far.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// `true` if no session was created yet.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// The sessions' instance sizes, sorted.
    pub fn instance_sizes(&self) -> Vec<(usize, usize)> {
        let mut sizes: Vec<(usize, usize)> = self.read().keys().copied().collect();
        sizes.sort_unstable();
        sizes
    }

    /// Sum of every session's estimated artifact heap bytes — the ground
    /// truth the budget ledger approximates. Locks each session briefly
    /// in turn; a snapshot, not an atomic cross-session reading.
    pub fn artifact_heap_bytes(&self) -> usize {
        self.read()
            .values()
            .map(|s| lock_session(s).artifact_heap_bytes())
            .sum()
    }

    /// Total artifact builds across sessions (spec + run graph).
    pub fn total_builds(&self) -> usize {
        self.read()
            .values()
            .map(|s| {
                let s = lock_session(s);
                s.spec_builds() + s.run_graph_builds()
            })
            .sum()
    }

    /// Total artifact *re*builds across sessions — builds forced by an
    /// eviction.
    pub fn total_rebuilds(&self) -> usize {
        self.read()
            .values()
            .map(|s| {
                let s = lock_session(s);
                s.spec_rebuilds() + s.run_graph_rebuilds()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_lang::LivenessProperty;

    use crate::roster::{run_query, QuerySpec};

    #[test]
    fn sessions_are_created_lazily_and_keyed_by_size() {
        let registry = SessionRegistry::new(1, 1_000_000);
        assert!(registry.is_empty());
        let spec21 = QuerySpec::parse("dstm+aggressive:of:2:1").unwrap();
        let spec22 = QuerySpec::parse("sequential:op:2:2").unwrap();
        assert!(run_query(&mut lock_session(&registry.session(2, 1)), &spec21).holds());
        assert!(run_query(&mut lock_session(&registry.session(2, 2)), &spec22).holds());
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.instance_sizes(), vec![(2, 1), (2, 2)]);
        assert_eq!(registry.total_builds(), 2);
        assert!(registry.artifact_heap_bytes() > 0);
    }

    #[test]
    fn sessions_share_the_registry_pool() {
        let registry = SessionRegistry::new(4, 1_000_000);
        let spec = QuerySpec {
            property: crate::PropertyKind::Liveness(LivenessProperty::WaitFreedom),
            ..QuerySpec::parse("2PL:of:2:1").unwrap()
        };
        let verdict = run_query(&mut lock_session(&registry.session(2, 1)), &spec);
        // The query ran at the shared pool's width without the session
        // spawning its own pool.
        assert_eq!(verdict.stats.pool_size, 4);
        assert_eq!(lock_session(&registry.session(2, 1)).configured_pool_size(), 4);
    }

    #[test]
    fn the_same_arc_is_handed_to_concurrent_resolvers() {
        let registry = Arc::new(SessionRegistry::new(1, 1_000_000));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || registry.session(2, 1))
            })
            .collect();
        let sessions: Vec<SharedSession> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(registry.len(), 1, "one session for one instance size");
        for pair in sessions.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
    }
}
