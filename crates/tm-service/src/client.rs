//! Client-side retry policy: exponential backoff with deterministic
//! seeded jitter, honoring server `Retry-After` hints.
//!
//! The `tm-query` binary retries transport failures and the retryable
//! HTTP statuses (429, 503, 504) through a [`Backoff`]; the jitter comes
//! from the workspace's seedable `rand` shim, so a fixed seed produces a
//! fixed schedule — which is what the backoff-schedule tests and the CI
//! chaos smoke pin.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// First-retry delay (doubles each attempt).
pub const DEFAULT_BACKOFF_BASE_MS: u64 = 100;

/// Ceiling on the exponential part of the delay.
pub const DEFAULT_BACKOFF_CAP_MS: u64 = 5_000;

/// `true` for HTTP statuses a client should retry: 429 (shed by
/// admission control), 503 (draining, panicked worker, injected fault),
/// 504 (batch deadline expired). Everything else — including 422, the
/// non-retryable state-limit abort — is final.
pub fn is_retryable_status(status: u16) -> bool {
    matches!(status, 429 | 503 | 504)
}

/// Exponential backoff with seeded jitter.
///
/// Attempt `i` (0-based) sleeps `min(base << i, cap) + jitter` where
/// `jitter` is uniform in `[0, delay/2]`, floored by any server
/// `Retry-After` (seconds). Deterministic for a fixed seed.
#[derive(Clone, Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    rng: StdRng,
}

impl Backoff {
    /// A schedule with the default base/cap and `seed` for the jitter.
    pub fn new(seed: u64) -> Self {
        Backoff::with_bounds(seed, DEFAULT_BACKOFF_BASE_MS, DEFAULT_BACKOFF_CAP_MS)
    }

    /// A schedule with explicit base and cap (milliseconds).
    pub fn with_bounds(seed: u64, base_ms: u64, cap_ms: u64) -> Self {
        Backoff {
            base_ms,
            cap_ms,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The delay before retry number `attempt` (0-based), in
    /// milliseconds. `retry_after_secs` is the server's `Retry-After`
    /// hint, which floors the computed delay.
    pub fn delay_ms(&mut self, attempt: u32, retry_after_secs: Option<u64>) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(attempt.min(32)).unwrap_or(u64::MAX))
            .min(self.cap_ms);
        let jitter = if exp == 0 {
            0
        } else {
            // Drawn in u64 end to end: a detour through usize would
            // truncate the span on 32-bit targets and bias the jitter.
            self.rng.gen_range_u64(0..exp / 2 + 1)
        };
        exp.saturating_add(jitter)
            .max(retry_after_secs.unwrap_or(0).saturating_mul(1_000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_schedule_is_deterministic_for_a_seed() {
        let mut a = Backoff::new(7);
        let mut b = Backoff::new(7);
        let first: Vec<u64> = (0..6).map(|i| a.delay_ms(i, None)).collect();
        let second: Vec<u64> = (0..6).map(|i| b.delay_ms(i, None)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn delays_double_up_to_the_cap_with_bounded_jitter() {
        let mut backoff = Backoff::with_bounds(1, 100, 1_000);
        for attempt in 0..12 {
            let exp = (100u64 << attempt.min(10)).min(1_000);
            let delay = backoff.delay_ms(attempt, None);
            assert!(delay >= exp, "attempt {attempt}: {delay} < {exp}");
            assert!(delay <= exp + exp / 2, "attempt {attempt}: {delay} too jittered");
        }
    }

    #[test]
    fn retry_after_floors_the_delay() {
        let mut backoff = Backoff::with_bounds(3, 100, 1_000);
        let delay = backoff.delay_ms(0, Some(10));
        assert!(delay >= 10_000);
        // Without the hint the same attempt stays near the base.
        let mut fresh = Backoff::with_bounds(3, 100, 1_000);
        assert!(fresh.delay_ms(0, None) <= 150);
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let mut backoff = Backoff::new(0);
        let delay = backoff.delay_ms(u32::MAX, None);
        assert!(delay <= DEFAULT_BACKOFF_CAP_MS + DEFAULT_BACKOFF_CAP_MS / 2);
    }

    #[test]
    fn jitter_is_drawn_in_u64_even_for_huge_delays() {
        // A cap whose jitter span exceeds u32::MAX: the old
        // usize-detour draw would truncate this on 32-bit targets.
        let cap = u64::MAX / 4;
        let mut backoff = Backoff::with_bounds(5, cap, cap);
        let mut saw_wide_jitter = false;
        for attempt in 0..32 {
            let delay = backoff.delay_ms(attempt, None);
            assert!(delay >= cap && delay <= cap + cap / 2);
            if delay - cap > u64::from(u32::MAX) {
                saw_wide_jitter = true;
            }
        }
        assert!(saw_wide_jitter, "jitter never exceeded 32 bits");
    }

    #[test]
    fn retryable_statuses_are_exactly_the_overload_codes() {
        assert!(is_retryable_status(429));
        assert!(is_retryable_status(503));
        assert!(is_retryable_status(504));
        assert!(!is_retryable_status(200));
        assert!(!is_retryable_status(400));
        assert!(!is_retryable_status(422));
    }
}
