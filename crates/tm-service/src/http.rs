//! A minimal HTTP/1.1 server and client over `std::net` — just enough
//! protocol for the service's JSON endpoint, with zero dependencies (the
//! shims spirit: offline, in-repo, the API subset this workspace needs).
//!
//! ## Server routes
//!
//! | Method | Path           | Body                | Response                       |
//! |--------|----------------|---------------------|--------------------------------|
//! | GET    | `/healthz`     | —                   | `{"ok": true}`                 |
//! | GET    | `/v1/stats`    | —                   | [`crate::wire::encode_stats`]  |
//! | POST   | `/v1/batch`    | batch request JSON  | [`crate::wire::encode_results`]|
//! | POST   | `/v1/shutdown` | —                   | `{"ok": true}` then clean exit |
//!
//! Connections are one-request (`Connection: close`), each handled on
//! its own thread; the [`Service`] behind the mutex answers batches one
//! at a time (queries inside a batch still fan out on the shared worker
//! pool). The accept loop polls a shutdown flag, so `POST /v1/shutdown`
//! drains in-flight connections and returns from [`serve`] — the clean
//! shutdown the CI smoke asserts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::service::Service;
use crate::wire;

/// Upper bound on request bodies (16 MiB — a batch of millions of
/// queries; anything larger is a client bug).
const MAX_BODY_BYTES: usize = 16 << 20;

/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(60);

/// Runs the accept loop on `listener` until a `POST /v1/shutdown`
/// arrives, then joins every connection thread and returns the number of
/// connections served.
///
/// # Errors
///
/// Propagates fatal listener errors (transient per-connection I/O errors
/// only terminate that connection).
pub fn serve(listener: TcpListener, service: Arc<Mutex<Service>>) -> std::io::Result<u64> {
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut served = 0u64;
    loop {
        // Checked every iteration — not only when idle — so a busy
        // daemon cannot be kept alive past /v1/shutdown by a stream of
        // new connections.
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                served += 1;
                // Reap finished connection threads so a long-running
                // daemon does not accumulate one handle per request.
                handles.retain(|handle| !handle.is_finished());
                let service = Arc::clone(&service);
                let shutdown = Arc::clone(&shutdown);
                handles.push(std::thread::spawn(move || {
                    // Connection-level errors are the client's problem.
                    let _ = handle_connection(stream, &service, &shutdown);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(served)
}

fn handle_connection(
    stream: TcpStream,
    service: &Arc<Mutex<Service>>,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let (method, path, body) = match read_request(&mut reader) {
        Ok(request) => request,
        Err(e) => {
            let body = format!("{{\"error\": \"bad request: {e}\"}}");
            return write_response(reader.get_mut(), 400, &body);
        }
    };
    let (status, body) = route(&method, &path, &body, service, shutdown);
    write_response(reader.get_mut(), status, &body)
}

/// Reads one request: the request line, the headers (only
/// `Content-Length` is interpreted), and the body.
fn read_request<R: BufRead>(reader: &mut R) -> Result<(String, String, String), String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_owned();
    let path = parts.next().ok_or("request line has no path")?.to_owned();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("headers: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad Content-Length: {e}"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body of {content_length} bytes exceeds the limit"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body: {e}"))?;
    String::from_utf8(body).map(|body| (method, path, body)).map_err(|_| "body is not UTF-8".to_owned())
}

fn route(
    method: &str,
    path: &str,
    body: &str,
    service: &Arc<Mutex<Service>>,
    shutdown: &AtomicBool,
) -> (u16, String) {
    let locked = |f: &mut dyn FnMut(&mut Service) -> (u16, String)| {
        let mut service = service.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        f(&mut service)
    };
    match (method, path) {
        ("GET", "/healthz") => (200, "{\"ok\": true}".to_owned()),
        ("GET", "/v1/stats") => locked(&mut |service| (200, wire::encode_stats(&service.stats()))),
        ("POST", "/v1/batch") => match wire::decode_batch(body) {
            Err(e) => (400, format!("{{\"error\": {}}}", crate::wire::Json::Str(e.to_string()))),
            Ok(batch) => locked(&mut |service| {
                let results = service.submit(&batch);
                (200, wire::encode_results(&results, &service.stats()))
            }),
        },
        ("POST", "/v1/shutdown") => {
            shutdown.store(true, Ordering::SeqCst);
            (200, "{\"ok\": true, \"shutting_down\": true}".to_owned())
        }
        _ => (404, format!("{{\"error\": \"no route {method} {path}\"}}")),
    }
}

fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// One-shot HTTP client request (the `tm-query` side): connects, sends
/// `method path` with an optional JSON body, returns `(status, body)`.
///
/// # Errors
///
/// Returns a human-readable message on connection, protocol, or
/// encoding failures.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let resolved = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolves to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&resolved, IO_TIMEOUT)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(IO_TIMEOUT)).map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    let response = String::from_utf8(response).map_err(|_| "response is not UTF-8".to_owned())?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("response has no status code")?;
    Ok((status, body.to_owned()))
}
