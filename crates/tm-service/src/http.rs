//! A minimal HTTP/1.1 server and client over `std::net` — just enough
//! protocol for the service's JSON endpoint, with zero dependencies (the
//! shims spirit: offline, in-repo, the API subset this workspace needs).
//!
//! ## Server routes
//!
//! | Method | Path           | Body                | Response                       |
//! |--------|----------------|---------------------|--------------------------------|
//! | GET    | `/healthz`     | —                   | `{"ok": true}`                 |
//! | GET    | `/metrics`     | —                   | Prometheus text exposition     |
//! | GET    | `/v1/stats`    | —                   | [`crate::wire::encode_stats_full`] |
//! | GET    | `/v1/sessions` | —                   | [`crate::wire::encode_sessions`] |
//! | GET    | `/v1/store`    | —                   | [`crate::wire::encode_store`]  |
//! | GET    | `/v1/events`   | — (`?cursor=N`)     | [`crate::wire::encode_events`] |
//! | GET    | `/v1/profile`  | — (`?seconds=N`)    | folded stacks, plain text      |
//! | POST   | `/v1/batch`    | batch request JSON  | [`crate::wire::encode_results`]|
//! | POST   | `/v1/shutdown` | —                   | `{"ok": true}` then clean exit |
//!
//! `GET /v1/profile` starts the ~97 Hz sampling profiler on first use
//! (it stays running afterwards), sleeps for the requested window
//! (default 1 s, capped at 30 s), and answers with the folded-stack
//! delta over that window — pipe it straight into a flamegraph tool.
//! `GET /v1/events` tails the lifecycle journal: pass the
//! `next_cursor` a previous read returned to get only newer events.
//!
//! Requests may carry an `X-Request-Id` header; the id (or a generated
//! `req-N` fallback) is echoed back on the response and stamped on the
//! one structured log line each request emits under `TM_LOG=json`.
//!
//! Connections are one-request (`Connection: close`), each handled on
//! its own thread, and the [`Service`] is shared as a plain `Arc`: its
//! API is `&self`, so admitted batches **run concurrently** — sessions
//! on different instance sizes overlap, queries on one session
//! serialize, and artifacts in use are pinned against eviction (see the
//! service and registry docs for the lock hierarchy). `/healthz` takes
//! no lock at all and `/v1/stats` reads atomics plus the short ledger
//! lock, so both answer immediately while long batches run. The accept
//! loop polls a shutdown flag, so `POST /v1/shutdown` drains in-flight
//! connections and returns from [`serve`] — the clean shutdown the CI
//! smoke asserts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tm_automata::{fault, EngineError};
use tm_obs::LogValue;

use crate::service::{QueryResult, Service};
use crate::wire;

/// Upper bound on request bodies (16 MiB — a batch of millions of
/// queries; anything larger is a client bug).
const MAX_BODY_BYTES: usize = 16 << 20;

/// Upper bound on header count per request; more is a 431.
const MAX_HEADERS: usize = 100;

/// Upper bound on total header bytes per request; more is a 431.
const MAX_HEADER_BYTES: usize = 32 << 10;

/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(60);

/// `Retry-After` seconds advertised on 429/503/504 responses.
const RETRY_AFTER_SECS: u64 = 1;

/// Runs the accept loop on `listener` until a `POST /v1/shutdown`
/// arrives, then joins every connection thread and returns the number of
/// connections served.
///
/// # Errors
///
/// Propagates fatal listener errors (transient per-connection I/O errors
/// only terminate that connection).
pub fn serve(listener: TcpListener, service: Arc<Service>) -> std::io::Result<u64> {
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let inflight = Arc::new(AtomicUsize::new(0));
    let max_inflight = service.max_inflight();
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut served = 0u64;
    loop {
        // Checked every iteration — not only when idle — so a busy
        // daemon cannot be kept alive past /v1/shutdown by a stream of
        // new connections.
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                served += 1;
                reap_finished(&mut handles);
                let service = Arc::clone(&service);
                let shutdown = Arc::clone(&shutdown);
                let inflight = Arc::clone(&inflight);
                handles.push(std::thread::spawn(move || {
                    // Connection-level errors are the client's problem.
                    let _ = handle_connection(
                        stream,
                        &service,
                        &shutdown,
                        &inflight,
                        max_inflight,
                    );
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Reap on the idle path too: after a burst, the daemon
                // releases the finished threads' handles on the next
                // poll tick instead of holding all of them until the
                // next connection (or shutdown) arrives.
                reap_finished(&mut handles);
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(served)
}

/// Drops the handles of connection threads that already finished, so a
/// long-running daemon does not accumulate one `JoinHandle` per request.
fn reap_finished(handles: &mut Vec<std::thread::JoinHandle<()>>) {
    handles.retain(|handle| !handle.is_finished());
}

/// An admitted slot in the inflight-batch counter, released on `Drop` —
/// so a panicking connection thread (e.g. an injected panic fault)
/// cannot leak its increment and permanently shrink admission capacity.
struct InflightGuard<'a> {
    inflight: &'a AtomicUsize,
}

impl<'a> InflightGuard<'a> {
    /// Takes a slot. Returns `None` — taking nothing — when that would
    /// exceed `max_inflight` (`0` = unbounded).
    fn admit(inflight: &'a AtomicUsize, max_inflight: usize) -> Option<Self> {
        let admitted = inflight.fetch_add(1, Ordering::SeqCst) + 1;
        let guard = InflightGuard { inflight };
        if max_inflight > 0 && admitted > max_inflight {
            // Dropping the guard undoes the increment.
            None
        } else {
            Some(guard)
        }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A process-unique `req-N` id for requests that carry no
/// `X-Request-Id` header, so every log line has a correlatable id.
fn request_id_fallback() -> String {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    format!("req-{}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// The `path` label of `tm_http_requests_total`: known routes verbatim,
/// everything else collapsed to `other` so arbitrary client paths
/// cannot explode the metric's cardinality.
fn route_label(path: &str) -> &'static str {
    // A query string never creates a new label.
    let path = path.split_once('?').map_or(path, |(path, _)| path);
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/v1/stats" => "/v1/stats",
        "/v1/sessions" => "/v1/sessions",
        "/v1/store" => "/v1/store",
        "/v1/events" => "/v1/events",
        "/v1/profile" => "/v1/profile",
        "/v1/batch" => "/v1/batch",
        "/v1/shutdown" => "/v1/shutdown",
        _ => "other",
    }
}

/// The value of `name` in a `k=v&k2=v2` query string, if present.
fn query_param<'a>(query: &'a str, name: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (key, value) = pair.split_once('=')?;
        (key == name).then_some(value)
    })
}

/// Emits the one structured log line this request gets (under
/// `TM_LOG=json`) and counts it in `tm_http_requests_total`.
fn observe_request(request_id: &str, method: &str, path: &str, status: u16, started: Instant) {
    tm_obs::global_counter(
        "tm_http_requests_total",
        "HTTP requests served, by route",
        &[("path", route_label(path))],
    )
    .inc();
    tm_obs::log_json(
        "http_request",
        &[
            ("request_id", LogValue::Str(request_id)),
            ("method", LogValue::Str(method)),
            ("path", LogValue::Str(path)),
            ("status", LogValue::U64(u64::from(status))),
            (
                "dur_ms",
                LogValue::U64(u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX)),
            ),
        ],
    );
}

fn handle_connection(
    stream: TcpStream,
    service: &Service,
    shutdown: &AtomicBool,
    inflight: &AtomicUsize,
    max_inflight: usize,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // Publish this connection thread into the sampling profiler for
    // the request's lifetime (inert under `TM_OBS=off`).
    let _profile = tm_obs::register_thread(tm_obs::ThreadKind::Http);
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    let (method, path, body, request_id) = match read_request(&mut reader) {
        Ok(request) => request,
        Err((status, e)) => {
            let request_id = request_id_fallback();
            observe_request(&request_id, "", "", status, started);
            let body = format!("{{\"error\": \"bad request: {e}\"}}");
            let response = Response {
                status,
                content_type: "application/json",
                retry_after: None,
                request_id: &request_id,
            };
            return write_response(reader.get_mut(), &response, &body);
        }
    };
    let request_id = request_id.unwrap_or_else(request_id_fallback);
    // Queries run on this thread, so journal events they emit carry the
    // request id via the service's thread-local.
    let _request = crate::service::set_request_id(&request_id);
    let (status, content_type, body, retry_after) =
        route(&method, &path, &body, service, shutdown, inflight, max_inflight);
    observe_request(&request_id, &method, &path, status, started);
    let response = Response {
        status,
        content_type,
        retry_after,
        request_id: &request_id,
    };
    write_response(reader.get_mut(), &response, &body)
}

/// Reads one request: the request line, the headers (only
/// `Content-Length` and `X-Request-Id` are interpreted), and the body.
/// Errors carry the HTTP status to answer with — 431 when the header
/// section exceeds [`MAX_HEADERS`] lines or [`MAX_HEADER_BYTES`] bytes,
/// 400 otherwise.
#[allow(clippy::type_complexity)]
fn read_request<R: BufRead>(
    reader: &mut R,
) -> Result<(String, String, String, Option<String>), (u16, String)> {
    let bad = |e: String| (400u16, e);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| bad(format!("request line: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line".to_owned()))?.to_owned();
    let path = parts
        .next()
        .ok_or_else(|| bad("request line has no path".to_owned()))?
        .to_owned();
    let mut content_length = 0usize;
    let mut request_id: Option<String> = None;
    let mut headers = 0usize;
    let mut header_bytes = 0usize;
    loop {
        let mut header = String::new();
        // Cap the *read* too, so one never-ending header line cannot
        // balloon the buffer past the total-bytes limit.
        reader
            .by_ref()
            .take((MAX_HEADER_BYTES + 2) as u64)
            .read_line(&mut header)
            .map_err(|e| bad(format!("headers: {e}")))?;
        if header.is_empty() {
            return Err(bad("truncated headers".to_owned()));
        }
        headers += 1;
        header_bytes += header.len();
        if headers > MAX_HEADERS || header_bytes > MAX_HEADER_BYTES {
            return Err((431, "header section exceeds the limit".to_owned()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|e| bad(format!("bad Content-Length: {e}")))?;
            } else if name.eq_ignore_ascii_case("x-request-id") {
                let value = value.trim();
                if !value.is_empty() {
                    request_id = Some(value.to_owned());
                }
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad(format!("body of {content_length} bytes exceeds the limit")));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| bad(format!("body: {e}")))?;
    String::from_utf8(body)
        .map(|body| (method, path, body, request_id))
        .map_err(|_| bad("body is not UTF-8".to_owned()))
}

/// The HTTP status a finished batch maps to: any retryable abort makes
/// the whole response retryable — 504 for deadline expiry, 503 for
/// cancellation/panics/injected faults — while abort reasons the client
/// cannot retry away (the state limit) map to 422. The body always
/// carries the full per-query results either way.
fn batch_status(results: &[QueryResult]) -> (u16, Option<u64>) {
    let aborts: Vec<EngineError> = results.iter().filter_map(QueryResult::abort_reason).collect();
    if aborts.contains(&EngineError::Deadline) {
        (504, Some(RETRY_AFTER_SECS))
    } else if aborts.iter().any(EngineError::is_retryable) {
        (503, Some(RETRY_AFTER_SECS))
    } else if !aborts.is_empty() {
        (422, None)
    } else {
        (200, None)
    }
}

/// JSON content type — every route except `/metrics`.
const JSON: &str = "application/json";

#[allow(clippy::too_many_arguments)]
fn route(
    method: &str,
    path: &str,
    body: &str,
    service: &Service,
    shutdown: &AtomicBool,
    inflight: &AtomicUsize,
    max_inflight: usize,
) -> (u16, &'static str, String, Option<u64>) {
    // Split off the query string: `/v1/profile?seconds=2` routes as
    // `/v1/profile`.
    let (path, query) = path.split_once('?').unwrap_or((path, ""));
    match (method, path) {
        ("GET", "/healthz") => (200, JSON, "{\"ok\": true}".to_owned(), None),
        ("GET", "/metrics") => {
            // Publish the scrape-time gauges, then render the global
            // registry in the Prometheus text exposition format.
            service.refresh_metrics();
            (
                200,
                "text/plain; version=0.0.4",
                tm_obs::global().render_prometheus(),
                None,
            )
        }
        ("GET", "/v1/stats") => (
            200,
            JSON,
            wire::encode_stats_full(&service.stats(), &service.latency_quantiles()),
            None,
        ),
        ("GET", "/v1/sessions") => {
            (200, JSON, wire::encode_sessions(&service.sessions_snapshot()), None)
        }
        ("GET", "/v1/store") => (200, JSON, wire::encode_store(&service.store_entries()), None),
        ("GET", "/v1/events") => {
            let cursor = query_param(query, "cursor")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            (
                200,
                JSON,
                wire::encode_events(&tm_obs::global_journal().read_from(cursor)),
                None,
            )
        }
        ("GET", "/v1/profile") => {
            // The handler sleeps for the window on this connection
            // thread; other requests keep being served meanwhile.
            let seconds: u64 = query_param(query, "seconds")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1)
                .clamp(1, 30);
            let folded = tm_obs::collect_profile(Duration::from_secs(seconds));
            (200, "text/plain; charset=utf-8", folded, None)
        }
        ("POST", "/v1/batch") => {
            // Admission control: a draining daemon sheds everything with
            // 503, a saturated one sheds the excess with 429 — both with
            // Retry-After, before any decode work.
            if shutdown.load(Ordering::SeqCst) {
                return (
                    503,
                    JSON,
                    "{\"error\": \"draining\"}".to_owned(),
                    Some(RETRY_AFTER_SECS),
                );
            }
            let Some(_slot) = InflightGuard::admit(inflight, max_inflight) else {
                return (
                    429,
                    JSON,
                    "{\"error\": \"too many in-flight batches\"}".to_owned(),
                    Some(RETRY_AFTER_SECS),
                );
            };
            // `_slot` releases the admission on every exit from here —
            // including a panic unwinding out of `submit` or the encode
            // fault point below.
            match wire::decode_batch_request_traced(body) {
                Err(e) => (
                    400,
                    JSON,
                    format!("{{\"error\": {}}}", crate::wire::Json::Str(e.to_string())),
                    None,
                ),
                Ok((batch, deadline_ms, trace)) => {
                    let results = service.submit_traced(&batch, deadline_ms, trace);
                    let (status, retry_after) = batch_status(&results);
                    if let Err(error) = fault::fault_point("encode") {
                        return (
                            503,
                            JSON,
                            format!("{{\"error\": {}}}", crate::wire::Json::Str(error.to_string())),
                            Some(RETRY_AFTER_SECS),
                        );
                    }
                    (
                        status,
                        JSON,
                        wire::encode_results(&results, &service.stats()),
                        retry_after,
                    )
                }
            }
        }
        ("POST", "/v1/shutdown") => {
            shutdown.store(true, Ordering::SeqCst);
            (200, JSON, "{\"ok\": true, \"shutting_down\": true}".to_owned(), None)
        }
        _ => (404, JSON, format!("{{\"error\": \"no route {method} {path}\"}}"), None),
    }
}

/// The response head: everything but the body.
struct Response<'a> {
    status: u16,
    content_type: &'static str,
    retry_after: Option<u64>,
    request_id: &'a str,
}

fn write_response(stream: &mut TcpStream, response: &Response<'_>, body: &str) -> std::io::Result<()> {
    let status = response.status;
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    };
    let retry = response
        .retry_after
        .map_or(String::new(), |secs| format!("Retry-After: {secs}\r\n"));
    // Header values must stay a single line; a hostile X-Request-Id
    // with CR/LF must not become a header-injection vector.
    let request_id: String = response
        .request_id
        .chars()
        .filter(|c| !c.is_control())
        .take(128)
        .collect();
    let text = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {}\r\n\
         Content-Length: {}\r\nX-Request-Id: {request_id}\r\n{retry}Connection: close\r\n\r\n{body}",
        response.content_type,
        body.len()
    );
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

/// One-shot HTTP client request (the `tm-query` side): connects, sends
/// `method path` with an optional JSON body, returns `(status, body)`.
///
/// # Errors
///
/// Returns a human-readable message on connection, protocol, or
/// encoding failures.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    http_request_full(addr, method, path, body).map(|(status, body, _)| (status, body))
}

/// Extracts the `Retry-After` header (in whole seconds) from a response
/// head. Per RFC 9110 field names compare case-insensitively, so
/// `retry-after: 1` and `RETRY-AFTER: 1` parse the same as the
/// canonical spelling; an unparsable value reads as absent.
fn parse_retry_after(head: &str) -> Option<u64> {
    head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("retry-after")
            .then(|| value.trim().parse().ok())
            .flatten()
    })
}

/// [`http_request`] that additionally surfaces the `Retry-After` header
/// in seconds, if the server sent one — what a backing-off client
/// honors on 429/503/504.
///
/// # Errors
///
/// Returns a human-readable message on connection, protocol, or
/// encoding failures.
pub fn http_request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String, Option<u64>), String> {
    http_request_with_id(addr, method, path, body, None)
}

/// [`http_request_full`] that additionally ships an `X-Request-Id`
/// header, which the server echoes and stamps on its log line.
///
/// # Errors
///
/// Returns a human-readable message on connection, protocol, or
/// encoding failures.
pub fn http_request_with_id(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    request_id: Option<&str>,
) -> Result<(u16, String, Option<u64>), String> {
    let resolved = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolves to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&resolved, IO_TIMEOUT)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(IO_TIMEOUT)).map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let id_header =
        request_id.map_or(String::new(), |id| format!("X-Request-Id: {id}\r\n"));
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{id_header}Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    let response = String::from_utf8(response).map_err(|_| "response is not UTF-8".to_owned())?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("response has no status code")?;
    Ok((status, body.to_owned(), parse_retry_after(head)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_parses_case_insensitively() {
        let canonical = "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 2\r\nConnection: close";
        assert_eq!(parse_retry_after(canonical), Some(2));
        // RFC 9110 §5.1: field names are case-insensitive — a proxy may
        // rewrite the server's canonical spelling.
        let lower = "HTTP/1.1 429 Too Many Requests\r\nretry-after: 3\r\nConnection: close";
        assert_eq!(parse_retry_after(lower), Some(3));
        let shouty = "HTTP/1.1 503 Service Unavailable\r\nRETRY-AFTER: 7";
        assert_eq!(parse_retry_after(shouty), Some(7));
        let spaced = "HTTP/1.1 503 Service Unavailable\r\n Retry-After :  5 ";
        assert_eq!(parse_retry_after(spaced), Some(5));
    }

    #[test]
    fn retry_after_ignores_absent_or_malformed_values() {
        assert_eq!(parse_retry_after("HTTP/1.1 200 OK\r\nContent-Length: 2"), None);
        // An HTTP-date (also legal per RFC 9110) is out of scope for
        // this client; it reads as absent rather than a parse error.
        let dated = "HTTP/1.1 429 x\r\nRetry-After: Fri, 08 Aug 2026 00:00:00 GMT";
        assert_eq!(parse_retry_after(dated), None);
        assert_eq!(parse_retry_after("HTTP/1.1 429 x\r\nRetry-After: -1"), None);
        // The name must match whole, not as a prefix.
        assert_eq!(parse_retry_after("HTTP/1.1 429 x\r\nX-Retry-After: 9"), None);
    }

    #[test]
    fn query_params_parse_and_do_not_pollute_route_labels() {
        assert_eq!(query_param("seconds=3", "seconds"), Some("3"));
        assert_eq!(query_param("cursor=12&seconds=3", "seconds"), Some("3"));
        assert_eq!(query_param("cursor=12", "seconds"), None);
        assert_eq!(query_param("", "seconds"), None);
        assert_eq!(query_param("seconds", "seconds"), None, "no '=' means no value");
        assert_eq!(route_label("/v1/profile?seconds=2"), "/v1/profile");
        assert_eq!(route_label("/v1/events?cursor=7"), "/v1/events");
        assert_eq!(route_label("/v1/nope?x=1"), "other");
    }

    #[test]
    fn inflight_guard_releases_on_drop_and_rejects_over_capacity() {
        let inflight = AtomicUsize::new(0);
        let first = InflightGuard::admit(&inflight, 2).expect("slot 1");
        let _second = InflightGuard::admit(&inflight, 2).expect("slot 2");
        assert!(InflightGuard::admit(&inflight, 2).is_none(), "capacity 2 is full");
        // A failed admission must not consume capacity.
        assert_eq!(inflight.load(Ordering::SeqCst), 2);
        drop(first);
        assert_eq!(inflight.load(Ordering::SeqCst), 1);
        assert!(InflightGuard::admit(&inflight, 2).is_some(), "slot freed by drop");
        // Unbounded admission never rejects.
        assert!(InflightGuard::admit(&inflight, 0).is_some());
    }
}
