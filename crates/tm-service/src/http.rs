//! A minimal HTTP/1.1 server and client over `std::net` — just enough
//! protocol for the service's JSON endpoint, with zero dependencies (the
//! shims spirit: offline, in-repo, the API subset this workspace needs).
//!
//! ## Server routes
//!
//! | Method | Path           | Body                | Response                       |
//! |--------|----------------|---------------------|--------------------------------|
//! | GET    | `/healthz`     | —                   | `{"ok": true}`                 |
//! | GET    | `/v1/stats`    | —                   | [`crate::wire::encode_stats`]  |
//! | POST   | `/v1/batch`    | batch request JSON  | [`crate::wire::encode_results`]|
//! | POST   | `/v1/shutdown` | —                   | `{"ok": true}` then clean exit |
//!
//! Connections are one-request (`Connection: close`), each handled on
//! its own thread; the [`Service`] behind the mutex answers batches one
//! at a time (queries inside a batch still fan out on the shared worker
//! pool). The accept loop polls a shutdown flag, so `POST /v1/shutdown`
//! drains in-flight connections and returns from [`serve`] — the clean
//! shutdown the CI smoke asserts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tm_automata::{fault, EngineError};

use crate::service::{QueryResult, Service};
use crate::wire;

/// Upper bound on request bodies (16 MiB — a batch of millions of
/// queries; anything larger is a client bug).
const MAX_BODY_BYTES: usize = 16 << 20;

/// Upper bound on header count per request; more is a 431.
const MAX_HEADERS: usize = 100;

/// Upper bound on total header bytes per request; more is a 431.
const MAX_HEADER_BYTES: usize = 32 << 10;

/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(60);

/// `Retry-After` seconds advertised on 429/503/504 responses.
const RETRY_AFTER_SECS: u64 = 1;

/// Runs the accept loop on `listener` until a `POST /v1/shutdown`
/// arrives, then joins every connection thread and returns the number of
/// connections served.
///
/// # Errors
///
/// Propagates fatal listener errors (transient per-connection I/O errors
/// only terminate that connection).
pub fn serve(listener: TcpListener, service: Arc<Mutex<Service>>) -> std::io::Result<u64> {
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let inflight = Arc::new(AtomicUsize::new(0));
    let max_inflight = service
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .max_inflight();
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut served = 0u64;
    loop {
        // Checked every iteration — not only when idle — so a busy
        // daemon cannot be kept alive past /v1/shutdown by a stream of
        // new connections.
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                served += 1;
                // Reap finished connection threads so a long-running
                // daemon does not accumulate one handle per request.
                handles.retain(|handle| !handle.is_finished());
                let service = Arc::clone(&service);
                let shutdown = Arc::clone(&shutdown);
                let inflight = Arc::clone(&inflight);
                handles.push(std::thread::spawn(move || {
                    // Connection-level errors are the client's problem.
                    let _ = handle_connection(
                        stream,
                        &service,
                        &shutdown,
                        &inflight,
                        max_inflight,
                    );
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(served)
}

fn handle_connection(
    stream: TcpStream,
    service: &Arc<Mutex<Service>>,
    shutdown: &AtomicBool,
    inflight: &AtomicUsize,
    max_inflight: usize,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let (method, path, body) = match read_request(&mut reader) {
        Ok(request) => request,
        Err((status, e)) => {
            let body = format!("{{\"error\": \"bad request: {e}\"}}");
            return write_response(reader.get_mut(), status, &body, None);
        }
    };
    let (status, body, retry_after) =
        route(&method, &path, &body, service, shutdown, inflight, max_inflight);
    write_response(reader.get_mut(), status, &body, retry_after)
}

/// Reads one request: the request line, the headers (only
/// `Content-Length` is interpreted), and the body. Errors carry the
/// HTTP status to answer with — 431 when the header section exceeds
/// [`MAX_HEADERS`] lines or [`MAX_HEADER_BYTES`] bytes, 400 otherwise.
fn read_request<R: BufRead>(reader: &mut R) -> Result<(String, String, String), (u16, String)> {
    let bad = |e: String| (400u16, e);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| bad(format!("request line: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line".to_owned()))?.to_owned();
    let path = parts
        .next()
        .ok_or_else(|| bad("request line has no path".to_owned()))?
        .to_owned();
    let mut content_length = 0usize;
    let mut headers = 0usize;
    let mut header_bytes = 0usize;
    loop {
        let mut header = String::new();
        // Cap the *read* too, so one never-ending header line cannot
        // balloon the buffer past the total-bytes limit.
        reader
            .by_ref()
            .take((MAX_HEADER_BYTES + 2) as u64)
            .read_line(&mut header)
            .map_err(|e| bad(format!("headers: {e}")))?;
        if header.is_empty() {
            return Err(bad("truncated headers".to_owned()));
        }
        headers += 1;
        header_bytes += header.len();
        if headers > MAX_HEADERS || header_bytes > MAX_HEADER_BYTES {
            return Err((431, "header section exceeds the limit".to_owned()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|e| bad(format!("bad Content-Length: {e}")))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad(format!("body of {content_length} bytes exceeds the limit")));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| bad(format!("body: {e}")))?;
    String::from_utf8(body)
        .map(|body| (method, path, body))
        .map_err(|_| bad("body is not UTF-8".to_owned()))
}

/// The HTTP status a finished batch maps to: any retryable abort makes
/// the whole response retryable — 504 for deadline expiry, 503 for
/// cancellation/panics/injected faults — while abort reasons the client
/// cannot retry away (the state limit) map to 422. The body always
/// carries the full per-query results either way.
fn batch_status(results: &[QueryResult]) -> (u16, Option<u64>) {
    let aborts: Vec<EngineError> = results.iter().filter_map(QueryResult::abort_reason).collect();
    if aborts.contains(&EngineError::Deadline) {
        (504, Some(RETRY_AFTER_SECS))
    } else if aborts.iter().any(EngineError::is_retryable) {
        (503, Some(RETRY_AFTER_SECS))
    } else if !aborts.is_empty() {
        (422, None)
    } else {
        (200, None)
    }
}

#[allow(clippy::too_many_arguments)]
fn route(
    method: &str,
    path: &str,
    body: &str,
    service: &Arc<Mutex<Service>>,
    shutdown: &AtomicBool,
    inflight: &AtomicUsize,
    max_inflight: usize,
) -> (u16, String, Option<u64>) {
    type Response = (u16, String, Option<u64>);
    let locked = |f: &mut dyn FnMut(&mut Service) -> Response| {
        let mut service = service.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        f(&mut service)
    };
    match (method, path) {
        ("GET", "/healthz") => (200, "{\"ok\": true}".to_owned(), None),
        ("GET", "/v1/stats") => {
            locked(&mut |service| (200, wire::encode_stats(&service.stats()), None))
        }
        ("POST", "/v1/batch") => {
            // Admission control: a draining daemon sheds everything with
            // 503, a saturated one sheds the excess with 429 — both with
            // Retry-After, before any decode work.
            if shutdown.load(Ordering::SeqCst) {
                return (
                    503,
                    "{\"error\": \"draining\"}".to_owned(),
                    Some(RETRY_AFTER_SECS),
                );
            }
            let admitted = inflight.fetch_add(1, Ordering::SeqCst) + 1;
            if max_inflight > 0 && admitted > max_inflight {
                inflight.fetch_sub(1, Ordering::SeqCst);
                return (
                    429,
                    "{\"error\": \"too many in-flight batches\"}".to_owned(),
                    Some(RETRY_AFTER_SECS),
                );
            }
            let response = match wire::decode_batch_request(body) {
                Err(e) => (
                    400,
                    format!("{{\"error\": {}}}", crate::wire::Json::Str(e.to_string())),
                    None,
                ),
                Ok((batch, deadline_ms)) => locked(&mut |service| {
                    let results = service.submit_with_deadline(&batch, deadline_ms);
                    let (status, retry_after) = batch_status(&results);
                    if let Err(error) = fault::fault_point("encode") {
                        return (
                            503,
                            format!("{{\"error\": {}}}", crate::wire::Json::Str(error.to_string())),
                            Some(RETRY_AFTER_SECS),
                        );
                    }
                    (status, wire::encode_results(&results, &service.stats()), retry_after)
                }),
            };
            inflight.fetch_sub(1, Ordering::SeqCst);
            response
        }
        ("POST", "/v1/shutdown") => {
            shutdown.store(true, Ordering::SeqCst);
            (200, "{\"ok\": true, \"shutting_down\": true}".to_owned(), None)
        }
        _ => (404, format!("{{\"error\": \"no route {method} {path}\"}}"), None),
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    retry_after: Option<u64>,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    };
    let retry = retry_after.map_or(String::new(), |secs| format!("Retry-After: {secs}\r\n"));
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{retry}Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// One-shot HTTP client request (the `tm-query` side): connects, sends
/// `method path` with an optional JSON body, returns `(status, body)`.
///
/// # Errors
///
/// Returns a human-readable message on connection, protocol, or
/// encoding failures.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    http_request_full(addr, method, path, body).map(|(status, body, _)| (status, body))
}

/// [`http_request`] that additionally surfaces the `Retry-After` header
/// in seconds, if the server sent one — what a backing-off client
/// honors on 429/503/504.
///
/// # Errors
///
/// Returns a human-readable message on connection, protocol, or
/// encoding failures.
pub fn http_request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String, Option<u64>), String> {
    let resolved = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolves to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&resolved, IO_TIMEOUT)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(IO_TIMEOUT)).map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    let response = String::from_utf8(response).map_err(|_| "response is not UTF-8".to_owned())?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("response has no status code")?;
    let retry_after = head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.eq_ignore_ascii_case("retry-after")
            .then(|| value.trim().parse().ok())
            .flatten()
    });
    Ok((status, body.to_owned(), retry_after))
}
