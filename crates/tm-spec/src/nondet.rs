//! The nondeterministic TM specifications Σ_ss and Σ_op (§5.1,
//! Algorithm 5).
//!
//! Every transaction *guesses* its serialization point during its
//! lifetime by taking an internal `(ε, t)` move from `started` to
//! `serialized`; the specification then enforces, along each guess, the
//! conditions C1–C4 of the paper (Fig. 3) under which a commit would be
//! inconsistent with the guessed order — and, for opacity, refuses reads
//! that no serialization order could justify.

use tm_lang::{
    SafetyProperty, Statement, StatementKind, ThreadId, ThreadSet, VarId, Word,
};

use tm_automata::{explore, Explored, Nfa, TransitionSystem};

use crate::state::{NdPhase, NdState, MAX_THREADS};

/// The nondeterministic TM specification for `n` threads and `k`
/// variables and a given safety property.
///
/// Its language (over statements `Ŝ`; the ε-moves are internal) is
/// exactly the set of words satisfying the property — Theorem 2 of the
/// paper, validated in this workspace by bounded-exhaustive comparison
/// against the definition-level checkers of `tm-lang`.
///
/// # Examples
///
/// ```
/// use tm_lang::SafetyProperty;
/// use tm_spec::NondetSpec;
///
/// let spec = NondetSpec::new(SafetyProperty::Opacity, 2, 2);
/// let nfa = spec.to_nfa(100_000).nfa;
/// let bad: tm_lang::Word = "(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1".parse()?;
/// assert!(!nfa.accepts(bad.statements()));
/// # Ok::<(), tm_lang::ParseStatementError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct NondetSpec {
    property: SafetyProperty,
    threads: usize,
    vars: usize,
}

impl NondetSpec {
    /// Creates the specification Σ_π for `threads` threads and `vars`
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds 4, or `vars` is 0 or exceeds
    /// 16.
    pub fn new(property: SafetyProperty, threads: usize, vars: usize) -> Self {
        assert!((1..=MAX_THREADS).contains(&threads));
        assert!((1..=16).contains(&vars));
        NondetSpec {
            property,
            threads,
            vars,
        }
    }

    /// The safety property this specification defines.
    pub fn property(&self) -> SafetyProperty {
        self.property
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of variables.
    pub fn vars(&self) -> usize {
        self.vars
    }

    fn thread_ids(&self) -> impl Iterator<Item = ThreadId> {
        (0..self.threads).map(ThreadId::new)
    }

    fn others(&self, t: ThreadId) -> impl Iterator<Item = ThreadId> {
        (0..self.threads)
            .map(ThreadId::new)
            .filter(move |&u| u != t)
    }

    /// The set `{u | Status(u) = serialized}` — including doomed
    /// (invalid) transactions, whose serialization positions still
    /// constrain reads under opacity.
    fn serialized_set(&self, q: &NdState) -> ThreadSet {
        self.thread_ids()
            .filter(|&u| q.thread(u).phase == NdPhase::Serialized)
            .collect()
    }

    /// `nondetSpec(q, ((read, v), t), π)` — Alg. 5, read case.
    fn apply_read(&self, q: &NdState, v: VarId, t: ThreadId) -> Option<NdState> {
        let mut q = *q;
        let ti = t.index();
        if q.0[ti].ws.contains(v) {
            return Some(q); // read of own write: no observable effect
        }
        if q.0[ti].phase == NdPhase::Finished {
            q.0[ti].sp = self.serialized_set(&q);
            q.0[ti].phase = NdPhase::Started;
        }
        q.0[ti].rs.insert(v);
        match self.property {
            SafetyProperty::Opacity => {
                // An opaque history cannot contain this read in this
                // branch: the reader serialized before the writer whose
                // committed value it would observe.
                if q.0[ti].prs.contains(v) {
                    return None;
                }
                for u in self.others(t) {
                    let ui = u.index();
                    if q.0[ui].phase == NdPhase::Serialized && !q.0[ui].sp.contains(t) {
                        // u serialized before t in this branch (t is not
                        // among u's predecessors): u's commit must not
                        // invalidate t's read of v.
                        if q.0[ui].ws.contains(v) {
                            q.0[ui].valid = false;
                        } else {
                            q.0[ui].pws.insert(v);
                        }
                    }
                }
            }
            SafetyProperty::StrictSerializability => {
                if q.0[ti].phase == NdPhase::Serialized && q.0[ti].prs.contains(v) {
                    q.0[ti].valid = false;
                }
            }
        }
        Some(q)
    }

    /// `nondetSpec(q, ((write, v), t), π)` — Alg. 5, write case.
    fn apply_write(&self, q: &NdState, v: VarId, t: ThreadId) -> Option<NdState> {
        let mut q = *q;
        let ti = t.index();
        if q.0[ti].phase == NdPhase::Finished {
            q.0[ti].sp = self.serialized_set(&q);
            q.0[ti].phase = NdPhase::Started;
        } else if q.0[ti].phase == NdPhase::Serialized && q.0[ti].pws.contains(v) {
            q.0[ti].valid = false;
        }
        q.0[ti].ws.insert(v);
        Some(q)
    }

    /// `nondetSpec(q, (commit, t), π)` — Alg. 5, commit case.
    fn apply_commit(&self, q: &NdState, t: ThreadId) -> Option<NdState> {
        let ti = t.index();
        // Commit requires a chosen serialization point (or an empty
        // transaction) and commit-viability.
        if q.0[ti].phase == NdPhase::Started || !q.0[ti].valid {
            return None;
        }
        let mut next = *q;
        let committer = q.0[ti];
        for u in self.others(t) {
            let ui = u.index();
            if committer.sp.contains(u) {
                // u serialized before t: it may no longer read t's writes
                // nor write over t's footprint; conflicting writes doom it.
                next.0[ui].prs.extend_with(committer.ws);
                next.0[ui].pws.extend_with(committer.rs.union(committer.ws));
                if !q.0[ui].ws.is_disjoint(committer.ws.union(committer.rs)) {
                    next.0[ui].valid = false;
                }
            } else if !committer.ws.is_disjoint(q.0[ui].rs) {
                // u read a variable t commits now, but u does not precede
                // t in this branch: u can never commit.
                next.0[ui].valid = false;
            }
        }
        next.reset(t);
        Some(next)
    }

    /// `nondetSpec(q, (ε, t), π)` — Alg. 5, serialize case.
    fn apply_serialize(&self, q: &NdState, t: ThreadId) -> Option<NdState> {
        let ti = t.index();
        if q.0[ti].phase != NdPhase::Started {
            return None;
        }
        let mut next = *q;
        next.0[ti].phase = NdPhase::Serialized;
        next.0[ti].sp = self.serialized_set(q);
        if self.property == SafetyProperty::Opacity {
            for u in self.others(t) {
                let ui = u.index();
                match q.0[ui].phase {
                    NdPhase::Started => {
                        // u will serialize after t: t must not commit a
                        // write over anything u already read.
                        if !q.0[ui].rs.is_disjoint(q.0[ti].ws) {
                            next.0[ti].valid = false;
                        }
                        next.0[ti].pws.extend_with(q.0[ui].rs);
                    }
                    NdPhase::Serialized => {
                        // u serialized before t: symmetric protection of
                        // t's existing reads.
                        if !q.0[ui].ws.is_disjoint(q.0[ti].rs) {
                            next.0[ui].valid = false;
                        }
                        next.0[ui].pws.extend_with(q.0[ti].rs);
                    }
                    NdPhase::Finished => {}
                }
            }
        }
        Some(next)
    }

    /// `nondetSpec(q, (abort, t), π)` — Alg. 5, abort case.
    fn apply_abort(&self, q: &NdState, t: ThreadId) -> Option<NdState> {
        let mut next = *q;
        next.reset(t);
        Some(next)
    }

    /// Applies one statement (a labelled transition).
    pub fn apply(&self, q: &NdState, s: Statement) -> Option<NdState> {
        match s.kind {
            StatementKind::Read(v) => self.apply_read(q, v, s.thread),
            StatementKind::Write(v) => self.apply_write(q, v, s.thread),
            StatementKind::Commit => self.apply_commit(q, s.thread),
            StatementKind::Abort => self.apply_abort(q, s.thread),
        }
    }

    /// Applies the internal serialization move `(ε, t)`.
    pub fn apply_epsilon(&self, q: &NdState, t: ThreadId) -> Option<NdState> {
        self.apply_serialize(q, t)
    }

    /// Explores the reachable specification automaton (ε-moves included).
    ///
    /// # Panics
    ///
    /// Panics if the reachable state space exceeds `max_states`.
    pub fn to_nfa(&self, max_states: usize) -> Explored<NdState, Statement> {
        explore(self, max_states)
            .unwrap_or_else(|error| panic!("specification exploration failed: {error}"))
    }

    /// Decides membership of a word in `L(Σ_π)` by direct frontier
    /// simulation on `nfa` (built by [`NondetSpec::to_nfa`]).
    pub fn accepts(nfa: &Nfa<Statement>, w: &Word) -> bool {
        nfa.accepts(w.statements())
    }
}

impl TransitionSystem for NondetSpec {
    type State = NdState;
    type Label = Statement;

    fn initial(&self) -> NdState {
        NdState::default()
    }

    fn successors(&self, state: &NdState, out: &mut Vec<(Option<Statement>, NdState)>) {
        for t in self.thread_ids() {
            for kind in StatementKind::all(self.vars) {
                let s = Statement::new(kind, t);
                if let Some(next) = self.apply(state, s) {
                    out.push((Some(s), next));
                }
            }
            if let Some(next) = self.apply_epsilon(state, t) {
                out.push((None, next));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_lang::{is_opaque, is_strictly_serializable};

    fn nfa(property: SafetyProperty) -> Nfa<Statement> {
        NondetSpec::new(property, 2, 2).to_nfa(1_000_000).nfa
    }

    fn w(s: &str) -> Word {
        s.parse().unwrap()
    }

    #[test]
    fn accepts_sequential_histories() {
        let op = nfa(SafetyProperty::Opacity);
        for text in [
            "",
            "(r,1)1 c1",
            "(r,1)1 (w,2)1 c1 (w,1)2 c2",
            "(r,1)1 a1 (r,1)1 c1",
            "c1 c2 a1",
        ] {
            assert!(op.accepts(w(text).statements()), "{text}");
        }
    }

    #[test]
    fn rejects_table2_counterexample() {
        let word = w("(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1");
        assert!(!nfa(SafetyProperty::StrictSerializability).accepts(word.statements()));
        assert!(!nfa(SafetyProperty::Opacity).accepts(word.statements()));
    }

    #[test]
    fn opacity_is_stricter_than_ss() {
        // Fig. 2(a)-style for two threads: reader observes mixed snapshot.
        let word = w("(w,1)1 (r,2)2 (r,1)2 c1");
        let ss = nfa(SafetyProperty::StrictSerializability).accepts(word.statements());
        let op = nfa(SafetyProperty::Opacity).accepts(word.statements());
        assert_eq!(ss, is_strictly_serializable(&word));
        assert_eq!(op, is_opaque(&word));
    }

    #[test]
    fn matches_reference_on_selected_words() {
        let ss = nfa(SafetyProperty::StrictSerializability);
        let op = nfa(SafetyProperty::Opacity);
        for text in [
            "(r,1)1 (w,1)2 c2 c1",
            "(r,1)1 (w,1)2 c2 a1",
            "(w,1)1 (w,1)2 c1 c2",
            "(r,1)1 (w,1)2 (w,2)1 c2 (r,2)2 c1",
            "(w,1)2 (r,1)1 c2 (r,2)2 a2 (w,2)1 c1",
            "(r,1)1 (r,2)2 (w,2)1 (w,1)2 c1 c2",
            "(r,1)1 c2 (w,1)2 c1 c2",
        ] {
            let word = w(text);
            assert_eq!(
                ss.accepts(word.statements()),
                is_strictly_serializable(&word),
                "ss {text}"
            );
            assert_eq!(op.accepts(word.statements()), is_opaque(&word), "op {text}");
        }
    }

    #[test]
    fn aborts_always_accepted() {
        let op = nfa(SafetyProperty::Opacity);
        assert!(op.accepts(w("a1 a1 a2 a1").statements()));
    }

    #[test]
    fn state_count_is_finite_and_plausible() {
        // Paper §5.3: Σ_ss has 12345 states, Σ_op 9202 for (2,2). Exact
        // counts depend on encoding details; we assert the right ballpark
        // and record measured numbers in EXPERIMENTS.md.
        let ss = NondetSpec::new(SafetyProperty::StrictSerializability, 2, 2)
            .to_nfa(1_000_000);
        let op = NondetSpec::new(SafetyProperty::Opacity, 2, 2).to_nfa(1_000_000);
        assert!(ss.num_states() > 1_000, "ss: {}", ss.num_states());
        assert!(op.num_states() > 1_000, "op: {}", op.num_states());
        assert!(ss.num_states() < 100_000);
        assert!(op.num_states() < 100_000);
    }
}
