//! Cross-validation of specification automata against the
//! definition-level reference checkers of `tm-lang`.
//!
//! Both the specification languages and the safety properties are
//! prefix-closed, so a bounded-exhaustive depth-first co-traversal that
//! descends only below words on which automaton and oracle *agree
//! positively* finds the shortest disagreement if any exists up to the
//! depth bound.

use tm_lang::{Alphabet, SafetyProperty, Statement, Word};

use tm_automata::{BitSet, Nfa};

/// The first word (in DFS order, shortest-prefix first) of length at most
/// `max_len` on which `nfa`'s verdict differs from the reference checker
/// for `property` — or `None` if they agree everywhere up to the bound.
///
/// `nfa` must be an automaton over statements of `alphabet` with all
/// states accepting (a TM specification).
///
/// # Examples
///
/// ```
/// use tm_lang::{Alphabet, SafetyProperty};
/// use tm_spec::{cross_validate, NondetSpec};
///
/// let spec = NondetSpec::new(SafetyProperty::Opacity, 2, 1);
/// let nfa = spec.to_nfa(1_000_000).nfa;
/// assert_eq!(cross_validate(&nfa, SafetyProperty::Opacity, Alphabet::new(2, 1), 4), None);
/// ```
pub fn cross_validate(
    nfa: &Nfa<Statement>,
    property: SafetyProperty,
    alphabet: Alphabet,
    max_len: usize,
) -> Option<Word> {
    let letters: Vec<Statement> = alphabet.statements().collect();
    let mut word = Word::new();
    let root = nfa.initial_closure();
    descend(nfa, property, &letters, max_len, &mut word, &root)
}

fn descend(
    nfa: &Nfa<Statement>,
    property: SafetyProperty,
    letters: &[Statement],
    max_len: usize,
    word: &mut Word,
    frontier: &BitSet,
) -> Option<Word> {
    if word.len() >= max_len {
        return None;
    }
    for &s in letters {
        word.push(s);
        let next = nfa.post(frontier, &s);
        let spec_accepts = !next.is_empty();
        let oracle_accepts = property.holds(word);
        if spec_accepts != oracle_accepts {
            let found = word.clone();
            word.pop();
            return Some(found);
        }
        if spec_accepts {
            if let Some(found) = descend(nfa, property, letters, max_len, word, &next) {
                word.pop();
                return Some(found);
            }
        }
        word.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_automata::Nfa;

    #[test]
    fn broken_spec_is_caught() {
        // An automaton accepting everything is wrong about opacity.
        let mut everything: Nfa<Statement> = Nfa::new();
        let q = everything.add_state();
        everything.set_initial(q);
        for s in Alphabet::new(2, 1).statements() {
            everything.add_transition(q, Some(s), q);
        }
        let mismatch = cross_validate(
            &everything,
            SafetyProperty::Opacity,
            Alphabet::new(2, 1),
            6,
        );
        let word = mismatch.expect("the always-accepting spec must disagree somewhere");
        assert!(!tm_lang::is_opaque(&word));
    }
}
