//! # tm-spec — finite-state TM specifications
//!
//! Implementation of §5 of *"Model Checking Transactional Memories"*
//! (Guerraoui, Henzinger, Singh): finite automata whose languages are
//! exactly the strictly-serializable (resp. opaque) transaction histories
//! for a bounded number of threads and variables.
//!
//! * [`NondetSpec`] — the natural nondeterministic specifications Σ_ss /
//!   Σ_op (paper Alg. 5), in which each transaction guesses its
//!   serialization point with an internal ε-move;
//! * [`DetSpec`] — the deterministic specifications Σᵈ_ss / Σᵈ_op (paper
//!   Alg. 6), based on weak/strong predecessor tracking;
//! * [`canonical_dfa`] — a determinized + minimized automaton derived
//!   from the nondeterministic specification (language-equal by
//!   construction), used as an independently constructed reference;
//! * [`cross_validate`] — bounded-exhaustive comparison of any
//!   specification automaton against the definition-level checkers of
//!   `tm-lang`.
//!
//! # Examples
//!
//! ```
//! use tm_lang::SafetyProperty;
//! use tm_spec::NondetSpec;
//!
//! let spec = NondetSpec::new(SafetyProperty::StrictSerializability, 2, 2);
//! let explored = spec.to_nfa(1_000_000);
//! let history: tm_lang::Word = "(r,1)1 (w,1)2 c2 c1".parse()?;
//! assert!(explored.nfa.accepts(history.statements()));
//! # Ok::<(), tm_lang::ParseStatementError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canonical;
mod det;
mod nondet;
mod state;
mod validate;

pub use canonical::{canonical_dfa, spec_alphabet};
pub use det::DetSpec;
pub use nondet::NondetSpec;
pub use state::{DetPhase, DetState, DetThread, NdPhase, NdState, NdThread, MAX_THREADS};
pub use validate::cross_validate;
