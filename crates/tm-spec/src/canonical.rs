//! Canonical deterministic specification automata, derived from the
//! nondeterministic specifications by subset construction and
//! minimization.
//!
//! The canonical automaton is language-equal to Σ_π *by construction*, so
//! it serves two roles:
//!
//! * an independently constructed witness for Theorem 3 (`L(Σ) = L(Σᵈ)`),
//!   cross-checked against the hand-built Algorithm-6 automaton
//!   ([`crate::DetSpec`]) with the antichain equivalence check;
//! * the minimal-size reference point for the state-count comparisons in
//!   EXPERIMENTS.md.

use tm_lang::{Alphabet, SafetyProperty, Statement};

use tm_automata::Dfa;

use crate::nondet::NondetSpec;

/// The statement alphabet `Ŝ` for `threads` threads and `vars` variables,
/// in canonical order.
pub fn spec_alphabet(threads: usize, vars: usize) -> Vec<Statement> {
    Alphabet::new(threads, vars).statements().collect()
}

/// Builds the canonical (determinized and minimized) specification DFA for
/// a property and instance size.
///
/// # Panics
///
/// Panics if the nondeterministic specification exceeds `max_states`
/// reachable states.
///
/// # Examples
///
/// ```
/// use tm_lang::SafetyProperty;
/// use tm_spec::canonical_dfa;
///
/// let dfa = canonical_dfa(SafetyProperty::Opacity, 2, 1, 1_000_000);
/// let w: tm_lang::Word = "(r,1)1 (w,1)2 c2 c1".parse()?;
/// assert!(dfa.accepts(w.statements()));
/// # Ok::<(), tm_lang::ParseStatementError>(())
/// ```
pub fn canonical_dfa(
    property: SafetyProperty,
    threads: usize,
    vars: usize,
    max_states: usize,
) -> Dfa<Statement> {
    let spec = NondetSpec::new(property, threads, vars);
    let explored = spec.to_nfa(max_states);
    // `determinize` compiles the NFA internally (interned letter ids,
    // CSR post), so the subset construction runs on integers throughout.
    let dfa = Dfa::determinize(&explored.nfa, spec_alphabet(threads, vars));
    dfa.minimize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_lang::Word;

    #[test]
    fn canonical_agrees_with_nondet_on_samples() {
        let spec = NondetSpec::new(SafetyProperty::StrictSerializability, 2, 1);
        let nfa = spec.to_nfa(1_000_000).nfa;
        let dfa = canonical_dfa(SafetyProperty::StrictSerializability, 2, 1, 1_000_000);
        for text in [
            "",
            "(r,1)1 (w,1)2 c2 c1",
            "(r,1)1 (w,1)2 c2 a1",
            "(w,1)1 (w,1)2 c1 c2",
            "(r,1)1 (r,1)2 c1 c2",
        ] {
            let w: Word = text.parse().unwrap();
            assert_eq!(
                nfa.accepts(w.statements()),
                dfa.accepts(w.statements()),
                "{text}"
            );
        }
    }

    #[test]
    fn minimization_shrinks_the_subset_automaton() {
        let spec = NondetSpec::new(SafetyProperty::Opacity, 2, 1);
        let nfa = spec.to_nfa(1_000_000).nfa;
        let subset = Dfa::determinize(&nfa, spec_alphabet(2, 1));
        let minimal = subset.minimize();
        assert!(minimal.num_states() <= subset.num_states());
        assert!(minimal.num_states() > 1);
    }
}
