//! The deterministic TM specifications Σᵈ_ss and Σᵈ_op (§5.2,
//! Algorithm 6).
//!
//! Instead of guessing serialization points, the deterministic
//! specification tracks *predecessor* constraints between live
//! transactions:
//!
//! * `u ∈ wp(t)` (**weak**): if both commit, `u` must serialize before
//!   `t`;
//! * `u ∈ sp(t)` (**strong**): `u` must serialize before `t`
//!   unconditionally (needed for opacity, where even aborting readers
//!   constrain the order);
//! * `Status(t) = pending`: `t` was a weak predecessor of a transaction
//!   that committed, so `t`'s serialization point is pinned in the past —
//!   new transactions order strictly after it;
//! * `prs(t)` / `pws(t)`: variables `t` may no longer read / write.
//!
//! Transcription notes (the printed Algorithm 6 reuses the variable `U`
//! across blocks with ambiguous scope; each resolution below is marked
//! `PAPER-AMBIGUITY` and justified, and the whole construction is
//! validated against the nondeterministic specification by antichain
//! language-equivalence and against the definition-level oracle by
//! bounded-exhaustive search — see `tests/` and EXPERIMENTS.md).

use tm_lang::{
    SafetyProperty, Statement, StatementKind, ThreadId, ThreadSet, VarId, Word,
};

use tm_automata::{DeterministicTransitionSystem, Dfa};

use crate::state::{DetPhase, DetState, MAX_THREADS};

/// The deterministic TM specification for `n` threads and `k` variables
/// and a given safety property.
///
/// # Examples
///
/// ```
/// use tm_lang::SafetyProperty;
/// use tm_spec::DetSpec;
///
/// let spec = DetSpec::new(SafetyProperty::Opacity, 2, 2);
/// let (dfa, _) = spec.to_dfa(1_000_000);
/// let w: tm_lang::Word = "(r,1)1 (w,1)2 c2 c1".parse()?;
/// assert!(dfa.accepts(w.statements()));
/// # Ok::<(), tm_lang::ParseStatementError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DetSpec {
    property: SafetyProperty,
    threads: usize,
    vars: usize,
}

impl DetSpec {
    /// Creates the specification Σᵈ_π for `threads` threads and `vars`
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds 4, or `vars` is 0 or exceeds
    /// 16.
    pub fn new(property: SafetyProperty, threads: usize, vars: usize) -> Self {
        assert!((1..=MAX_THREADS).contains(&threads));
        assert!((1..=16).contains(&vars));
        DetSpec {
            property,
            threads,
            vars,
        }
    }

    /// The safety property this specification defines.
    pub fn property(&self) -> SafetyProperty {
        self.property
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of variables.
    pub fn vars(&self) -> usize {
        self.vars
    }

    fn thread_ids(&self) -> impl Iterator<Item = ThreadId> {
        (0..self.threads).map(ThreadId::new)
    }

    fn others(&self, t: ThreadId) -> impl Iterator<Item = ThreadId> {
        (0..self.threads)
            .map(ThreadId::new)
            .filter(move |&u| u != t)
    }

    fn is_op(&self) -> bool {
        self.property == SafetyProperty::Opacity
    }

    /// Threads that may no longer read `v`, closed under strong
    /// predecessors: `{u | v ∈ prs(u)} ∪ {u | u ∈ sp(u'), v ∈ prs(u')}`.
    fn read_prohibited_closure(&self, q: &DetState, v: VarId) -> ThreadSet {
        let mut set = ThreadSet::new();
        for u in self.thread_ids() {
            if q.0[u.index()].prs.contains(v) {
                set.insert(u);
                set.extend_with(q.0[u.index()].sp);
            }
        }
        set
    }

    /// The `Status(t) = finished` startup block shared by read and write:
    /// pending threads (and their strong predecessors) become weak and
    /// strong predecessors of the fresh transaction. Returns the set of
    /// strong predecessors gained.
    fn start_transaction(&self, q: &mut DetState, t: ThreadId) -> ThreadSet {
        let pending: ThreadSet = self
            .thread_ids()
            .filter(|&u| q.0[u.index()].phase == DetPhase::Pending)
            .collect();
        let mut pending_sp = ThreadSet::new();
        for u in pending {
            pending_sp.extend_with(q.0[u.index()].sp);
        }
        let gained = pending.union(pending_sp);
        let ti = t.index();
        q.0[ti].wp.extend_with(pending);
        q.0[ti].sp.extend_with(gained);
        q.0[ti].phase = DetPhase::Started;
        gained
    }

    /// Adds `adds` to `sp(t)` and to `sp(u)` of every `u` with
    /// `t ∈ sp(u)` — the transitive-closure maintenance step the paper
    /// writes as "for all u such that u = t or t ∈ sp(u): sp(u) := sp(u) ∪ U".
    fn propagate_strong(&self, q: &mut DetState, t: ThreadId, adds: ThreadSet) {
        if adds.is_empty() {
            return;
        }
        for u in self.thread_ids() {
            if u == t || q.0[u.index()].sp.contains(t) {
                q.0[u.index()].sp.extend_with(adds);
            }
        }
    }

    /// `detSpec(q, ((read, v), t), π)` — Alg. 6, read case.
    fn apply_read(&self, q: &DetState, v: VarId, t: ThreadId) -> Option<DetState> {
        let ti = t.index();
        if q.0[ti].ws.contains(v) {
            return Some(*q); // read of own write
        }
        // Opacity: a read prohibited for t (directly, or through a strong
        // successor chain) can be justified by no serialization order.
        let prohibited = self.read_prohibited_closure(q, v);
        if self.is_op() && prohibited.contains(t) {
            return None;
        }
        let mut n = *q;
        // PAPER-AMBIGUITY: Alg. 6 reuses `U` for both the prohibition
        // closure and the startup set; we keep both and apply their union
        // in the strong-closure line below.
        let started_adds = if q.0[ti].phase == DetPhase::Finished {
            self.start_transaction(&mut n, t)
        } else {
            ThreadSet::new()
        };
        n.0[ti].rs.insert(v);
        if q.0[ti].prs.contains(v) {
            n.0[ti].valid = false;
        }
        for u in self.thread_ids() {
            let ui = u.index();
            if u != t && q.0[ui].ws.contains(v) {
                // t read the pre-commit value of u's write: if u commits,
                // t serializes before u.
                n.0[ui].wp.insert(t);
            }
            if u != t && q.0[ui].prs.contains(v) {
                // u is pinned before the committed writer of v; t now
                // observes that writer's value, hence comes after u.
                n.0[ti].wp.insert(u);
            }
        }
        if !self.is_op() {
            return Some(n);
        }
        // Opacity only: the observed-writer ordering is *strong* (it
        // constrains t even if t aborts), and strong predecessors must
        // never have written v.
        self.propagate_strong(&mut n, t, prohibited.union(started_adds));
        let strong = n.0[ti].sp;
        for u in strong {
            let ui = u.index();
            n.0[ui].pws.insert(v);
            if n.0[ui].ws.contains(v) {
                n.0[ui].valid = false;
            }
        }
        Some(n)
    }

    /// `detSpec(q, ((write, v), t), π)` — Alg. 6, write case.
    fn apply_write(&self, q: &DetState, v: VarId, t: ThreadId) -> Option<DetState> {
        let ti = t.index();
        let mut n = *q;
        if q.0[ti].phase == DetPhase::Finished {
            self.start_transaction(&mut n, t);
        }
        n.0[ti].ws.insert(v);
        if q.0[ti].pws.contains(v) {
            n.0[ti].valid = false;
        }
        for u in self.others(t) {
            let ui = u.index();
            if q.0[ui].rs.contains(v) {
                // u read v before this write: if t commits, u precedes t.
                n.0[ti].wp.insert(u);
                if self.is_op() && q.0[ui].sp.contains(t) {
                    // ... but t strongly precedes u: committing this write
                    // would invalidate u's read even if u aborts.
                    n.0[ti].valid = false;
                }
            }
            if q.0[ui].pws.contains(v) {
                n.0[ti].wp.insert(u);
            }
        }
        Some(n)
    }

    /// `detSpec(q, (commit, t), π)` — Alg. 6, commit case.
    fn apply_commit(&self, q: &DetState, t: ThreadId) -> Option<DetState> {
        let ti = t.index();
        if q.0[ti].wp.contains(t) {
            return None; // predecessor cycle through t
        }
        if !q.0[ti].valid {
            return None;
        }
        // Opacity: committing now pins every weak predecessor strictly
        // before t; if t itself strongly precedes any of them (or their
        // strong predecessors include t), the order is contradictory.
        let mut pinned = q.0[ti].wp;
        for u in q.0[ti].wp {
            pinned.extend_with(q.0[u.index()].sp);
        }
        if self.is_op() && pinned.contains(t) {
            return None;
        }
        let mut n = *q;
        let committer = q.0[ti];
        for u in committer.wp {
            let ui = u.index();
            // Every weak predecessor is now pinned before t (pending);
            // those with overlapping write sets additionally lose
            // commit-viability. Keeping the pin on doomed transactions is
            // the phase/valid split discussed in the module docs.
            n.0[ui].phase = DetPhase::Pending;
            if !committer.ws.is_disjoint(q.0[ui].ws) {
                n.0[ui].valid = false;
            }
            n.0[ui].prs.extend_with(committer.prs.union(committer.ws));
            n.0[ui]
                .pws
                .extend_with(committer.pws.union(committer.ws).union(committer.rs));
            for w in self.thread_ids() {
                let wi = w.index();
                // Successors of t inherit u as weak predecessor...
                if q.0[wi].wp.contains(t) {
                    n.0[wi].wp.insert(u);
                }
                // ... as do future committers overlapping t's write set.
                if w != t && !q.0[wi].ws.is_disjoint(committer.ws) {
                    n.0[wi].wp.insert(u);
                }
            }
        }
        if self.is_op() {
            // Strong successors of t inherit the pinned set.
            self.propagate_strong(&mut n, t, pinned);
        }
        n.reset(t);
        Some(n)
    }

    /// Applies one statement deterministically.
    pub fn apply(&self, q: &DetState, s: Statement) -> Option<DetState> {
        match s.kind {
            StatementKind::Read(v) => self.apply_read(q, v, s.thread),
            StatementKind::Write(v) => self.apply_write(q, v, s.thread),
            StatementKind::Commit => self.apply_commit(q, s.thread),
            StatementKind::Abort => {
                let mut n = *q;
                n.reset(s.thread);
                Some(n)
            }
        }
    }

    /// Decides membership of a word directly, without materializing the
    /// automaton.
    pub fn accepts_word(&self, w: &Word) -> bool {
        let mut q = DetState::default();
        for &s in w.iter() {
            match self.apply(&q, s) {
                Some(next) => q = next,
                None => return false,
            }
        }
        true
    }

    /// Explores the reachable automaton into a [`Dfa`] (plus the interned
    /// structured states).
    ///
    /// # Panics
    ///
    /// Panics if the reachable state space exceeds `max_states`. Callers
    /// that need a structured abort instead (the verification session's
    /// eager spec build) use [`DetSpec::try_to_dfa`].
    pub fn to_dfa(&self, max_states: usize) -> (Dfa<Statement>, Vec<DetState>) {
        self.try_to_dfa(&tm_automata::QueryBudget::new(max_states))
            .unwrap_or_else(|error| panic!("specification exploration failed: {error}"))
    }

    /// [`DetSpec::to_dfa`] under a full [`tm_automata::QueryBudget`]:
    /// blowups, deadlines, and cancellations come back as structured
    /// [`tm_automata::EngineError`]s instead of panicking.
    ///
    /// # Errors
    ///
    /// As for [`tm_automata::explore_deterministic_budget`].
    pub fn try_to_dfa(
        &self,
        budget: &tm_automata::QueryBudget,
    ) -> Result<(Dfa<Statement>, Vec<DetState>), tm_automata::EngineError> {
        let alphabet = crate::canonical::spec_alphabet(self.threads, self.vars);
        tm_automata::explore_deterministic_budget(self, alphabet, budget)
    }
}

impl DeterministicTransitionSystem for DetSpec {
    type State = DetState;
    type Label = Statement;

    fn initial(&self) -> DetState {
        DetState::default()
    }

    fn step(&self, state: &DetState, letter: &Statement) -> Option<DetState> {
        self.apply(state, *letter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Word {
        s.parse().unwrap()
    }

    fn det(p: SafetyProperty) -> DetSpec {
        DetSpec::new(p, 2, 2)
    }

    #[test]
    fn accepts_sequential_histories() {
        for p in SafetyProperty::all() {
            let spec = det(p);
            for text in [
                "",
                "(r,1)1 c1",
                "(r,1)1 (w,2)1 c1 (w,1)2 c2",
                "a1 a1 c2",
            ] {
                assert!(spec.accepts_word(&w(text)), "{p:?} {text}");
            }
        }
    }

    #[test]
    fn rejects_table2_counterexample() {
        let bad = w("(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1");
        for p in SafetyProperty::all() {
            assert!(!det(p).accepts_word(&bad), "{p:?}");
        }
    }

    #[test]
    fn matches_reference_on_selected_words() {
        for p in SafetyProperty::all() {
            let spec = det(p);
            for text in [
                "(r,1)1 (w,1)2 c2 c1",
                "(r,1)1 (w,1)2 c2 a1",
                "(w,1)1 (w,1)2 c1 c2",
                "(r,1)1 (w,1)2 (w,2)1 c2 (r,2)2 c1",
                "(w,1)2 (r,1)1 c2 (r,2)2 a2 (w,2)1 c1",
                "(r,1)1 (r,2)2 (w,2)1 (w,1)2 c1 c2",
                "(w,1)1 (r,2)2 (r,1)2 c1",
                "(w,1)1 (r,2)2 (r,1)2 c1 c2",
            ] {
                let word = w(text);
                assert_eq!(spec.accepts_word(&word), p.holds(&word), "{p:?} {text}");
            }
        }
    }

    #[test]
    fn dfa_matches_direct_application() {
        let spec = det(SafetyProperty::Opacity);
        let (dfa, _) = spec.to_dfa(1_000_000);
        for text in ["(r,1)1 (w,1)2 c2 c1", "(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1"] {
            let word = w(text);
            assert_eq!(
                dfa.accepts(word.statements()),
                spec.accepts_word(&word),
                "{text}"
            );
        }
    }

    #[test]
    fn state_count_is_in_the_paper_ballpark() {
        // Paper §5.3: Σᵈ_ss 3520 states, Σᵈ_op 2272 states for (2,2).
        let (ss, _) = det(SafetyProperty::StrictSerializability).to_dfa(1_000_000);
        let (op, _) = det(SafetyProperty::Opacity).to_dfa(1_000_000);
        assert!(ss.num_states() > 300, "ss: {}", ss.num_states());
        assert!(op.num_states() > 300, "op: {}", op.num_states());
        assert!(ss.num_states() < 100_000);
        assert!(op.num_states() < 100_000);
    }
}
