//! Shared state vocabulary of the TM specifications (§5).

use std::fmt;

use tm_lang::{ThreadId, ThreadSet, VarSet};

/// Maximum number of threads supported by the fixed-size spec states.
pub const MAX_THREADS: usize = 4;

/// Serialization phase of a thread in the **nondeterministic**
/// specifications (Alg. 5).
///
/// The paper's `Status` conflates the phase with commit-viability
/// (`invalid`). That erases the "has already chosen its serialization
/// point" information when a serialized transaction is doomed — losing,
/// for opacity, the read-consistency constraints that still apply to
/// aborting transactions (a transcription-level fix documented in
/// DESIGN.md; without it the specification accepts the non-opaque word
/// `(r,1)1 (w,2)1 (r,2)2 (w,1)2 c1 (r,2)2`). We therefore track the phase
/// and a separate `valid` flag ([`NdThread::valid`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum NdPhase {
    /// No live transaction.
    #[default]
    Finished,
    /// Transaction live, serialization point not yet chosen.
    Started,
    /// Serialization point chosen (the ε move was taken).
    Serialized,
}

/// Lifecycle phase of a thread in the **deterministic** specifications
/// (Alg. 6).
///
/// As in the nondeterministic case ([`NdPhase`]), the paper's `Status`
/// conflates the phase with commit-viability; a pinned (`pending`)
/// transaction that is additionally doomed would otherwise lose its pin,
/// and with it the prohibited-read bookkeeping opacity needs for aborting
/// readers (DESIGN.md documents the offending word). Phase and the
/// `valid` flag ([`DetThread::valid`]) are therefore tracked separately.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DetPhase {
    /// No live transaction.
    #[default]
    Finished,
    /// Transaction live.
    Started,
    /// Pinned: this transaction was a weak predecessor of a transaction
    /// that committed, so its serialization point lies in the past.
    Pending,
}

/// Per-thread record of the nondeterministic specifications: phase,
/// commit-viability, read and write sets, prohibited read/write sets, and
/// the serialization predecessor set.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NdThread {
    /// Serialization phase.
    pub phase: NdPhase,
    /// `false` once the transaction can no longer commit (the paper's
    /// `invalid` status).
    pub valid: bool,
    /// Variables globally read by the live transaction.
    pub rs: VarSet,
    /// Variables written by the live transaction.
    pub ws: VarSet,
    /// Variables the thread may no longer read.
    pub prs: VarSet,
    /// Variables the thread may no longer write.
    pub pws: VarSet,
    /// Threads whose live transactions serialized before this one.
    pub sp: ThreadSet,
}

impl Default for NdThread {
    fn default() -> Self {
        NdThread {
            phase: NdPhase::Finished,
            valid: true,
            rs: VarSet::new(),
            ws: VarSet::new(),
            prs: VarSet::new(),
            pws: VarSet::new(),
            sp: ThreadSet::new(),
        }
    }
}

impl fmt::Debug for NdThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}{}/rs{:?}ws{:?}prs{:?}pws{:?}sp{:?}",
            self.phase,
            if self.valid { "" } else { "✗" },
            self.rs,
            self.ws,
            self.prs,
            self.pws,
            self.sp
        )
    }
}

/// Per-thread record of the deterministic specifications: like
/// [`NdThread`] plus the weak-predecessor set.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DetThread {
    /// Lifecycle phase.
    pub phase: DetPhase,
    /// `false` once the transaction can no longer commit (the paper's
    /// `invalid` status).
    pub valid: bool,
    /// Variables globally read by the live transaction.
    pub rs: VarSet,
    /// Variables written by the live transaction.
    pub ws: VarSet,
    /// Variables the thread may no longer read.
    pub prs: VarSet,
    /// Variables the thread may no longer write.
    pub pws: VarSet,
    /// Weak predecessors: threads that must serialize before this one *if
    /// both commit*.
    pub wp: ThreadSet,
    /// Strong predecessors: threads that must serialize before this one
    /// unconditionally.
    pub sp: ThreadSet,
}

impl Default for DetThread {
    fn default() -> Self {
        DetThread {
            phase: DetPhase::Finished,
            valid: true,
            rs: VarSet::new(),
            ws: VarSet::new(),
            prs: VarSet::new(),
            pws: VarSet::new(),
            wp: ThreadSet::new(),
            sp: ThreadSet::new(),
        }
    }
}

impl fmt::Debug for DetThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}{}/rs{:?}ws{:?}prs{:?}pws{:?}wp{:?}sp{:?}",
            self.phase,
            if self.valid { "" } else { "✗" },
            self.rs,
            self.ws,
            self.prs,
            self.pws,
            self.wp,
            self.sp
        )
    }
}

/// State of a nondeterministic specification: one [`NdThread`] per thread.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NdState(pub [NdThread; MAX_THREADS]);

impl NdState {
    /// The record of thread `t`.
    pub fn thread(&self, t: ThreadId) -> &NdThread {
        &self.0[t.index()]
    }

    /// `ResetState(q, t)`: status ← finished, sets cleared, `t` removed
    /// from every other serialization-predecessor set.
    pub fn reset(&mut self, t: ThreadId) {
        self.0[t.index()] = NdThread::default();
        for u in 0..MAX_THREADS {
            self.0[u].sp.remove(t);
        }
    }
}

impl fmt::Debug for NdState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.0.iter()).finish()
    }
}

/// State of a deterministic specification: one [`DetThread`] per thread.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DetState(pub [DetThread; MAX_THREADS]);

impl DetState {
    /// The record of thread `t`.
    pub fn thread(&self, t: ThreadId) -> &DetThread {
        &self.0[t.index()]
    }

    /// `ResetState(q, t)`: status ← finished, sets cleared, `t` removed
    /// from every other predecessor set.
    pub fn reset(&mut self, t: ThreadId) {
        self.0[t.index()] = DetThread::default();
        for u in 0..MAX_THREADS {
            self.0[u].wp.remove(t);
            self.0[u].sp.remove(t);
        }
    }
}

impl fmt::Debug for DetState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.0.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_lang::VarId;

    #[test]
    fn reset_clears_thread_and_back_references() {
        let mut q = NdState::default();
        let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
        q.0[0].phase = NdPhase::Serialized;
        q.0[0].valid = false;
        q.0[0].rs.insert(VarId::new(0));
        q.0[1].sp.insert(t1);
        q.reset(t1);
        assert_eq!(q.thread(t1), &NdThread::default());
        assert!(q.thread(t1).valid);
        assert!(!q.thread(t2).sp.contains(t1));
    }

    #[test]
    fn det_reset_clears_both_predecessor_kinds() {
        let mut q = DetState::default();
        let (t1, t2) = (ThreadId::new(0), ThreadId::new(1));
        q.0[1].wp.insert(t1);
        q.0[1].sp.insert(t1);
        q.reset(t1);
        assert!(q.thread(t2).wp.is_empty());
        assert!(q.thread(t2).sp.is_empty());
    }
}
