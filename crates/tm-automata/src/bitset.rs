//! A growable bitset used to represent sets of automaton states.

use std::fmt;

/// A fixed-capacity set of `usize` indices, backed by a word array.
///
/// Used for NFA frontier sets and for the antichain algorithm, where
/// subset tests between state sets must be fast.
///
/// # Examples
///
/// ```
/// use tm_automata::BitSet;
/// let mut a = BitSet::new(100);
/// a.insert(3);
/// a.insert(77);
/// let mut b = a.clone();
/// b.insert(50);
/// assert!(a.is_subset(&b));
/// assert!(!b.is_subset(&a));
/// assert_eq!(b.len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `index`; returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "bitset index out of range");
        let (w, b) = (index / 64, index % 64);
        let added = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        added
    }

    /// Removes `index`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity` — the same contract (and message) as
    /// [`BitSet::insert`]. (Previously this panicked only when the word
    /// index overflowed, with a raw slice-indexing message.)
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "bitset index out of range");
        let (w, b) = (index / 64, index % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Tests membership. Unlike the mutators, this is a total query:
    /// indices at or beyond the capacity are simply not members (`false`),
    /// so callers may probe with ids from a larger space.
    pub fn contains(&self, index: usize) -> bool {
        let (w, b) = (index / 64, index % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// `true` if every element of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & !b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// The backing words, least-significant index first — the fast path
    /// for bulk bitwise work such as antichain subsumption, where subset
    /// tests run directly on `u64`s without the per-call capacity
    /// assertion of [`BitSet::is_subset`].
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over a [`BitSet`], produced by [`BitSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * 64 + bit)
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set whose capacity is one past the largest
    /// index (or 0 for an empty iterator).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let capacity = items.iter().max().map_or(0, |&m| m + 1);
        let mut set = BitSet::new(capacity);
        for i in items {
            set.insert(i);
        }
        set
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn subset_across_words() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        a.insert(5);
        a.insert(150);
        b.insert(5);
        b.insert(150);
        b.insert(199);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn union_and_iter_order() {
        let mut a = BitSet::new(70);
        a.insert(65);
        let mut b = BitSet::new(70);
        b.insert(2);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 65]);
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [3usize, 9, 9, 1].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(7);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        BitSet::new(8).insert(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_remove_panics_like_insert() {
        // `remove` shares `insert`'s contract; before, it only panicked
        // on word-index overflow with a slice-indexing message.
        BitSet::new(8).remove(8);
    }

    #[test]
    fn contains_is_total() {
        let mut s = BitSet::new(8);
        s.insert(3);
        assert!(!s.contains(8));
        assert!(!s.contains(1_000_000));
    }

    #[test]
    fn words_expose_backing_storage() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.words(), &[1, 1, 2]);
    }

    /// The `words()` prefix contract the antichain subsumption relies on:
    /// same-capacity sets expose word arrays of identical length
    /// (`capacity.div_ceil(64)`), so `zip`-based subset tests compare
    /// every word and never silently truncate.
    #[test]
    fn words_length_is_capacity_words() {
        for capacity in [0usize, 1, 63, 64, 65, 128, 130, 200] {
            let s = BitSet::new(capacity);
            assert_eq!(s.words().len(), capacity.div_ceil(64), "cap {capacity}");
            let t = BitSet::new(capacity);
            assert_eq!(s.words().len(), t.words().len(), "cap {capacity}");
        }
    }

    /// Bits at or beyond the capacity are never set — mutators reject
    /// out-of-range indices — so raw word-level subset tests (`a & !b`)
    /// are exact: no stale high bits can leak into the comparison.
    #[test]
    fn words_padding_bits_stay_zero() {
        let mut s = BitSet::new(70);
        for i in 0..70 {
            s.insert(i);
        }
        for i in (0..70).step_by(3) {
            s.remove(i);
        }
        for i in 0..70 {
            s.insert(i);
        }
        // All 70 bits set, bits 70..128 zero.
        assert_eq!(s.words(), &[u64::MAX, (1 << 6) - 1]);
        assert_eq!(s.len(), 70);
    }

    /// Word-level subsumption (the antichain's `subset_words`) agrees
    /// with `is_subset` on same-capacity sets — including across word
    /// boundaries.
    #[test]
    fn word_level_subset_matches_is_subset() {
        let subset_words =
            |a: &[u64], b: &[u64]| a.iter().zip(b).all(|(&x, &y)| x & !y == 0);
        let build = |indices: &[usize]| {
            let mut s = BitSet::new(150);
            for &i in indices {
                s.insert(i);
            }
            s
        };
        let sets = [
            build(&[]),
            build(&[0]),
            build(&[63, 64]),
            build(&[5, 64, 149]),
            build(&[5, 63, 64, 100, 149]),
            build(&[149]),
        ];
        for a in &sets {
            for b in &sets {
                assert_eq!(
                    subset_words(a.words(), b.words()),
                    a.is_subset(b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn boundary_indices_round_trip() {
        let mut s = BitSet::new(65);
        assert!(s.insert(64));
        assert!(s.contains(64));
        assert!(s.remove(64));
        assert!(!s.contains(64));
        assert!(!s.remove(64));
        // One past the boundary: total query, panicking mutators.
        assert!(!s.contains(65));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_remove_far_beyond_words_panics() {
        // Far past the word array, not just past the capacity: the range
        // check fires before any slice access.
        BitSet::new(8).remove(1_000_000);
    }

    #[test]
    fn debug_format() {
        let mut s = BitSet::new(8);
        s.insert(1);
        s.insert(4);
        assert_eq!(format!("{s:?}"), "{1, 4}");
    }
}
